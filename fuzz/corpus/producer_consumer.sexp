; Table 1 protocol `producer_consumer` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("K" int (i 2)) ("queue" (seq int) (vseq)))
  (main "Main")
  (pending ("Main"))
  (action "Produce" (("i" int)) () ((send "queue" nokey (var "i")) (if (bin lt (var "i") (var "K")) ((async "Produce" (bin add (var "i") (const (i 1))))) ())))
  (action "Consume" (("j" int)) (("v" int)) ((recv "v" "queue" nokey) (assert (bin eq (var "v") (var "j")) "Consumer saw a non-increasing number") (if (bin lt (var "j") (var "K")) ((async "Consume" (bin add (var "j") (const (i 1))))) ())))
  (action "Main" () () ((async "Produce" (const (i 1))) (async "Consume" (const (i 1)))))
)
