; Table 1 protocol `n_buyer` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("n" int (i 2)) ("price" int (i 10)) ("budget" (map int int) (vmap (i 0) ((i 1) (i 6)) ((i 2) (i 6)))) ("quoted" bool (b f)) ("pledged" (map int (opt int)) (vmap (none))) ("ordered" bool (b f)) ("orderTotal" int (i 0)))
  (main "Main")
  (pending ("Main"))
  (action "RequestQuote" () () ((async "Quote")))
  (action "Quote" () () ((assign "quoted" (const (b t)))))
  (action "Contribute" (("i" int)) (("already" int) ("mine" int) ("b" int)) ((assume (var "quoted")) (assume (bin or (bin eq (var "i") (const (i 1))) (is-some (map-get (var "pledged") (bin sub (var "i") (const (i 1))))))) (assign "already" (const (i 0))) (for "b" (const (i 1)) (bin sub (var "i") (const (i 1))) ((assign "already" (bin add (var "already") (unwrap (map-get (var "pledged") (var "b"))))))) (assign "mine" (ite (bin lt (bin sub (var "price") (var "already")) (map-get (var "budget") (var "i"))) (ite (bin gt (bin sub (var "price") (var "already")) (const (i 0))) (bin sub (var "price") (var "already")) (const (i 0))) (map-get (var "budget") (var "i")))) (assign-at "pledged" (var "i") (some-of (var "mine")))))
  (action "Order" () (("total" int) ("b" int)) ((assume (forall "qb" (range (const (i 1)) (var "n")) (is-some (map-get (var "pledged") (var "qb"))))) (assign "total" (const (i 0))) (for "b" (const (i 1)) (var "n") ((assign "total" (bin add (var "total") (unwrap (map-get (var "pledged") (var "b"))))))) (if (bin ge (var "total") (var "price")) ((assign "ordered" (const (b t))) (assign "orderTotal" (var "total"))) ())))
  (action "Main" () (("i" int)) ((async "RequestQuote") (for "i" (const (i 1)) (var "n") ((async "Contribute" (var "i")))) (async "Order")))
)
