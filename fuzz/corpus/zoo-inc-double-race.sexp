; Scenario-zoo protocol `zoo-inc-double-race` (see `inseq_protocols::zoo`),
; promoted from the coverage-guided campaign and pinned with
; verified-replay metadata. Regenerate with `fuzz --export-zoo`.
;@ seed 0
;@ kind promoted
;@ verdict failure
;@ visited 11
;@ trace-len 2
;@ coverage 72d016be6ce24fe1
(spec
  (globals ("x" int (i 0)))
  (main "Main")
  (pending ("Main"))
  (action "Inc" () () ((assign "x" (bin add (var "x") (const (i 1))))))
  (action "Dbl" () () ((assign "x" (bin mul (const (i 2)) (var "x")))))
  (action "Probe" () () ((assert (bin ne (var "x") (const (i 1))) "probe observed the racing intermediate x = 1")))
  (action "Main" () () ((async "Inc") (async "Dbl") (async "Probe")))
)
