; Table 1 protocol `ping_pong` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("K" int (i 2)) ("msgCh" (bag int) (vbag)) ("ackCh" (bag int) (vbag)))
  (main "Main")
  (pending ("Main"))
  (action "Ping" (("i" int)) (("a" int)) ((if (bin gt (var "i") (const (i 1))) ((recv "a" "ackCh" nokey) (assert (bin eq (var "a") (bin sub (var "i") (const (i 1)))) "Ping received a wrong acknowledgement")) ()) (if (bin le (var "i") (var "K")) ((send "msgCh" nokey (var "i")) (async "Ping" (bin add (var "i") (const (i 1))))) ())))
  (action "Pong" (("i" int)) (("v" int)) ((recv "v" "msgCh" nokey) (assert (bin eq (var "v") (var "i")) "Pong received a non-increasing number") (send "ackCh" nokey (var "i")) (if (bin lt (var "i") (var "K")) ((async "Pong" (bin add (var "i") (const (i 1))))) ())))
  (action "Main" () () ((async "Ping" (const (i 1))) (async "Pong" (const (i 1)))))
)
