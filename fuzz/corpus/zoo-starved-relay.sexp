; Scenario-zoo protocol `zoo-starved-relay` (see `inseq_protocols::zoo`),
; promoted from the coverage-guided campaign and pinned with
; verified-replay metadata. Regenerate with `fuzz --export-zoo`.
;@ seed 0
;@ kind promoted
;@ verdict deadlock
;@ visited 6
;@ trace-len 5
;@ coverage f58ab4a5b45110f6
(spec
  (globals ("hops" int (i 3)) ("ring" (bag int) (vbag)))
  (main "Main")
  (pending ("Main"))
  (action "Station" () (("t" int)) ((recv "t" "ring" nokey) (assert (bin and (bin ge (var "t") (const (i 0))) (bin le (var "t") (var "hops"))) "relayed token out of range") (if (bin lt (var "t") (var "hops")) ((send "ring" nokey (bin add (var "t") (const (i 1)))) (async "Station")) ())))
  (action "Main" () () ((send "ring" nokey (const (i 0))) (async "Station") (async "Station")))
)
