; Scenario-zoo protocol `zoo-sum-guard` (see `inseq_protocols::zoo`),
; promoted from the coverage-guided campaign and pinned with
; verified-replay metadata. Regenerate with `fuzz --export-zoo`.
;@ seed 0
;@ kind promoted
;@ verdict pass
;@ visited 11
;@ trace-len 0
;@ coverage 86e6a6b802635984
(spec
  (globals ("n" int (i 3)) ("pool" (set int) (vset)))
  (main "Main")
  (pending ("Main"))
  (action "Put" (("i" int)) () ((assign "pool" (with (var "pool") (var "i"))) (if (bin lt (var "i") (var "n")) ((async "Put" (bin add (var "i") (const (i 1))))) ())))
  (action "Audit" () (("s" int)) ((assert (forall "q" (var "pool") (contains (range (const (i 0)) (var "n")) (var "q"))) "pool escaped {0..n}") (assign "s" (sum (filter "q" (var "pool") (bin gt (var "q") (const (i 0)))))) (assert (bin le (var "s") (bin mul (var "n") (var "n"))) "positive sum too large") (assert (bin le (size (image "q" (var "pool") (bin add (var "q") (const (i 1))))) (bin add (var "n") (const (i 1)))) "shifted pool too large")))
  (action "Main" () () ((async "Put" (const (i 0))) (async "Audit")))
)
