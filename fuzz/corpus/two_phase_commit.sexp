; Table 1 protocol `two_phase_commit` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("n" int (i 2)) ("vote" (map int bool) (vmap (b f) ((i 1) (b t)))) ("yesVotes" (set int) (vset)) ("noVotes" (set int) (vset)) ("coordDecision" (opt bool) (none)) ("finalized" (map int (opt bool)) (vmap (none))))
  (main "Main")
  (pending ("Main"))
  (action "Request" (("i" int)) () ((async "VoteResp" (var "i") (map-get (var "vote") (var "i")))))
  (action "VoteResp" (("i" int) ("v" bool)) () ((if (var "v") ((assign "yesVotes" (with (var "yesVotes") (var "i")))) ((assign "noVotes" (with (var "noVotes") (var "i")))))))
  (action "Decide" () (("j" int)) ((assume (bin or (bin ge (size (var "noVotes")) (const (i 1))) (bin eq (size (var "yesVotes")) (var "n")))) (if (bin ge (size (var "noVotes")) (const (i 1))) ((assign "coordDecision" (some-of (const (b f))))) ((assign "coordDecision" (some-of (const (b t)))))) (for "j" (const (i 1)) (var "n") ((async "Decision" (var "j") (unwrap (var "coordDecision")))))))
  (action "Decision" (("j" int) ("d" bool)) () ((assign-at "finalized" (var "j") (some-of (var "d")))))
  (action "Main" () (("i" int)) ((for "i" (const (i 1)) (var "n") ((async "Request" (var "i")))) (async "Decide")))
)
