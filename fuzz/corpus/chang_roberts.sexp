; Table 1 protocol `chang_roberts` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("n" int (i 2)) ("id" (map int int) (vmap (i 0) ((i 1) (i 20)) ((i 2) (i 10)))) ("leader" (map int bool) (vmap (b f))))
  (main "Main")
  (pending ("Main"))
  (action "Pass" (("i" int) ("m" int)) () ((if (bin gt (var "m") (map-get (var "id") (var "i"))) ((if (bin eq (var "m") (map-get (var "id") (bin add (bin mod (var "i") (var "n")) (const (i 1))))) ((async "Elect" (bin add (bin mod (var "i") (var "n")) (const (i 1))))) ((async "Pass" (bin add (bin mod (var "i") (var "n")) (const (i 1))) (var "m"))))) ())))
  (action "Elect" (("i" int)) () ((assign-at "leader" (var "i") (const (b t)))))
  (action "Main" () (("i" int)) ((for "i" (const (i 1)) (var "n") ((async "Pass" (bin add (bin mod (var "i") (var "n")) (const (i 1))) (map-get (var "id") (var "i")))))))
)
