; Table 1 protocol `broadcast` (P2 atomic-action program, tiny instance),
; exported through the fuzz corpus format. Regenerate with
; `fuzz --export-table1`.
(spec
  (globals ("n" int (i 2)) ("value" (map int int) (vmap (i 0) ((i 1) (i 3)) ((i 2) (i 1)))) ("decision" (map int (opt int)) (vmap (none))) ("CH" (map int (bag int)) (vmap (vbag))) ("pendingAsyncs" (bag (tuple int int)) (vbag)))
  (main "Main")
  (pending ("Main"))
  (action "Broadcast" (("i" int)) (("j" int)) ((assign "pendingAsyncs" (without (var "pendingAsyncs") (tuple (const (i 1)) (var "i")))) (for "j" (const (i 1)) (var "n") ((send "CH" (key (var "j")) (map-get (var "value") (var "i")))))))
  (action "Collect" (("i" int)) (("j" int) ("v" int) ("got" (bag int))) ((assign "pendingAsyncs" (without (var "pendingAsyncs") (tuple (const (i 2)) (var "i")))) (for "j" (const (i 1)) (var "n") ((recv "v" "CH" (key (var "i"))) (assign "got" (with (var "got") (var "v"))))) (assign-at "decision" (var "i") (some-of (max (var "got"))))))
  (action "Main" () (("i" int) ("gi" int)) ((for "gi" (const (i 1)) (var "n") ((assign "pendingAsyncs" (with (var "pendingAsyncs") (tuple (const (i 1)) (var "gi")))) (assign "pendingAsyncs" (with (var "pendingAsyncs") (tuple (const (i 2)) (var "gi")))))) (for "i" (const (i 1)) (var "n") ((async "Broadcast" (var "i")) (async "Collect" (var "i"))))))
)
