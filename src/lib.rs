//! **inductive-sequentialization** — a Rust reproduction of
//! *Inductive Sequentialization of Asynchronous Programs*
//! (Kragl, Enea, Henzinger, Mutluergil, Qadeer — PLDI 2020).
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`kernel`] | `inseq-kernel` | values, stores, pending asyncs, configurations, programs, exhaustive exploration |
//! | [`engine`] | `inseq-engine` | sharded parallel exploration and the check-scheduling job DAG |
//! | [`lang`] | `inseq-lang` | the typed action DSL and its nondeterministic interpreter |
//! | [`mover`] | `inseq-mover` | mover types, commutativity checking, Lipton reduction |
//! | [`refine`] | `inseq-refine` | action and program refinement (Defs. 3.1/3.2) |
//! | [`core`] | `inseq-core` | **the IS proof rule** (Fig. 3), iterated IS, Fig. 2 witnesses |
//! | [`vc`] | `inseq-vc` | configuration logic for flat invariants |
//! | [`protocols`] | `inseq-protocols` | the seven case studies with full proof artifacts |
//! | [`baseline`] | `inseq-baseline` | flat inductive-invariant baseline (§5.2) |
//!
//! # Quickstart
//!
//! Prove that broadcast consensus (the paper's running example, Fig. 1)
//! refines its sequentialization and satisfies consensus:
//!
//! ```
//! use inductive_sequentialization::protocols::broadcast;
//!
//! let instance = broadcast::Instance::new(&[3, 1]);
//! let row = broadcast::verify(&instance)?;
//! assert_eq!(row.is_applications, 2); // Table 1: #IS = 2
//! # Ok::<(), inductive_sequentialization::protocols::common::CaseError>(())
//! ```
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use inseq_baseline as baseline;
pub use inseq_core as core;
pub use inseq_engine as engine;
pub use inseq_kernel as kernel;
pub use inseq_lang as lang;
pub use inseq_mover as mover;
pub use inseq_protocols as protocols;
pub use inseq_refine as refine;
pub use inseq_vc as vc;
