//! Chang-Roberts leader election on a ring (§5.3).
//!
//! Elects the maximum-ID node on rings with the maximum in different
//! positions, shows the mover analysis (every message handler commutes!),
//! and runs the IS application.
//!
//! ```text
//! cargo run --release --example chang_roberts
//! ```

use inductive_sequentialization::kernel::{Explorer, StateUniverse};
use inductive_sequentialization::mover::{infer_mover_type, MoverType};
use inductive_sequentialization::protocols::chang_roberts as cr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let artifacts = cr::build();

    for ids in [&[30, 10, 20][..], &[10, 40, 20, 5][..]] {
        let instance = cr::Instance::new(ids);
        println!("== ring {ids:?} (winner: node {}) ==", instance.winner());

        let init = cr::init_config(&artifacts.p2, &artifacts, &instance);
        let exp = Explorer::new(&artifacts.p2).explore([init])?;
        println!("  {} reachable configurations", exp.config_count());

        // The handler encoding makes every Pass a both-mover: handlers at
        // different nodes touch disjoint state.
        let universe = StateUniverse::from_exploration(&exp);
        let mover = infer_mover_type(&artifacts.p2, &universe, &"Pass".into());
        println!("  mover type of Pass: {mover}");
        assert_eq!(mover, MoverType::Both);

        // The paper's two-application proof: forwarding chains first, the
        // surviving election second.
        let outcome = cr::iterated_chain(&artifacts, &instance).run()?;
        let p_prime = outcome.program;
        for report in &outcome.reports {
            println!("  {report}");
        }

        let init = cr::init_config(&p_prime, &artifacts, &instance);
        let spec = cr::spec(&artifacts, &instance);
        let exp = Explorer::new(&p_prime).explore([init])?;
        assert!(exp.terminal_stores().all(spec));
        println!("  exactly node {} elected ✓\n", instance.winner());
    }
    Ok(())
}
