//! Two-phase commit with early abort (§5.3).
//!
//! Demonstrates the optimization the paper highlights — the coordinator
//! aborts on the first NO vote without waiting, and a participant can learn
//! the decision before processing its own vote request — and shows that IS
//! still reduces the protocol to its natural sequential flow.
//!
//! ```text
//! cargo run --release --example two_phase_commit
//! ```

use inductive_sequentialization::kernel::{Explorer, Value};
use inductive_sequentialization::protocols::two_phase_commit as tpc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let artifacts = tpc::build();

    for votes in [&[true, true, true][..], &[true, false, true][..]] {
        let instance = tpc::Instance::new(votes);
        println!("== votes {votes:?} ==");

        let init = tpc::init_config(&artifacts.p2, &artifacts, &instance);
        let exp = Explorer::new(&artifacts.p2).explore([init])?;
        println!(
            "  concurrent state space: {} configurations",
            exp.config_count()
        );

        // Find the early-abort interleaving: someone finalized while its own
        // Request is still pending.
        let fin_idx = artifacts.decls.index_of("finalized").unwrap();
        let early = exp.configs().find(|c| {
            (1..=instance.n).any(|j| {
                c.globals.get(fin_idx).as_map().get(&Value::Int(j)) != &Value::none()
                    && c.pending
                        .distinct()
                        .any(|pa| pa.action.as_str() == "Request" && pa.args[0] == Value::Int(j))
            })
        });
        match early {
            Some(c) => println!("  early abort observed: {c}"),
            None => println!("  (no early abort possible: all votes are yes)"),
        }

        // The IS application reduces all of this to the sequential schedule.
        let (p_prime, report) = tpc::application(&artifacts, &instance).check_and_apply()?;
        println!("  {report}");

        let init = tpc::init_config(&p_prime, &artifacts, &instance);
        let spec = tpc::spec(&artifacts, &instance);
        let exp = Explorer::new(&p_prime).explore([init])?;
        assert!(exp.terminal_stores().all(spec));
        println!(
            "  all participants consistently {} ✓\n",
            if instance.expected_commit() {
                "COMMIT"
            } else {
                "ABORT"
            }
        );
    }
    Ok(())
}
