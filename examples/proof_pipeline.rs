//! The whole toolbox on one protocol: derive the atomic actions by
//! reduction (`summarize_chain`), chain every refinement step in one
//! CIVL-style layered proof, rewrite a concrete interleaving with the
//! Fig. 2 permutation algorithm, and render the executions.
//!
//! ```text
//! cargo run --release --example proof_pipeline
//! ```

use std::collections::BTreeSet;

use inductive_sequentialization::core::layers::{LayerStep, LayeredProof};
use inductive_sequentialization::core::rewrite::{permute_execution, validate_execution};
use inductive_sequentialization::kernel::render::{render_execution, RenderOptions};
use inductive_sequentialization::kernel::{ActionName, Explorer, Value};
use inductive_sequentialization::mover::summarize_chain;
use inductive_sequentialization::protocols::broadcast;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = broadcast::Instance::new(&[3, 1]);
    let artifacts = broadcast::build();

    // ── 1. Reduction: derive an atomic broadcast from the fine-grained
    //       chain, mechanically.
    let chain: BTreeSet<ActionName> = ["BroadcastStep".into()].into_iter().collect();
    let summary = summarize_chain(
        &artifacts.p1,
        "BroadcastSummary",
        &"BroadcastStep".into(),
        &chain,
    );
    let store = broadcast::initial_store(&artifacts, &instance);
    let out = inductive_sequentialization::kernel::ActionSemantics::eval(
        &summary,
        &store,
        &[Value::Int(1), Value::Int(1)],
    );
    println!(
        "summarized BroadcastStep chain: {} atomic transition(s) from the initial store\n",
        out.transitions().map_or(0, <[_]>::len)
    );

    // ── 2. The layered proof: reduction, then the two IS applications.
    let init1 = broadcast::init_config(&artifacts.p1, &artifacts, &instance);
    let mut steps = broadcast::iterated_chain(&artifacts, &instance).into_steps();
    let second = steps.pop().expect("two applications");
    let first = steps.pop().expect("two applications");
    let outcome = LayeredProof::new(artifacts.p1.clone())
        .instance(init1)
        .then(LayerStep::ProgramRefinement {
            to: artifacts.p2.clone(),
            label: "reduction to atomic actions (Fig. 1 ① → ②)".into(),
        })
        .then_is(first)
        .then_is(second)
        .run()?;
    println!("layered proof certificate:");
    for line in &outcome.log {
        println!("  {line}");
    }

    // ── 3. Fig. 2, concretely: take one concurrent interleaving and
    //       permute it into the sequentialization.
    let app = broadcast::oneshot_application(&artifacts, &instance);
    app.check()?;
    let init2 = broadcast::init_config(&artifacts.p2, &artifacts, &instance);
    let exp = Explorer::new(&artifacts.p2).explore([init2]).unwrap();
    let exec = exp
        .terminating_executions(8)
        .into_iter()
        .max_by_key(inseq_len)
        .expect("some terminating execution");
    println!("\na concurrent interleaving of P:");
    print!(
        "{}",
        render_execution(&exec, artifacts.p2.schema(), RenderOptions::default())
    );

    let rewritten = permute_execution(&app, &exec)?;
    validate_execution(&app.apply(), &rewritten).expect("legal in P'");
    println!("\npermuted into the sequentialization (Fig. 2):");
    print!(
        "{}",
        render_execution(&rewritten, artifacts.p2.schema(), RenderOptions::default())
    );
    println!(
        "\nsame final configuration, {} step(s) instead of {}.",
        rewritten.len(),
        exec.len()
    );
    Ok(())
}

fn inseq_len(e: &inductive_sequentialization::kernel::Execution) -> usize {
    e.len()
}
