//! Tutorial: applying IS to **your own** protocol with the public API.
//!
//! We build a small barrier protocol from scratch: `n` workers each perform
//! a local update and signal completion over a bag channel; a waiter blocks
//! for all `n` signals and then publishes the combined result. We then
//! write the three IS artifacts (invariant action, abstraction,
//! sequentialization), check the rule, and enjoy sequential reasoning.
//!
//! ```text
//! cargo run --release --example custom_protocol
//! ```

use std::sync::Arc;

use inductive_sequentialization::core::{IsApplication, Measure};
use inductive_sequentialization::kernel::{ActionSemantics, Explorer, Value};
use inductive_sequentialization::lang::build::*;
use inductive_sequentialization::lang::{program_of, DslAction, GlobalDecls, Sort};
use inductive_sequentialization::refine::check_program_refinement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3i64;

    // 1. Declare the shared state.
    let mut decls = GlobalDecls::new();
    decls.declare("n", Sort::Int);
    decls.declare("work", Sort::map(Sort::Int, Sort::Int)); // per-worker result
    decls.declare("done", Sort::bag(Sort::Int)); // completion signals
    decls.declare("published", Sort::opt(Sort::Int)); // the barrier output
    let g = Arc::new(decls);

    // 2. The atomic actions.
    // Worker(i): work[i] := i*i; send i to done
    let worker = DslAction::build("Worker", &g)
        .param("i", Sort::Int)
        .body(vec![
            assign_at("work", var("i"), mul(var("i"), var("i"))),
            send("done", var("i")),
        ])
        .finish()?;
    // Waiter: receive n signals, publish the sum of all results.
    let waiter = DslAction::build("Waiter", &g)
        .local("j", Sort::Int)
        .local("s", Sort::Int)
        .local("acc", Sort::Int)
        .body(vec![
            for_range("j", int(1), var("n"), vec![recv("s", "done")]),
            assign("acc", int(0)),
            for_range(
                "j",
                int(1),
                var("n"),
                vec![assign("acc", add(var("acc"), get(var("work"), var("j"))))],
            ),
            assign("published", some(var("acc"))),
        ])
        .finish()?;
    let main = DslAction::build("Main", &g)
        .local("i", Sort::Int)
        .body(vec![
            for_range(
                "i",
                int(1),
                var("n"),
                vec![async_call(&worker, vec![var("i")])],
            ),
            async_call(&waiter, vec![]),
        ])
        .finish()?;
    let program = program_of(&g, [worker.clone(), waiter.clone(), main], "Main")?;

    let mut store = g.initial_store();
    store.set(g.index_of("n").unwrap(), Value::Int(n));
    let init = program.initial_config_with(store, vec![])?;

    // 3. The IS artifacts: sequential schedule = workers in order, then the
    //    waiter.
    // Invariant action: k workers already ran, and (once k = n) the waiter
    // may have run too — the invariant must cover *every* prefix of the
    // schedule, including the completed one (forgetting the final stage is
    // rejected by the (I3) check with a targeted error).
    let invariant = DslAction::build("Inv", &g)
        .local("k", Sort::Int)
        .local("w", Sort::Int)
        .local("i", Sort::Int)
        .body(vec![
            choose("k", range(int(0), var("n"))),
            choose("w", range(int(0), int(1))),
            assume(or(eq(var("w"), int(0)), eq(var("k"), var("n")))),
            for_range("i", int(1), var("k"), vec![call(&worker, vec![var("i")])]),
            for_range(
                "i",
                add(var("k"), int(1)),
                var("n"),
                vec![async_call(&worker, vec![var("i")])],
            ),
            if_else(
                eq(var("w"), int(1)),
                vec![call(&waiter, vec![])],
                vec![async_call(&waiter, vec![])],
            ),
        ])
        .finish()?;
    // The waiter blocks until all signals arrive, so it is not a left mover
    // as-is; its abstraction asserts the sequential context.
    let waiter_abs = DslAction::build("WaiterAbs", &g)
        .body(vec![
            assert_msg(
                ge(size(var("done")), var("n")),
                "WaiterAbs: not all workers signalled",
            ),
            call(&waiter, vec![]),
        ])
        .finish()?;
    // The completed sequentialization.
    let main_seq = DslAction::build("MainSeq", &g)
        .local("i", Sort::Int)
        .body(vec![
            for_range("i", int(1), var("n"), vec![call(&worker, vec![var("i")])]),
            call(&waiter, vec![]),
        ])
        .finish()?;

    // 4. Assemble and check the rule.
    let application = IsApplication::new(program.clone(), "Main")
        .eliminate("Worker")
        .eliminate("Waiter")
        .invariant(invariant as Arc<dyn ActionSemantics>)
        .replacement(main_seq as Arc<dyn ActionSemantics>)
        .abstraction("Waiter", waiter_abs as Arc<dyn ActionSemantics>)
        .choice(|t| {
            // Eliminate the smallest-index worker first, the waiter last.
            t.created
                .distinct()
                .min_by_key(|pa| match pa.action.as_str() {
                    "Worker" => pa.args[0].as_int(),
                    _ => i64::MAX,
                })
                .cloned()
        })
        .measure(Measure::pending_async_count())
        .instance(init.clone());

    let (p_prime, report) = application.check_and_apply()?;
    println!("IS premises hold: {report}");

    // 5. The guarantee, and sequential reasoning about the result.
    check_program_refinement(&program, &p_prime, [init.clone()], 1_000_000)?;
    println!("refinement P ≼ P' re-checked on the instance");

    let exp = Explorer::new(&p_prime).explore([init])?;
    let expected: i64 = (1..=n).map(|i| i * i).sum();
    let pub_idx = g.index_of("published").unwrap();
    for s in exp.terminal_stores() {
        assert_eq!(s.get(pub_idx), &Value::some(Value::Int(expected)));
    }
    println!("barrier publishes Σ i² = {expected} in every execution ✓");
    Ok(())
}
