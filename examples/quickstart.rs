//! Quickstart: the paper's running example end-to-end.
//!
//! Walks through Fig. 1 of *Inductive Sequentialization of Asynchronous
//! Programs* (PLDI 2020): the broadcast consensus protocol, its atomic
//! actions, the IS proof artifacts, the checked proof rule, and the
//! resulting sequential reduction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use inductive_sequentialization::core::rewrite::find_witness_executions;
use inductive_sequentialization::kernel::Explorer;
use inductive_sequentialization::lang::pretty_action;
use inductive_sequentialization::protocols::broadcast;
use inductive_sequentialization::refine::check_program_refinement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three nodes with input values 3, 1, 2 want to agree on the maximum.
    let instance = broadcast::Instance::new(&[3, 1, 2]);
    let artifacts = broadcast::build();

    println!("== The atomic actions (Fig. 1-②) ==\n");
    println!("{}", pretty_action(&artifacts.main));
    println!("{}", pretty_action(&artifacts.broadcast));
    println!("{}", pretty_action(&artifacts.collect));

    println!("== The invariant action Inv (Fig. 1-⑤) ==\n");
    println!("{}", pretty_action(&artifacts.inv_oneshot));

    println!("== The abstraction CollectAbs (Fig. 1-④) ==\n");
    println!("{}", pretty_action(&artifacts.collect_abs));

    // How big is the concurrent state space IS lets us avoid reasoning
    // about?
    let init = broadcast::init_config(&artifacts.p2, &artifacts, &instance);
    let exploration = Explorer::new(&artifacts.p2).explore([init.clone()])?;
    println!(
        "The concurrent program reaches {} configurations over {} transitions.\n",
        exploration.config_count(),
        exploration.edge_count()
    );

    // The one-shot IS application (Example 4.1 of the paper).
    println!("== Checking the IS premises (Fig. 3) ==\n");
    let application = broadcast::oneshot_application(&artifacts, &instance);
    let report = application.check()?;
    println!("{report}\n");

    // The formal guarantee: P refines P[Main -> Main'].
    let p_prime = application.apply();
    check_program_refinement(&artifacts.p2, &p_prime, [init.clone()], 4_000_000)?;
    println!("refinement P ≼ P[Main ↦ Main'] re-checked end-to-end on the instance");

    // Constructive Fig. 2: every terminating behaviour of P has a witness
    // execution in P'.
    let witnesses = find_witness_executions(&artifacts.p2, &p_prime, init, 4_000_000)?;
    for w in &witnesses {
        println!(
            "terminal store {} reproduced by a {}-step sequential execution",
            w.terminal,
            w.witness.len()
        );
    }

    // And the protocol property (1) now follows by sequential reasoning.
    let spec = broadcast::spec(&artifacts, &instance);
    let init = broadcast::init_config(&p_prime, &artifacts, &instance);
    let exp = Explorer::new(&p_prime).explore([init])?;
    assert!(exp.terminal_stores().all(spec));
    println!("\nconsensus property (1) holds on the sequentialization — all nodes decide max = 3");
    Ok(())
}
