//! The paper's flagship case study: single-decree Paxos (§5.2, Fig. 4).
//!
//! Shows the abstract protocol state, the `PaxosInv` invariant action, the
//! Fig. 4(c)-style abstraction gates, the checked IS application, and the
//! agreement property on the sequential reduction.
//!
//! ```text
//! cargo run --release --example paxos
//! ```

use inductive_sequentialization::kernel::{Explorer, Value};
use inductive_sequentialization::lang::pretty_action;
use inductive_sequentialization::protocols::paxos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = paxos::Instance::new(2, 2);
    let artifacts = paxos::build();

    println!("== Paxos atomic actions (Fig. 4(b)) ==\n");
    for action in [
        &artifacts.start_round,
        &artifacts.join,
        &artifacts.propose,
        &artifacts.vote,
        &artifacts.conclude,
    ] {
        println!("{}", pretty_action(action));
    }

    println!("== ProposeAbs-style abstraction (Fig. 4(c)) ==\n");
    println!("{}", pretty_action(&artifacts.propose_abs));

    println!("== The invariant action PaxosInv ==\n");
    println!("{}", pretty_action(&artifacts.inv));

    // The concurrent state space.
    let init = paxos::init_config(&artifacts.p2, &artifacts, instance);
    let exp = Explorer::new(&artifacts.p2).explore([init.clone()])?;
    println!(
        "concurrent Paxos ({} rounds, {} acceptors): {} reachable configurations\n",
        instance.rounds,
        instance.nodes,
        exp.config_count()
    );

    // Check the IS rule and apply the transformation.
    println!("== Checking the IS premises ==\n");
    let application = paxos::application(&artifacts, instance);
    let (p_prime, report) = application.check_and_apply()?;
    println!("{report}\n");

    // Agreement on the sequentialization: enumerate final decision maps.
    let init = paxos::init_config(&p_prime, &artifacts, instance);
    let exp = Explorer::new(&p_prime).explore([init])?;
    let dec_idx = artifacts.decls.index_of("decision").unwrap();
    let spec = paxos::spec(&artifacts, instance);
    let mut outcomes = std::collections::BTreeSet::new();
    for store in exp.terminal_stores() {
        assert!(spec(store), "agreement must hold");
        let decision = store.get(dec_idx).as_map();
        let summary: Vec<String> = (1..=instance.rounds)
            .map(|r| format!("round {r}: {}", decision.get(&Value::Int(r))))
            .collect();
        outcomes.insert(summary.join(", "));
    }
    println!("final decision outcomes of the sequentialized protocol:");
    for o in &outcomes {
        println!("  {o}");
    }
    println!("\nno two rounds ever decide different values — Paxos' holds");
    Ok(())
}
