//! Refinement checking between gated atomic actions (Def. 3.1) and between
//! asynchronous programs (Def. 3.2).
//!
//! Both definitions quantify over input stores; this crate discharges them
//! by enumeration — over a caller-supplied set of inputs for actions, and
//! over initialized configurations for programs (computing `Good`/`Trans`
//! summaries with the kernel's exhaustive explorer).
//!
//! # Example
//!
//! ```
//! use inseq_kernel::demo::counter_program;
//! use inseq_refine::check_program_refinement;
//!
//! // Every program refines itself.
//! let p = counter_program();
//! let init = p.initial_config(vec![]).unwrap();
//! check_program_refinement(&p, &p, [init], 100_000)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::result_large_err)] // refinement counterexamples carry full configurations by design
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use inseq_kernel::{
    ActionOutcome, ActionSemantics, Config, ExploreError, Explorer, GlobalStore, Program, Value,
};

/// A violated refinement condition with a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefinementViolation {
    /// Def. 3.1 condition (1): the abstract action does not fail from this
    /// store, but the concrete action does — failures were not preserved.
    FailureNotPreserved {
        /// Input store.
        store: GlobalStore,
        /// Action arguments.
        args: Vec<Value>,
        /// The concrete failure.
        reason: String,
    },
    /// Def. 3.1 condition (2): the concrete action has a transition the
    /// abstract action cannot take (from a store where the abstract action
    /// does not fail).
    TransitionNotAbstracted {
        /// Input store.
        store: GlobalStore,
        /// Action arguments.
        args: Vec<Value>,
        /// The end store of the missing transition.
        target: GlobalStore,
    },
    /// Def. 3.2 condition (1): the abstract program cannot fail from this
    /// initialized configuration, but the concrete one can.
    GoodNotPreserved {
        /// The initialized configuration.
        init: Config,
        /// A failing execution's diagnostic.
        reason: String,
    },
    /// Def. 3.2 condition (2): a terminating store of the concrete program is
    /// not a terminating store of the abstract one.
    SummaryNotIncluded {
        /// The initialized configuration.
        init: Config,
        /// The terminating store unreachable in the abstract program.
        terminal: GlobalStore,
    },
    /// Exploration failed (budget, unknown action, …).
    Exploration(String),
}

impl fmt::Display for RefinementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementViolation::FailureNotPreserved {
                store,
                args,
                reason,
            } => write!(
                f,
                "refinement failed: concrete action fails at {store} with args {args:?} \
                 but the abstract action does not ({reason})"
            ),
            RefinementViolation::TransitionNotAbstracted {
                store,
                args,
                target,
            } => write!(
                f,
                "refinement failed: concrete transition {store} -> {target} with args {args:?} \
                 has no abstract counterpart"
            ),
            RefinementViolation::GoodNotPreserved { init, reason } => write!(
                f,
                "program refinement failed: concrete program can fail from {init} ({reason}) \
                 but the abstract program cannot"
            ),
            RefinementViolation::SummaryNotIncluded { init, terminal } => write!(
                f,
                "program refinement failed: terminating store {terminal} of the concrete \
                 program (from {init}) is not reachable in the abstract program"
            ),
            RefinementViolation::Exploration(msg) => write!(f, "exploration error: {msg}"),
        }
    }
}

impl Error for RefinementViolation {}

impl From<ExploreError> for RefinementViolation {
    fn from(e: ExploreError) -> Self {
        RefinementViolation::Exploration(e.to_string())
    }
}

/// Checks `concrete ≼ abstract` (Def. 3.1) over the given input stores:
/// (1) `ρ_abs ⊆ ρ_con` — wherever the abstract action's gate holds, the
/// concrete one's does too; (2) `ρ_abs ∘ τ_con ⊆ τ_abs` — from such stores,
/// every concrete transition (end store *and* created pending asyncs) is an
/// abstract transition.
///
/// # Errors
///
/// Returns the first violation with a concrete witness.
pub fn check_action_refinement<'a>(
    concrete: &Arc<dyn ActionSemantics>,
    abstrakt: &Arc<dyn ActionSemantics>,
    inputs: impl IntoIterator<Item = (&'a GlobalStore, &'a [Value])>,
) -> Result<(), RefinementViolation> {
    for (store, args) in inputs {
        let abs_out = abstrakt.eval(store, args);
        let abs_ts = match abs_out {
            // Abstract action fails here: both conditions are vacuous.
            ActionOutcome::Failure { .. } => continue,
            ActionOutcome::Transitions(ts) => ts,
        };
        match concrete.eval(store, args) {
            ActionOutcome::Failure { reason } => {
                return Err(RefinementViolation::FailureNotPreserved {
                    store: store.clone(),
                    args: args.to_vec(),
                    reason,
                });
            }
            ActionOutcome::Transitions(con_ts) => {
                for t in con_ts {
                    if !abs_ts.contains(&t) {
                        return Err(RefinementViolation::TransitionNotAbstracted {
                            store: store.clone(),
                            args: args.to_vec(),
                            target: t.globals,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks `p1 ≼ p2` (Def. 3.2) over the given initialized configurations:
/// (1) `Good(P2) ⊆ Good(P1)`; (2) `Good(P2) ∘ Trans(P1) ⊆ Trans(P2)`.
///
/// `budget` bounds each exploration's configuration count.
///
/// # Errors
///
/// Returns the first violation, or [`RefinementViolation::Exploration`] if a
/// state space exceeds the budget.
pub fn check_program_refinement(
    p1: &Program,
    p2: &Program,
    inits: impl IntoIterator<Item = Config>,
    budget: usize,
) -> Result<(), RefinementViolation> {
    for init in inits {
        let s2 = Explorer::new(p2)
            .with_budget(budget)
            .summarize(init.clone())?;
        if !s2.good {
            // The abstract program may fail from here: anything refines it.
            continue;
        }
        let exp1 = Explorer::new(p1)
            .with_budget(budget)
            .explore([init.clone()])?;
        if exp1.has_failure() {
            let reason = exp1
                .failure_reports()
                .into_iter()
                .next()
                .unwrap_or_default();
            return Err(RefinementViolation::GoodNotPreserved { init, reason });
        }
        for terminal in exp1.terminal_stores() {
            if !s2.terminal.contains(terminal) {
                return Err(RefinementViolation::SummaryNotIncluded {
                    init,
                    terminal: terminal.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Checks refinement **up to observation**: like
/// [`check_program_refinement`], but the programs may have different global
/// schemas; terminating stores are compared after applying per-program
/// observation functions. This realizes the variable introduction/hiding
/// refinement steps of CIVL's layered programs (used by the paper's Paxos
/// proof to replace `acceptorState`/`joinChannel`/`voteChannel` with
/// `joinedNodes`/`voteInfo`): the concrete and abstract programs agree on
/// the *observable* summary, not the raw stores.
///
/// `inits` pairs an initialized configuration of `p1` with the
/// corresponding one of `p2`.
///
/// # Errors
///
/// Returns the first violation (failures must be preserved; every observed
/// terminating store of `p1` must be an observed terminating store of `p2`).
pub fn check_observed_refinement<O: Ord + std::fmt::Debug>(
    p1: &Program,
    p2: &Program,
    inits: impl IntoIterator<Item = (Config, Config)>,
    budget: usize,
    observe1: impl Fn(&GlobalStore) -> O,
    observe2: impl Fn(&GlobalStore) -> O,
) -> Result<(), RefinementViolation> {
    for (init1, init2) in inits {
        let exp2 = Explorer::new(p2).with_budget(budget).explore([init2])?;
        if exp2.has_failure() {
            continue; // the abstract program may fail: anything refines it
        }
        let observed2: std::collections::BTreeSet<O> =
            exp2.terminal_stores().map(&observe2).collect();
        let exp1 = Explorer::new(p1)
            .with_budget(budget)
            .explore([init1.clone()])?;
        if exp1.has_failure() {
            let reason = exp1
                .failure_reports()
                .into_iter()
                .next()
                .unwrap_or_default();
            return Err(RefinementViolation::GoodNotPreserved {
                init: init1,
                reason,
            });
        }
        for terminal in exp1.terminal_stores() {
            if !observed2.contains(&observe1(terminal)) {
                return Err(RefinementViolation::SummaryNotIncluded {
                    init: init1,
                    terminal: terminal.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::{counter_program, failing_program};
    use inseq_kernel::{NativeAction, Transition};

    fn arc(a: NativeAction) -> Arc<dyn ActionSemantics> {
        Arc::new(a)
    }

    #[test]
    fn action_refinement_is_reflexive() {
        let a = arc(NativeAction::new("A", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(1)))])
        }));
        let store = GlobalStore::new(vec![Value::Int(0)]);
        let empty: &[Value] = &[];
        check_action_refinement(&a, &a, [(&store, empty)]).unwrap();
    }

    #[test]
    fn abstract_action_may_fail_more_often() {
        // Abstract fails everywhere; concrete does something. Refinement
        // holds vacuously (the paper: "a2 can fail more often than a1").
        let concrete = arc(NativeAction::new("C", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
        }));
        let abstrakt = arc(NativeAction::new("A", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::Failure {
                reason: "abstract gate".into(),
            }
        }));
        let store = GlobalStore::new(vec![]);
        let empty: &[Value] = &[];
        check_action_refinement(&concrete, &abstrakt, [(&store, empty)]).unwrap();
    }

    #[test]
    fn concrete_failure_must_be_preserved() {
        let concrete = arc(NativeAction::new("C", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::Failure {
                reason: "concrete fails".into(),
            }
        }));
        let abstrakt = arc(NativeAction::new("A", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
        }));
        let store = GlobalStore::new(vec![]);
        let empty: &[Value] = &[];
        let err = check_action_refinement(&concrete, &abstrakt, [(&store, empty)]).unwrap_err();
        assert!(matches!(
            err,
            RefinementViolation::FailureNotPreserved { .. }
        ));
    }

    #[test]
    fn missing_transition_is_reported() {
        let concrete = arc(NativeAction::new("C", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(7)))])
        }));
        let abstrakt = arc(NativeAction::new("A", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(8)))])
        }));
        let store = GlobalStore::new(vec![Value::Int(0)]);
        let empty: &[Value] = &[];
        let err = check_action_refinement(&concrete, &abstrakt, [(&store, empty)]).unwrap_err();
        match err {
            RefinementViolation::TransitionNotAbstracted { target, .. } => {
                assert_eq!(target.get(0), &Value::Int(7));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn program_refinement_is_reflexive() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        check_program_refinement(&p, &p, [init], 100_000).unwrap();
    }

    #[test]
    fn observed_refinement_hides_representation() {
        // Counter observed modulo 2 refines itself under a lossy projection,
        // and a projection that disagrees is rejected.
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        check_observed_refinement(
            &p,
            &p,
            [(init.clone(), init.clone())],
            100_000,
            |s: &GlobalStore| s.get(0).as_int() % 2,
            |s: &GlobalStore| s.get(0).as_int() % 2,
        )
        .unwrap();
        let err = check_observed_refinement(
            &p,
            &p,
            [(init.clone(), init)],
            100_000,
            |s: &GlobalStore| s.get(0).as_int(),
            |s: &GlobalStore| s.get(0).as_int() + 1,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RefinementViolation::SummaryNotIncluded { .. }
        ));
    }

    #[test]
    fn failing_program_refines_itself_but_not_a_good_one() {
        let bad = failing_program();
        let init_bad = bad.initial_config(vec![]).unwrap();
        // Reflexivity holds even with failures (Good(P) is empty, so both
        // conditions are vacuous).
        check_program_refinement(&bad, &bad, [init_bad.clone()], 100_000).unwrap();
        // Replacing Fail with a skip yields a never-failing abstract program,
        // which the failing program does not refine.
        let skipping = bad.with_action(
            "Fail",
            Arc::new(NativeAction::new(
                "Skip",
                0,
                |g: &GlobalStore, _: &[Value]| {
                    ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
                },
            )) as Arc<dyn ActionSemantics>,
        );
        let err = check_program_refinement(&bad, &skipping, [init_bad], 100_000).unwrap_err();
        assert!(matches!(err, RefinementViolation::GoodNotPreserved { .. }));
    }
}
