//! The cross-backend oracle battery.
//!
//! Each oracle asserts that two *redundant* implementations the workspace
//! already ships agree on one generated program:
//!
//! | Oracle | Reference path | Fast path |
//! |---|---|---|
//! | `vm-interp` | tree-walk interpreter | register-bytecode VM |
//! | `check-paths` | sequential [`IsApplication::check`] | engine-scheduled `check_with` (1/2/4 threads) |
//! | `intern` | structural config equality | hash-consed [`Interner`] identity |
//! | `mover` | brute-force mover conditions on plain eval | memoized, interned [`MoverChecker`] |
//! | `bags` | element-order-oblivious multiset axioms | [`Multiset`]'s canonical representation |
//! | `reduce` | unreduced exhaustive exploration | ample-set reduced exploration (seq + steal) |
//!
//! An oracle never judges a program "wrong" — programs have no spec. It
//! judges two paths *inconsistent*, which is a bug in one of them by
//! construction. Programs whose state space exceeds the exploration budget
//! are skipped (reported as [`OracleOutcome::Skipped`]), not failed.

use std::collections::BTreeSet;
use std::fmt;

use inseq_core::IsApplication;
use inseq_engine::{Engine, ParallelExplorer, Reducer};
use inseq_kernel::ReduceMode;
use inseq_kernel::{
    ActionName, ActionOutcome, Exploration, Explorer, GlobalStore, Interner, Multiset,
    PendingAsync, Program, StateUniverse,
};
use inseq_mover::MoverChecker;

use crate::spec::{BuiltSpec, ProgramSpec};

/// Default per-oracle exploration budget (distinct configurations).
pub const DEFAULT_BUDGET: usize = 4_000;

/// One oracle of the battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// VM vs tree-walk interpreter, per `(reachable store, pending async)`.
    VmInterp,
    /// `check()` vs `check_with()` under 1/2/4 engine threads.
    CheckPaths,
    /// Interned config identity vs structural config equality.
    Intern,
    /// `MoverChecker` verdicts vs brute-force condition enumeration.
    Mover,
    /// Multiset axioms: insertion-order and permutation invariance.
    Bags,
    /// Reduced (`--reduce por`) vs unreduced exploration: verdicts must
    /// match and the reduced run must never invent behavior.
    Reduce,
}

impl Oracle {
    /// Every oracle, in battery order.
    pub const ALL: [Oracle; 6] = [
        Oracle::VmInterp,
        Oracle::CheckPaths,
        Oracle::Intern,
        Oracle::Mover,
        Oracle::Bags,
        Oracle::Reduce,
    ];

    /// The CLI name of the oracle.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Oracle::VmInterp => "vm-interp",
            Oracle::CheckPaths => "check-paths",
            Oracle::Intern => "intern",
            Oracle::Mover => "mover",
            Oracle::Bags => "bags",
            Oracle::Reduce => "reduce",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Oracle> {
        Oracle::ALL.iter().copied().find(|o| o.name() == name)
    }
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Two redundant paths disagreed.
#[derive(Debug)]
pub struct Disagreement {
    /// The oracle that caught it.
    pub oracle: Oracle,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle `{}` disagreement: {}", self.oracle, self.detail)
    }
}

impl std::error::Error for Disagreement {}

/// What a single oracle run concluded.
#[derive(Debug)]
pub enum OracleOutcome {
    /// The oracle ran to completion and both paths agreed.
    Checked,
    /// The oracle did not apply (state space over budget, spec failed to
    /// build, …). Never counts as disagreement.
    Skipped(String),
}

impl OracleOutcome {
    /// Whether the oracle actually checked anything.
    #[must_use]
    pub fn checked(&self) -> bool {
        matches!(self, OracleOutcome::Checked)
    }
}

fn explore(built: &BuiltSpec, budget: usize) -> Result<Exploration, String> {
    Explorer::new(&built.program)
        .with_budget(budget)
        .explore([built.init.clone()])
        .map_err(|e| e.to_string())
}

/// Runs one oracle on a spec.
///
/// # Errors
///
/// Returns the [`Disagreement`] when the oracle's two paths diverge.
pub fn run_oracle(
    oracle: Oracle,
    spec: &ProgramSpec,
    budget: usize,
) -> Result<OracleOutcome, Disagreement> {
    let built = match spec.build() {
        Ok(b) => b,
        Err(e) => return Ok(OracleOutcome::Skipped(format!("spec does not build: {e}"))),
    };
    let exploration = match explore(&built, budget) {
        Ok(x) => x,
        Err(e) => return Ok(OracleOutcome::Skipped(format!("exploration skipped: {e}"))),
    };
    match oracle {
        Oracle::VmInterp => vm_interp(&built, &exploration),
        Oracle::CheckPaths => check_paths(&built, budget),
        Oracle::Intern => intern(&exploration),
        Oracle::Mover => mover(&built, &exploration),
        Oracle::Bags => bags(&built, &exploration),
        Oracle::Reduce => reduce(&built, &exploration, budget),
    }
}

/// Runs several oracles; stops at the first disagreement.
///
/// # Errors
///
/// Returns the first [`Disagreement`].
pub fn run_battery(
    oracles: &[Oracle],
    spec: &ProgramSpec,
    budget: usize,
) -> Result<Vec<(Oracle, OracleOutcome)>, Disagreement> {
    oracles
        .iter()
        .map(|&o| run_oracle(o, spec, budget).map(|out| (o, out)))
        .collect()
}

/// `true` when `oracle` disagrees on `spec` — the shrinker's interest
/// predicate. Build failures, skips, and agreements all count as "no".
#[must_use]
pub fn disagrees(oracle: Oracle, spec: &ProgramSpec, budget: usize) -> bool {
    run_oracle(oracle, spec, budget).is_err()
}

// ---------------------------------------------------------------------------
// Oracle 1: VM vs interpreter
// ---------------------------------------------------------------------------

fn vm_interp(built: &BuiltSpec, exploration: &Exploration) -> Result<OracleOutcome, Disagreement> {
    let mut compared = 0usize;
    for config in exploration.configs() {
        for pa in config.pending.distinct() {
            let Some(action) = built.action(pa.action.as_str()) else {
                continue;
            };
            let Some(compiled) = action.eval_compiled(&config.globals, &pa.args) else {
                continue; // action not compilable; no fast path to compare
            };
            let interp = action.eval_interp(&config.globals, &pa.args);
            if compiled != interp {
                return Err(Disagreement {
                    oracle: Oracle::VmInterp,
                    detail: format!(
                        "`{}` at store {} with args {:?}: VM produced {:?}, interpreter {:?}",
                        pa.action, config.globals, pa.args, compiled, interp
                    ),
                });
            }
            compared += 1;
        }
    }
    if compared == 0 {
        return Ok(OracleOutcome::Skipped("no pending async to compare".into()));
    }
    Ok(OracleOutcome::Checked)
}

// ---------------------------------------------------------------------------
// Oracle 2: check() vs check_with()
// ---------------------------------------------------------------------------

/// A mechanical IS application over a generated program: eliminate every
/// non-entry action, with the entry action standing in for both the
/// invariant `I` and the replacement `M'`, identity abstractions (the
/// default), and a choice function picking the least eliminated pending
/// async. The premises frequently *fail* on random programs — that is the
/// point: both check paths must fail identically.
fn mechanical_application(built: &BuiltSpec, budget: usize) -> IsApplication {
    inseq_core::mechanical_application(&built.program, built.init.clone(), budget)
}

fn check_paths(built: &BuiltSpec, budget: usize) -> Result<OracleOutcome, Disagreement> {
    if built.program.action_names().count() < 2 {
        return Ok(OracleOutcome::Skipped(
            "single-action program: nothing to eliminate".into(),
        ));
    }
    let app = mechanical_application(built, budget);
    let sequential = app.check();

    let mut parallel_runs = Vec::new();
    for threads in [1usize, 2, 4] {
        let engine = Engine::new().with_threads(threads);
        parallel_runs.push((threads, app.check_with(&engine)));
    }

    for (threads, run) in &parallel_runs {
        if sequential.is_ok() != run.is_ok() {
            return Err(Disagreement {
                oracle: Oracle::CheckPaths,
                detail: format!(
                    "check() {} but check_with({threads} threads) {}",
                    describe(&sequential.as_ref().map(|_| ()).map_err(|e| e.premise())),
                    describe(&run.as_ref().map(|_| ()).map_err(|e| e.premise())),
                ),
            });
        }
    }

    match &sequential {
        Ok(seq_report) => {
            for (threads, run) in &parallel_runs {
                let (par_report, engine_report) =
                    run.as_ref().expect("ok-ness agreement checked above");
                if !engine_report.all_passed() {
                    return Err(Disagreement {
                        oracle: Oracle::CheckPaths,
                        detail: format!(
                            "check_with({threads} threads) returned Ok but a scheduled job failed"
                        ),
                    });
                }
                if seq_report != par_report {
                    return Err(Disagreement {
                        oracle: Oracle::CheckPaths,
                        detail: format!(
                            "IS reports differ between check() and check_with({threads} threads): \
                             {seq_report:?} vs {par_report:?}"
                        ),
                    });
                }
            }
        }
        Err(_) => {
            // The two paths visit premises in different orders, so when
            // several premises fail independently the *sequential* and
            // *parallel* first-violations may legitimately name different
            // premises. What must hold: the job-DAG path is deterministic —
            // every engine width reports the same violated premise.
            let premises: Vec<&'static str> = parallel_runs
                .iter()
                .map(|(_, run)| match run {
                    Err(v) => v.premise(),
                    Ok(_) => unreachable!("ok-ness agreement checked above"),
                })
                .collect();
            if premises.windows(2).any(|w| w[0] != w[1]) {
                return Err(Disagreement {
                    oracle: Oracle::CheckPaths,
                    detail: format!(
                        "check_with premise differs across engine widths 1/2/4: {premises:?}"
                    ),
                });
            }
        }
    }
    Ok(OracleOutcome::Checked)
}

fn describe(r: &Result<(), &'static str>) -> String {
    match r {
        Ok(()) => "passed".to_owned(),
        Err(premise) => format!("violated premise {premise}"),
    }
}

// ---------------------------------------------------------------------------
// Oracle 3: interned vs structural config identity
// ---------------------------------------------------------------------------

fn intern(exploration: &Exploration) -> Result<OracleOutcome, Disagreement> {
    let fail = |detail: String| {
        Err(Disagreement {
            oracle: Oracle::Intern,
            detail,
        })
    };
    let mut interner = Interner::new();
    let mut ids = Vec::new();
    for config in exploration.configs() {
        let (id, fresh) = interner.intern_config(config);
        if !fresh {
            // The explorer deduplicates structurally; a non-fresh intern of
            // a distinct exploration config means the interner conflated
            // two structurally different configurations.
            return fail(format!(
                "exploration config {config} interned as already-seen id {id:?}"
            ));
        }
        let (again, fresh_again) = interner.intern_config(config);
        if fresh_again || again != id {
            return fail(format!(
                "re-interning {config} gave ({again:?}, fresh={fresh_again}), expected ({id:?}, fresh=false)"
            ));
        }
        if interner.find_config(config) != Some(id) {
            return fail(format!(
                "find_config disagrees with intern_config for {config}"
            ));
        }
        let resolved = interner.resolve_config(id);
        if resolved != *config {
            return fail(format!(
                "resolve_config round-trip changed the config: {config} became {resolved}"
            ));
        }
        ids.push(id);
    }
    // Interned identity must induce exactly the structural quotient: as many
    // distinct ids as distinct configs.
    let distinct: BTreeSet<_> = ids.iter().map(|id| format!("{id:?}")).collect();
    if distinct.len() != exploration.config_count() {
        return fail(format!(
            "{} structural configs produced {} interned identities",
            exploration.config_count(),
            distinct.len()
        ));
    }
    Ok(OracleOutcome::Checked)
}

// ---------------------------------------------------------------------------
// Oracle 4: MoverChecker vs brute force
// ---------------------------------------------------------------------------

/// Plain-eval mirror of the left/right mover conditions: no interning, no
/// memoization, structural comparison throughout. Disagreement with the
/// id-comparing [`MoverChecker`] exposes either an interner identity bug or
/// a checker logic bug.
struct BruteForce<'a> {
    program: &'a Program,
    universe: &'a StateUniverse,
}

impl BruteForce<'_> {
    fn eval(&self, pa: &PendingAsync, store: &GlobalStore) -> Option<ActionOutcome> {
        let action = self.program.action(&pa.action).ok()?;
        Some(action.eval(store, &pa.args))
    }

    /// Is there an execution `first; second` from `store` ending at
    /// `target` that creates exactly (`omega_first`, `omega_second`)?
    fn order_reaches(
        &self,
        first: &PendingAsync,
        second: &PendingAsync,
        store: &GlobalStore,
        target: &GlobalStore,
        omega_first: &Multiset<PendingAsync>,
        omega_second: &Multiset<PendingAsync>,
    ) -> bool {
        let Some(ActionOutcome::Transitions(first_ts)) = self.eval(first, store) else {
            return false;
        };
        for t1 in &first_ts {
            if t1.created != *omega_first {
                continue;
            }
            if let Some(ActionOutcome::Transitions(second_ts)) = self.eval(second, &t1.globals) {
                if second_ts
                    .iter()
                    .any(|t2| t2.globals == *target && t2.created == *omega_second)
                {
                    return true;
                }
            }
        }
        false
    }

    fn left_verdict(&self, name: &ActionName) -> bool {
        for (pa_l, pa_x, stores) in self.universe.coenabled_with_first(name) {
            if self.program.action(&pa_x.action).is_err() {
                continue;
            }
            for g in stores {
                let Some(l_out) = self.eval(pa_l, g) else {
                    continue;
                };
                let Some(x_out) = self.eval(pa_x, g) else {
                    continue;
                };
                let l_fails = l_out.is_failure();
                // (1) forward preservation of the mover's gate.
                if !l_fails {
                    if let ActionOutcome::Transitions(x_ts) = &x_out {
                        for t in x_ts {
                            if self.eval(pa_l, &t.globals).is_some_and(|o| o.is_failure()) {
                                return false;
                            }
                        }
                    }
                }
                // (2) backward preservation of the partner's gate.
                if let ActionOutcome::Transitions(l_ts) = &l_out {
                    if x_out.is_failure() {
                        for t in l_ts {
                            if self.eval(pa_x, &t.globals).is_some_and(|o| !o.is_failure()) {
                                return false;
                            }
                        }
                    }
                }
                // (3) commutation: x; l ⊑ l; x.
                if !l_fails {
                    if let ActionOutcome::Transitions(x_ts) = &x_out {
                        for tx in x_ts {
                            if let Some(ActionOutcome::Transitions(l_after)) =
                                self.eval(pa_l, &tx.globals)
                            {
                                for tl in &l_after {
                                    if !self.order_reaches(
                                        pa_l,
                                        pa_x,
                                        g,
                                        &tl.globals,
                                        &tl.created,
                                        &tx.created,
                                    ) {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // (4) non-blocking wherever the gate holds.
        for (g, args) in self.universe.enabled_at(name) {
            let pa = PendingAsync::new(name.clone(), args.clone());
            if let Some(ActionOutcome::Transitions(ts)) = self.eval(&pa, g) {
                if ts.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    fn right_verdict(&self, name: &ActionName) -> bool {
        for (pa_r, pa_x, stores) in self.universe.coenabled_with_first(name) {
            if self.program.action(&pa_x.action).is_err() {
                continue;
            }
            for g in stores {
                let Some(r_out) = self.eval(pa_r, g) else {
                    continue;
                };
                let Some(x_out) = self.eval(pa_x, g) else {
                    continue;
                };
                if let ActionOutcome::Transitions(r_ts) = &r_out {
                    // Dual of (1): the partner's gate survives the mover.
                    if !x_out.is_failure() {
                        for t in r_ts {
                            if self.eval(pa_x, &t.globals).is_some_and(|o| o.is_failure()) {
                                return false;
                            }
                        }
                    }
                    // Commutation: r; x ⊑ x; r.
                    for tr in r_ts {
                        if let Some(ActionOutcome::Transitions(x_ts)) = self.eval(pa_x, &tr.globals)
                        {
                            for tx in &x_ts {
                                if !self.order_reaches(
                                    pa_x,
                                    pa_r,
                                    g,
                                    &tx.globals,
                                    &tx.created,
                                    &tr.created,
                                ) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
        true
    }
}

fn mover(built: &BuiltSpec, exploration: &Exploration) -> Result<OracleOutcome, Disagreement> {
    let universe = StateUniverse::from_exploration(exploration);
    let checker = MoverChecker::new(&built.program, &universe);
    let brute = BruteForce {
        program: &built.program,
        universe: &universe,
    };
    for name in built.program.action_names() {
        let action = built
            .program
            .action(name)
            .expect("iterating the program's own action names");
        let fast_left = checker.check_left(action, name).is_ok();
        let brute_left = brute.left_verdict(name);
        if fast_left != brute_left {
            return Err(Disagreement {
                oracle: Oracle::Mover,
                detail: format!(
                    "left-mover verdict for `{name}`: MoverChecker says {fast_left}, \
                     brute force says {brute_left}"
                ),
            });
        }
        let fast_right = checker.check_right(action, name).is_ok();
        let brute_right = brute.right_verdict(name);
        if fast_right != brute_right {
            return Err(Disagreement {
                oracle: Oracle::Mover,
                detail: format!(
                    "right-mover verdict for `{name}`: MoverChecker says {fast_right}, \
                     brute force says {brute_right}"
                ),
            });
        }
    }
    Ok(OracleOutcome::Checked)
}

// ---------------------------------------------------------------------------
// Oracle 5: multiset permutation invariance
// ---------------------------------------------------------------------------

fn bags(built: &BuiltSpec, exploration: &Exploration) -> Result<OracleOutcome, Disagreement> {
    let fail = |detail: String| {
        Err(Disagreement {
            oracle: Oracle::Bags,
            detail,
        })
    };
    let mut previous: Option<Multiset<PendingAsync>> = None;
    for config in exploration.configs() {
        let bag = &config.pending;
        let entries: Vec<(PendingAsync, usize)> =
            bag.iter_counts().map(|(pa, n)| (pa.clone(), n)).collect();

        // Canonical order: iter_counts ascends strictly.
        if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
            return fail(format!("iter_counts of {bag} is not strictly ascending"));
        }

        // Permutation invariance: rebuilding from entries in ascending,
        // descending, and element-interleaved order gives the same bag.
        let mut ascending = Multiset::new();
        for (pa, n) in &entries {
            ascending.insert_n(pa.clone(), *n);
        }
        let mut descending = Multiset::new();
        for (pa, n) in entries.iter().rev() {
            descending.insert_n(pa.clone(), *n);
        }
        let mut interleaved = Multiset::new();
        let occurrences: Vec<_> = bag.iter().collect();
        for pa in occurrences.into_iter().rev() {
            interleaved.insert(pa.clone());
        }
        if ascending != *bag || descending != *bag || interleaved != *bag {
            return fail(format!("insertion order changed the value of {bag}"));
        }

        // insert_n / remove_one round trip through every element.
        for (pa, n) in &entries {
            let mut copy = bag.clone();
            copy.insert_n(pa.clone(), 3);
            for _ in 0..3 {
                if !copy.remove_one(pa) {
                    return fail(format!("remove_one lost an occurrence of {pa}"));
                }
            }
            if copy != *bag {
                return fail(format!("insert_n(3)/remove_one×3 round trip changed {bag}"));
            }
            if copy.count(pa) != *n {
                return fail(format!("count of {pa} drifted through the round trip"));
            }
        }

        // Union commutes; inclusion agrees with checked subtraction.
        if let Some(prev) = &previous {
            let ab = prev.union(bag);
            let ba = bag.union(prev);
            if ab != ba {
                return fail(format!("union is not commutative on {prev} and {bag}"));
            }
            if ab.checked_sub(bag).as_ref() != Some(prev) {
                return fail(format!("(a ∪ b) ∖ b ≠ a for a={prev}, b={bag}"));
            }
            if prev.includes(bag) != prev.checked_sub(bag).is_some() {
                return fail(format!(
                    "includes and checked_sub disagree on {prev} ⊇ {bag}"
                ));
            }
        }
        previous = Some(bag.clone());
    }
    // Also exercise bags produced as action outcomes, not just explored ones.
    let _ = built;
    Ok(OracleOutcome::Checked)
}

// ---------------------------------------------------------------------------
// Oracle 6: reduced vs unreduced exploration
// ---------------------------------------------------------------------------

fn reduce(
    built: &BuiltSpec,
    exploration: &Exploration,
    budget: usize,
) -> Result<OracleOutcome, Disagreement> {
    let fail = |detail: String| {
        Err(Disagreement {
            oracle: Oracle::Reduce,
            detail,
        })
    };
    // Only ample-set pruning is on trial: generated specs carry no symmetry,
    // so `por` is the whole reduction surface a fuzz program can exercise.
    let reducer = Reducer::new(ReduceMode::Por);
    let terminals: BTreeSet<&GlobalStore> = exploration.terminal_stores().collect();
    let runs = [
        ("seq", {
            Explorer::new(&built.program)
                .with_budget(budget)
                .with_reduction(&reducer)
                .explore([built.init.clone()])
                .map(|x| {
                    (
                        x.config_count(),
                        x.has_failure(),
                        x.has_deadlock(),
                        x.terminal_stores().cloned().collect::<BTreeSet<_>>(),
                    )
                })
                .map_err(|e| e.to_string())
        }),
        ("steal w=2", {
            ParallelExplorer::new(&built.program)
                .with_workers(2)
                .with_budget(budget)
                .with_reduction(&reducer)
                .explore([built.init.clone()])
                .map(|x| {
                    (
                        x.config_count(),
                        x.has_failure(),
                        x.has_deadlock(),
                        x.terminal_stores().cloned().collect::<BTreeSet<_>>(),
                    )
                })
                .map_err(|e| e.to_string())
        }),
    ];
    for (label, run) in runs {
        let (visited, failed, deadlocked, reduced_terminals) = match run {
            Ok(v) => v,
            // A reduced run that exhausts the budget the unreduced run fit in
            // would itself be a reduction bug, but the error carries reduced
            // frontier counts, not a verdict — treat it as a skip and let the
            // visited-count check below catch real blowups on specs where
            // both runs finish.
            Err(e) => return Ok(OracleOutcome::Skipped(format!("[{label}] {e}"))),
        };
        if failed != exploration.has_failure() {
            return fail(format!(
                "[{label}] reduced failure verdict {failed} vs unreduced {}",
                exploration.has_failure()
            ));
        }
        if deadlocked != exploration.has_deadlock() {
            return fail(format!(
                "[{label}] reduced deadlock verdict {deadlocked} vs unreduced {}",
                exploration.has_deadlock()
            ));
        }
        if visited > exploration.config_count() {
            return fail(format!(
                "[{label}] reduction visited {visited} configs, more than the unreduced {}",
                exploration.config_count()
            ));
        }
        // One-sided terminal contract: pruning may drop interleaving-specific
        // finals but can never invent one.
        if let Some(invented) = reduced_terminals.iter().find(|t| !terminals.contains(t)) {
            return fail(format!(
                "[{label}] reduction invented a terminal store: {invented}"
            ));
        }
    }
    Ok(OracleOutcome::Checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn battery_agrees_on_a_spread_of_generated_programs() {
        let config = GenConfig::default();
        for seed in 0..25 {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = generate(&mut rng, &config);
            run_battery(&Oracle::ALL, &spec, DEFAULT_BUDGET)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    fn oracle_names_round_trip() {
        for o in Oracle::ALL {
            assert_eq!(Oracle::from_name(o.name()), Some(o));
        }
        assert_eq!(Oracle::from_name("nope"), None);
    }
}
