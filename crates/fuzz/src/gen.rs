//! Seeded, size-bounded generation of well-typed DSL programs.
//!
//! Every construction site is **sort-directed**: an expression is generated
//! *for* a target sort out of variables of that sort and constructors that
//! produce it, statement targets are drawn from variables of the sort the
//! statement needs, and `async`/`call` arguments follow the callee's
//! declared signature. Combined with the structural rules below, a
//! generated [`ProgramSpec`] always passes `inseq_lang`'s typechecker — the
//! generator never needs a discard-and-retry loop (a debug assertion in
//! [`generate`] enforces this).
//!
//! Two structural rules keep every generated program's state space finite:
//!
//! * **Spawn DAG** — the action at position `i` may `async` only actions at
//!   positions `j < i` (the entry action sits last), so each pending async
//!   creates strictly "smaller" work and the total number of steps in any
//!   run is bounded.
//! * **Calls reach only leaves** — `call` targets must have bodies free of
//!   `async`/`call`, bounding atomic-step inlining to one level.
//!
//! Partial operations that can fail at runtime for reasons other than an
//! `assert` gate (`div`/`mod`, `unwrap`, `min`/`max` of possibly-empty
//! collections) are never emitted: backends must agree on *failure reasons*
//! verbatim, and keeping failures to assertion gates makes disagreement
//! triage unambiguous.

use inseq_kernel::{Multiset, Value};
use inseq_lang::build as e;
use inseq_lang::{Expr, Sort};
use rand::{rngs::StdRng, seq::SliceRandom, Rng};

use crate::spec::{ActionSpec, ProgramSpec, SpecStmt};

/// Size bounds for generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of actions, entry action included (min 1).
    pub max_actions: usize,
    /// Maximum statements per action body (top level).
    pub max_stmts: usize,
    /// Maximum number of global variables (min 1).
    pub max_globals: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_actions: 4,
            max_stmts: 5,
            max_globals: 4,
        }
    }
}

/// The sorts global variables are drawn from. Collections are over `Int` so
/// that every collection global can serve as a channel, a choose domain, or
/// a quantification range without sort plumbing.
pub(crate) fn global_sort(rng: &mut StdRng) -> Sort {
    match rng.gen_range(0..8) {
        0 | 1 => Sort::Int, // ints twice as likely: arithmetic is the hot path
        2 => Sort::Bool,
        3 => Sort::set(Sort::Int),
        4 => Sort::bag(Sort::Int),
        5 => Sort::seq(Sort::Int),
        6 => Sort::map(Sort::Int, Sort::Int),
        _ => Sort::opt(Sort::Int),
    }
}

fn small_int(rng: &mut StdRng) -> i64 {
    rng.gen_range(0..6) as i64 - 2
}

pub(crate) fn random_value(rng: &mut StdRng, sort: &Sort) -> Value {
    match sort {
        Sort::Unit => Value::Unit,
        Sort::Bool => Value::Bool(rng.gen_bool(0.5)),
        Sort::Int => Value::Int(small_int(rng)),
        Sort::Opt(inner) => {
            if rng.gen_bool(0.5) {
                Value::some(random_value(rng, inner))
            } else {
                Value::none()
            }
        }
        Sort::Tuple(ss) => Value::Tuple(ss.iter().map(|s| random_value(rng, s)).collect()),
        Sort::Set(inner) => Value::Set(
            (0..rng.gen_range(0..3))
                .map(|_| random_value(rng, inner))
                .collect(),
        ),
        Sort::Bag(inner) => {
            let mut bag = Multiset::new();
            for _ in 0..rng.gen_range(0..3) {
                bag.insert_n(random_value(rng, inner), rng.gen_range(1..3));
            }
            Value::Bag(bag)
        }
        Sort::Seq(inner) => Value::Seq(
            (0..rng.gen_range(0..3))
                .map(|_| random_value(rng, inner))
                .collect(),
        ),
        Sort::Map(key, value) => {
            let mut map = inseq_kernel::Map::new(random_value(rng, value));
            for _ in 0..rng.gen_range(0..3) {
                map.set_in_place(random_value(rng, key), random_value(rng, value));
            }
            Value::Map(map)
        }
    }
}

/// The variables visible inside one action body.
struct Scope {
    /// `(name, sort, assignable)`: params are readable but never assigned.
    vars: Vec<(String, Sort, bool)>,
}

impl Scope {
    fn of_sort(&self, sort: &Sort) -> Vec<&str> {
        self.vars
            .iter()
            .filter(|(_, s, _)| s == sort)
            .map(|(n, _, _)| n.as_str())
            .collect()
    }

    fn assignable_of_sort(&self, sort: &Sort) -> Vec<&str> {
        self.vars
            .iter()
            .filter(|(_, s, a)| *a && s == sort)
            .map(|(n, _, _)| n.as_str())
            .collect()
    }

    fn channels(&self) -> Vec<(&str, bool)> {
        // (name, is_seq); both Bag<Int> and Seq<Int> carry Int messages.
        self.vars
            .iter()
            .filter_map(|(n, s, _)| match s {
                Sort::Bag(inner) if **inner == Sort::Int => Some((n.as_str(), false)),
                Sort::Seq(inner) if **inner == Sort::Int => Some((n.as_str(), true)),
                _ => None,
            })
            .collect()
    }
}

fn pick<'a>(rng: &mut StdRng, items: &[&'a str]) -> Option<&'a str> {
    items.choose(rng).copied()
}

// ---------------------------------------------------------------------------
// Sort-directed expression generation
// ---------------------------------------------------------------------------

fn gen_int(rng: &mut StdRng, scope: &Scope, depth: usize) -> Expr {
    let vars = scope.of_sort(&Sort::Int);
    if depth == 0 {
        return match pick(rng, &vars) {
            // Biased toward `var + const`: runtime additions with a variable
            // operand are exactly what the VM fault-injection hook perturbs,
            // so the generator keeps that surface large.
            Some(v) if rng.gen_bool(0.6) => e::add(e::var(v), e::int(small_int(rng))),
            Some(v) => e::var(v),
            None => e::int(small_int(rng)),
        };
    }
    match rng.gen_range(0..10) {
        0 | 1 => e::int(small_int(rng)),
        2 | 3 => match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => e::int(small_int(rng)),
        },
        4 | 5 => e::add(
            gen_int(rng, scope, depth - 1),
            gen_int(rng, scope, depth - 1),
        ),
        6 => e::sub(
            gen_int(rng, scope, depth - 1),
            gen_int(rng, scope, depth - 1),
        ),
        7 => e::mul(e::int(small_int(rng)), gen_int(rng, scope, depth - 1)),
        8 => e::ite(
            gen_bool(rng, scope, depth - 1),
            gen_int(rng, scope, depth - 1),
            gen_int(rng, scope, depth - 1),
        ),
        _ => {
            let sets = scope.of_sort(&Sort::set(Sort::Int));
            let bags = scope.of_sort(&Sort::bag(Sort::Int));
            match (pick(rng, &sets), pick(rng, &bags)) {
                (Some(v), _) if rng.gen_bool(0.5) => e::size(e::var(v)),
                (_, Some(v)) => e::count(e::var(v), gen_int(rng, scope, depth - 1)),
                (Some(v), None) => e::sum_of(e::var(v)),
                (None, None) => e::size(e::range(e::int(0), gen_int(rng, scope, depth - 1))),
            }
        }
    }
}

fn gen_bool(rng: &mut StdRng, scope: &Scope, depth: usize) -> Expr {
    let vars = scope.of_sort(&Sort::Bool);
    if depth == 0 {
        return match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => e::boolean(rng.gen_bool(0.5)),
        };
    }
    match rng.gen_range(0..10) {
        0 => e::boolean(rng.gen_bool(0.7)),
        1 => match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => e::boolean(true),
        },
        2..=4 => {
            let a = gen_int(rng, scope, depth - 1);
            let b = gen_int(rng, scope, depth - 1);
            match rng.gen_range(0..6) {
                0 => e::lt(a, b),
                1 => e::le(a, b),
                2 => e::gt(a, b),
                3 => e::ge(a, b),
                4 => e::eq(a, b),
                _ => e::ne(a, b),
            }
        }
        5 => e::not(gen_bool(rng, scope, depth - 1)),
        6 => e::and(
            gen_bool(rng, scope, depth - 1),
            gen_bool(rng, scope, depth - 1),
        ),
        7 => e::or(
            gen_bool(rng, scope, depth - 1),
            gen_bool(rng, scope, depth - 1),
        ),
        8 => {
            let colls: Vec<&str> = scope
                .vars
                .iter()
                .filter_map(|(n, s, _)| match s {
                    Sort::Set(i) | Sort::Bag(i) | Sort::Seq(i) if **i == Sort::Int => {
                        Some(n.as_str())
                    }
                    _ => None,
                })
                .collect();
            match pick(rng, &colls) {
                Some(v) => e::contains(e::var(v), gen_int(rng, scope, depth - 1)),
                None => e::contains(
                    e::range(e::int(0), e::int(2)),
                    gen_int(rng, scope, depth - 1),
                ),
            }
        }
        _ => {
            // Bounded quantifier over a small, always-finite domain.
            let domain = match pick(rng, &scope.of_sort(&Sort::set(Sort::Int))) {
                Some(v) if rng.gen_bool(0.5) => e::var(v),
                _ => e::range(e::int(0), e::int(2)),
            };
            let mut inner = Scope {
                vars: scope.vars.clone(),
            };
            inner.vars.push(("q".into(), Sort::Int, false));
            let body = gen_bool(rng, &inner, depth - 1);
            if rng.gen_bool(0.5) {
                e::forall("q", domain, body)
            } else {
                e::exists("q", domain, body)
            }
        }
    }
}

fn gen_int_collection(rng: &mut StdRng, scope: &Scope, sort: &Sort, depth: usize) -> Expr {
    let vars = scope.of_sort(sort);
    let base = |rng: &mut StdRng| match sort {
        Sort::Set(_) => e::range(e::int(0), e::int(rng.gen_range(0..3) as i64)),
        Sort::Bag(_) => Expr::Const(Value::empty_bag()),
        _ => Expr::Const(Value::empty_seq()),
    };
    if depth == 0 {
        return match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => base(rng),
        };
    }
    match rng.gen_range(0..6) {
        0 | 1 => match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => base(rng),
        },
        2 | 3 => e::with_elem(
            gen_int_collection(rng, scope, sort, depth - 1),
            gen_int(rng, scope, depth - 1),
        ),
        4 if !matches!(sort, Sort::Seq(_)) => e::union(
            gen_int_collection(rng, scope, sort, depth - 1),
            gen_int_collection(rng, scope, sort, 0),
        ),
        _ if matches!(sort, Sort::Set(_)) => {
            let mut inner = Scope {
                vars: scope.vars.clone(),
            };
            inner.vars.push(("q".into(), Sort::Int, false));
            let body = gen_bool(rng, &inner, depth - 1);
            e::filter("q", gen_int_collection(rng, scope, sort, 0), body)
        }
        _ => match pick(rng, &vars) {
            Some(v) => e::var(v),
            None => base(rng),
        },
    }
}

fn gen_expr(rng: &mut StdRng, scope: &Scope, sort: &Sort, depth: usize) -> Expr {
    match sort {
        Sort::Int => gen_int(rng, scope, depth),
        Sort::Bool => gen_bool(rng, scope, depth),
        Sort::Set(i) | Sort::Bag(i) | Sort::Seq(i) if **i == Sort::Int => {
            gen_int_collection(rng, scope, sort, depth)
        }
        Sort::Opt(i) if **i == Sort::Int => match pick(rng, &scope.of_sort(sort)) {
            Some(v) if rng.gen_bool(0.5) => e::var(v),
            _ if rng.gen_bool(0.5) => e::some(gen_int(rng, scope, depth.saturating_sub(1))),
            _ => e::none(),
        },
        Sort::Map(k, v) if **k == Sort::Int && **v == Sort::Int => {
            match pick(rng, &scope.of_sort(sort)) {
                Some(var) if rng.gen_bool(0.7) => e::var(var),
                Some(var) => e::set_at(
                    e::var(var),
                    gen_int(rng, scope, 0),
                    gen_int(rng, scope, depth.saturating_sub(1)),
                ),
                None => Expr::Const(Value::const_map(Value::Int(0))),
            }
        }
        // Sorts outside the generator's global pool: fall back to a literal.
        other => Expr::Const(other.default_value()),
    }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct ActionCtx<'a> {
    /// Earlier actions this one may `async` (spawn-DAG rule).
    spawnable: &'a [ActionSpec],
    /// Earlier *leaf* actions this one may `call`.
    callable: &'a [usize],
}

fn gen_assign(rng: &mut StdRng, scope: &Scope) -> SpecStmt {
    // Pick an assignable variable, biased toward Int (the arithmetic path).
    let int_targets = scope.assignable_of_sort(&Sort::Int);
    let all_targets: Vec<(String, Sort)> = scope
        .vars
        .iter()
        .filter(|(_, _, a)| *a)
        .map(|(n, s, _)| (n.clone(), s.clone()))
        .collect();
    if !int_targets.is_empty() && rng.gen_bool(0.6) {
        let target = int_targets[rng.gen_range(0..int_targets.len())].to_owned();
        return SpecStmt::Assign(target, gen_int(rng, scope, 2));
    }
    let (name, sort) = all_targets[rng.gen_range(0..all_targets.len())].clone();
    SpecStmt::Assign(name.clone(), gen_expr(rng, scope, &sort, 2))
}

fn gen_simple_stmt(rng: &mut StdRng, scope: &Scope) -> SpecStmt {
    let channels = scope.channels();
    match rng.gen_range(0..10) {
        0..=3 => gen_assign(rng, scope),
        4 | 5 if !channels.is_empty() => {
            let (chan, _) = channels[rng.gen_range(0..channels.len())];
            SpecStmt::Send {
                chan: chan.to_owned(),
                key: None,
                msg: gen_int(rng, scope, 1),
            }
        }
        6 if !channels.is_empty() => {
            let (chan, _) = channels[rng.gen_range(0..channels.len())];
            SpecStmt::Recv {
                var: "t0".into(),
                chan: chan.to_owned(),
                key: None,
            }
        }
        7 => SpecStmt::Assume(gen_bool(rng, scope, 1)),
        _ => gen_assign(rng, scope),
    }
}

fn gen_stmt(rng: &mut StdRng, scope: &Scope, ctx: &ActionCtx<'_>, depth: usize) -> SpecStmt {
    if depth >= 2 {
        return gen_simple_stmt(rng, scope);
    }
    let channels = scope.channels();
    let maps = scope.of_sort(&Sort::map(Sort::Int, Sort::Int));
    match rng.gen_range(0..20) {
        0..=4 => gen_assign(rng, scope),
        5 | 6 => SpecStmt::If(
            gen_bool(rng, scope, 2),
            (0..rng.gen_range(1..3))
                .map(|_| gen_stmt(rng, scope, ctx, depth + 1))
                .collect(),
            (0..rng.gen_range(0..2))
                .map(|_| gen_stmt(rng, scope, ctx, depth + 1))
                .collect(),
        ),
        7 => SpecStmt::ForRange(
            "t0".into(),
            e::int(0),
            e::int(rng.gen_range(0..3) as i64),
            (0..rng.gen_range(1..3))
                .map(|_| gen_simple_stmt(rng, scope))
                .collect(),
        ),
        8 | 9 => SpecStmt::Choose(
            "t0".into(),
            if rng.gen_bool(0.5) {
                gen_int_collection(rng, scope, &Sort::set(Sort::Int), 1)
            } else {
                gen_int_collection(rng, scope, &Sort::bag(Sort::Int), 1)
            },
        ),
        10 => SpecStmt::Assume(gen_bool(rng, scope, 2)),
        11 => SpecStmt::Assert(
            // Mostly-true assertions: a sprinkle of genuine gate failures
            // without drowning every run in failing configurations.
            if rng.gen_bool(0.8) {
                e::or(gen_bool(rng, scope, 2), e::boolean(true))
            } else {
                gen_bool(rng, scope, 2)
            },
            "fuzz-assert".into(),
        ),
        12 | 13 if !channels.is_empty() => {
            let (chan, _) = channels[rng.gen_range(0..channels.len())];
            SpecStmt::Send {
                chan: chan.to_owned(),
                key: None,
                msg: gen_int(rng, scope, 2),
            }
        }
        14 if !channels.is_empty() => {
            let (chan, _) = channels[rng.gen_range(0..channels.len())];
            SpecStmt::Recv {
                var: "t0".into(),
                chan: chan.to_owned(),
                key: None,
            }
        }
        15 if !maps.is_empty() => {
            let m = maps[rng.gen_range(0..maps.len())].to_owned();
            SpecStmt::AssignAt(m, gen_int(rng, scope, 1), gen_int(rng, scope, 2))
        }
        16 | 17 if !ctx.spawnable.is_empty() => {
            let target = &ctx.spawnable[rng.gen_range(0..ctx.spawnable.len())];
            SpecStmt::Async {
                callee: target.name.clone(),
                args: target
                    .params
                    .iter()
                    .map(|(_, s)| gen_expr(rng, scope, s, 1))
                    .collect(),
            }
        }
        18 if !ctx.callable.is_empty() => {
            let idx = ctx.callable[rng.gen_range(0..ctx.callable.len())];
            let target = &ctx.spawnable[idx];
            SpecStmt::Call {
                callee: target.name.clone(),
                args: target
                    .params
                    .iter()
                    .map(|(_, s)| gen_expr(rng, scope, s, 1))
                    .collect(),
            }
        }
        _ => gen_assign(rng, scope),
    }
}

pub(crate) fn block_is_leaf(block: &[SpecStmt]) -> bool {
    block.iter().all(|s| match s {
        SpecStmt::Async { .. } | SpecStmt::Call { .. } => false,
        SpecStmt::If(_, t, e) => block_is_leaf(t) && block_is_leaf(e),
        SpecStmt::ForRange(_, _, _, body) => block_is_leaf(body),
        _ => true,
    })
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

/// Generates one well-typed program spec.
///
/// Deterministic per RNG state; the same seed and config always produce the
/// same spec. Every returned spec builds (`spec.build().is_ok()`).
#[must_use]
pub fn generate(rng: &mut StdRng, config: &GenConfig) -> ProgramSpec {
    let n_globals = rng.gen_range(1..config.max_globals.max(1) + 1);
    let globals: Vec<(String, Sort, Value)> = (0..n_globals)
        .map(|i| {
            let sort = global_sort(rng);
            let value = random_value(rng, &sort);
            (format!("g{i}"), sort, value)
        })
        .collect();

    let n_actions = rng.gen_range(1..config.max_actions.max(1) + 1);
    let mut actions: Vec<ActionSpec> = Vec::with_capacity(n_actions);
    let mut leaf_indexes: Vec<usize> = Vec::new();

    for i in 0..n_actions {
        let is_main = i == n_actions - 1;
        let name = if is_main {
            "Main".to_owned()
        } else {
            format!("A{i}")
        };
        let params: Vec<(String, Sort)> = if is_main {
            Vec::new()
        } else {
            (0..rng.gen_range(0..3))
                .map(|p| (format!("p{p}"), Sort::Int))
                .collect()
        };
        let mut locals: Vec<(String, Sort)> = vec![("t0".into(), Sort::Int)];
        if rng.gen_bool(0.4) {
            locals.push(("t1".into(), Sort::Bool));
        }

        let mut vars: Vec<(String, Sort, bool)> = globals
            .iter()
            .map(|(n, s, _)| (n.clone(), s.clone(), true))
            .collect();
        vars.extend(params.iter().map(|(n, s)| (n.clone(), s.clone(), false)));
        vars.extend(locals.iter().map(|(n, s)| (n.clone(), s.clone(), true)));
        let scope = Scope { vars };

        let ctx = ActionCtx {
            spawnable: &actions,
            callable: &leaf_indexes,
        };
        let body: Vec<SpecStmt> = (0..rng.gen_range(1..config.max_stmts.max(1) + 1))
            .map(|_| gen_stmt(rng, &scope, &ctx, 0))
            .collect();

        if block_is_leaf(&body) {
            leaf_indexes.push(i);
        }
        actions.push(ActionSpec {
            name,
            params,
            locals,
            body,
        });
    }

    let spec = ProgramSpec {
        globals,
        actions,
        main: "Main".into(),
        pending: vec![("Main".into(), Vec::new())],
    };
    debug_assert!(
        spec.build().is_ok(),
        "generator emitted an ill-typed spec: {:?}",
        spec.build().err()
    );
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_generated_spec_typechecks_by_construction() {
        let config = GenConfig::default();
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = generate(&mut rng, &config);
            spec.build()
                .unwrap_or_else(|e| panic!("seed {seed}: generated spec fails to build: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GenConfig::default();
        let text_a = {
            let mut rng = StdRng::seed_from_u64(42);
            crate::serial::write_spec(&generate(&mut rng, &config))
        };
        let text_b = {
            let mut rng = StdRng::seed_from_u64(42);
            crate::serial::write_spec(&generate(&mut rng, &config))
        };
        assert_eq!(text_a, text_b);
    }

    #[test]
    fn specs_round_trip_through_the_corpus_format() {
        let config = GenConfig::default();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = generate(&mut rng, &config);
            let text = crate::serial::write_spec(&spec);
            let reparsed = crate::serial::parse_spec(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
            assert_eq!(text, crate::serial::write_spec(&reparsed), "seed {seed}");
            reparsed.build().expect("round-tripped spec builds");
        }
    }
}
