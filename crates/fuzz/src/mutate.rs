//! Mutation operators over [`ProgramSpec`]s for the guided campaign.
//!
//! Where [`crate::gen`] builds programs from nothing, the mutators make a
//! *small* sound edit to a program that already earned its place in the
//! corpus, so the campaign can probe the neighborhood of
//! coverage-discovering inputs instead of restarting from scratch.
//!
//! **Soundness contract.** Every spec [`mutate`] returns satisfies the same
//! invariants the generator guarantees:
//!
//! * it builds through the ordinary `inseq_lang` typechecker
//!   (`spec.build().is_ok()`);
//! * it is finite by construction: the spawn DAG still points strictly
//!   backwards (action `i` only `async`s actions `j < i`) and `call`
//!   targets are still leaves;
//! * it respects the size bounds in [`MutateConfig`].
//!
//! A candidate edit that would break any of these is rejected *by the
//! mutator* (the attempt loop tries a different operator); an unsound
//! program never reaches the oracle battery. `tests/mutator_soundness.rs`
//! property-tests this over hundreds of mutants.

use inseq_kernel::Value;
use inseq_lang::{build as e, Expr};
use rand::{rngs::StdRng, Rng};

use crate::gen::{block_is_leaf, global_sort, random_value};
use crate::shrink::{count_spec_ints, for_each_spec_int};
use crate::spec::{ProgramSpec, SpecStmt};

/// The mutation operators, in the order [`mutate`] indexes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// Copy one top-level statement from one action into another.
    Splice,
    /// Negate a gate: an `assert`, `assume`, or `if` condition.
    GateFlip,
    /// Nudge one integer constant by a small delta.
    ConstNudge,
    /// Retarget an `async` to a different (still earlier) action.
    RewireSpawn,
    /// Duplicate an action under a fresh name (plus a fresh global sort)
    /// and make the copy reachable.
    DuplicateAction,
    /// Splice one statement from a freshly *generated* donor program into
    /// this one. The within-program operators above rearrange material the
    /// program already contains, which caps the VM dispatch edges they can
    /// ever discover; cross-pollination imports constructs the corpus
    /// member has never contained (in a context a fresh program would
    /// never place them in). Without it, a guided campaign loses to blind
    /// generation on edge discovery — fresh programs sample the opcode
    /// space broadly, and neighborhoods of old programs do not.
    CrossSplice,
}

impl MutOp {
    /// Every operator.
    pub const ALL: [MutOp; 6] = [
        MutOp::Splice,
        MutOp::GateFlip,
        MutOp::ConstNudge,
        MutOp::RewireSpawn,
        MutOp::DuplicateAction,
        MutOp::CrossSplice,
    ];

    /// The operator's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MutOp::Splice => "splice",
            MutOp::GateFlip => "gate-flip",
            MutOp::ConstNudge => "const-nudge",
            MutOp::RewireSpawn => "rewire-spawn",
            MutOp::DuplicateAction => "dup-action",
            MutOp::CrossSplice => "cross-splice",
        }
    }
}

/// Size bounds a mutant must respect.
#[derive(Debug, Clone)]
pub struct MutateConfig {
    /// Maximum number of actions, entry action included.
    pub max_actions: usize,
    /// Maximum total statement count across all actions.
    pub max_stmts: usize,
    /// Maximum magnitude of any integer constant.
    pub max_const: i64,
}

impl Default for MutateConfig {
    fn default() -> Self {
        MutateConfig {
            max_actions: 6,
            max_stmts: 40,
            max_const: 9,
        }
    }
}

/// Applies one sound mutation to `spec`.
///
/// Tries up to eight operator applications and returns the first candidate
/// that passes [`validate`]; when none does (tiny degenerate specs), the
/// input is returned unchanged. Deterministic per RNG state.
#[must_use]
pub fn mutate(rng: &mut StdRng, spec: &ProgramSpec, config: &MutateConfig) -> ProgramSpec {
    for _ in 0..8 {
        let op = MutOp::ALL[rng.gen_range(0..MutOp::ALL.len())];
        if let Some(candidate) = apply(rng, spec, op) {
            if validate(&candidate, config) {
                return candidate;
            }
        }
    }
    spec.clone()
}

/// Applies one specific operator; `None` when the spec has no site for it.
/// The result is a *candidate*: callers must [`validate`] before use.
#[must_use]
pub fn apply(rng: &mut StdRng, spec: &ProgramSpec, op: MutOp) -> Option<ProgramSpec> {
    match op {
        MutOp::Splice => splice(rng, spec),
        MutOp::GateFlip => gate_flip(rng, spec),
        MutOp::ConstNudge => const_nudge(rng, spec),
        MutOp::RewireSpawn => rewire_spawn(rng, spec),
        MutOp::DuplicateAction => duplicate_action(rng, spec),
        MutOp::CrossSplice => cross_splice(rng, spec),
    }
}

/// The full soundness gate: typechecks, finite by construction, within the
/// configured size bounds.
#[must_use]
pub fn validate(spec: &ProgramSpec, config: &MutateConfig) -> bool {
    spec.actions.len() <= config.max_actions
        && spec.stmt_count() <= config.max_stmts
        && consts_within(spec, config.max_const)
        && structurally_finite(spec)
        && spec.build().is_ok()
}

/// The generator's two finiteness rules, checked structurally: the spawn
/// DAG points strictly backwards and `call` targets are leaves.
#[must_use]
pub fn structurally_finite(spec: &ProgramSpec) -> bool {
    let position = |name: &str| spec.actions.iter().position(|a| a.name == name);
    spec.actions.iter().enumerate().all(|(i, action)| {
        let mut ok = true;
        for_each_stmt(&action.body, &mut |stmt| match stmt {
            SpecStmt::Async { callee, .. } => {
                ok &= position(callee).is_some_and(|j| j < i);
            }
            SpecStmt::Call { callee, .. } => {
                ok &=
                    position(callee).is_some_and(|j| j < i && block_is_leaf(&spec.actions[j].body));
            }
            _ => {}
        });
        ok
    })
}

fn consts_within(spec: &ProgramSpec, max: i64) -> bool {
    let mut ok = true;
    for_each_spec_int(&mut spec.clone(), &mut |n| ok &= n.abs() <= max);
    ok
}

fn for_each_stmt(block: &[SpecStmt], f: &mut impl FnMut(&SpecStmt)) {
    for stmt in block {
        f(stmt);
        match stmt {
            SpecStmt::If(_, t, e) => {
                for_each_stmt(t, f);
                for_each_stmt(e, f);
            }
            SpecStmt::ForRange(_, _, _, body) => for_each_stmt(body, f),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

fn splice(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    let src = rng.gen_range(0..spec.actions.len());
    let dst = rng.gen_range(0..spec.actions.len());
    let src_body = &spec.actions[src].body;
    if src_body.is_empty() {
        return None;
    }
    let stmt = src_body[rng.gen_range(0..src_body.len())].clone();
    let mut c = spec.clone();
    let at = rng.gen_range(0..c.actions[dst].body.len() + 1);
    c.actions[dst].body.insert(at, stmt);
    Some(c)
}

fn gate_flip(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    let mut c = spec.clone();
    let mut gates: Vec<&mut Expr> = Vec::new();
    for action in &mut c.actions {
        collect_gates(&mut action.body, &mut gates);
    }
    if gates.is_empty() {
        return None;
    }
    let idx = rng.gen_range(0..gates.len());
    let gate = std::mem::replace(gates[idx], Expr::Const(Value::Bool(true)));
    *gates[idx] = e::not(gate);
    Some(c)
}

fn collect_gates<'a>(block: &'a mut [SpecStmt], out: &mut Vec<&'a mut Expr>) {
    for stmt in block {
        match stmt {
            SpecStmt::Assume(cond) | SpecStmt::Assert(cond, _) => out.push(cond),
            SpecStmt::If(cond, t, e) => {
                out.push(cond);
                collect_gates(t, out);
                collect_gates(e, out);
            }
            SpecStmt::ForRange(_, _, _, body) => collect_gates(body, out),
            _ => {}
        }
    }
}

fn const_nudge(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    let total = count_spec_ints(spec);
    if total == 0 {
        return None;
    }
    let target = rng.gen_range(0..total);
    let delta = [-2i64, -1, 1, 2][rng.gen_range(0..4)];
    let mut c = spec.clone();
    let mut at = 0usize;
    for_each_spec_int(&mut c, &mut |n| {
        if at == target {
            *n += delta;
        }
        at += 1;
    });
    Some(c)
}

fn rewire_spawn(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    // Collect (action index, flat async-site ordinal) pairs.
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (i, action) in spec.actions.iter().enumerate() {
        let mut ordinal = 0usize;
        for_each_stmt(&action.body, &mut |stmt| {
            if matches!(stmt, SpecStmt::Async { .. }) {
                sites.push((i, ordinal));
                ordinal += 1;
            }
        });
    }
    // Rewiring needs an earlier action to retarget to.
    sites.retain(|&(a, _)| a > 0);
    if sites.is_empty() {
        return None;
    }
    let (action_idx, site_ordinal) = sites[rng.gen_range(0..sites.len())];
    let new_target = rng.gen_range(0..action_idx);
    let (new_name, new_args): (String, Vec<Expr>) = {
        let target = &spec.actions[new_target];
        (
            target.name.clone(),
            target
                .params
                .iter()
                .map(|(_, sort)| Expr::Const(sort.default_value()))
                .collect(),
        )
    };
    let mut c = spec.clone();
    let mut ordinal = 0usize;
    rewrite_async(
        &mut c.actions[action_idx].body,
        &mut ordinal,
        site_ordinal,
        &new_name,
        &new_args,
    );
    Some(c)
}

fn rewrite_async(
    block: &mut [SpecStmt],
    ordinal: &mut usize,
    target: usize,
    name: &str,
    new_args: &[Expr],
) {
    for stmt in block {
        match stmt {
            SpecStmt::Async { callee, args } => {
                if *ordinal == target {
                    *callee = name.to_owned();
                    *args = new_args.to_vec();
                }
                *ordinal += 1;
            }
            SpecStmt::If(_, t, e) => {
                rewrite_async(t, ordinal, target, name, new_args);
                rewrite_async(e, ordinal, target, name, new_args);
            }
            SpecStmt::ForRange(_, _, _, body) => {
                rewrite_async(body, ordinal, target, name, new_args);
            }
            _ => {}
        }
    }
}

fn duplicate_action(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    // Pick a non-entry action to duplicate.
    let candidates: Vec<usize> = (0..spec.actions.len())
        .filter(|&i| spec.actions[i].name != spec.main)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let src = candidates[rng.gen_range(0..candidates.len())];
    let fresh_name = (0..)
        .map(|k| format!("A{k}"))
        .find(|n| spec.actions.iter().all(|a| a.name != *n))
        .expect("some A{k} is unused");

    let mut c = spec.clone();
    let mut copy = c.actions[src].clone();
    copy.name = fresh_name.clone();
    // Insert right after the original: its asyncs/calls target j <= src-1 <
    // src+1, so the spawn DAG still points strictly backwards.
    c.actions.insert(src + 1, copy);
    // Fresh state surface to go with the fresh action: one new global of a
    // randomly drawn sort.
    let fresh_global = (0..)
        .map(|k| format!("g{k}"))
        .find(|n| c.globals.iter().all(|(g, _, _)| g != n))
        .expect("some g{k} is unused");
    let sort = global_sort(rng);
    let value = random_value(rng, &sort);
    c.globals.push((fresh_global, sort, value));
    // Make the copy reachable: seed it into the initial pending bag with
    // default arguments.
    let args: Vec<Value> = c.actions[src + 1]
        .params
        .iter()
        .map(|(_, sort)| sort.default_value())
        .collect();
    c.pending.push((fresh_name, args));
    Some(c)
}

fn cross_splice(rng: &mut StdRng, spec: &ProgramSpec) -> Option<ProgramSpec> {
    // The donor comes from the ordinary generator, so its statements use
    // the same `g{i}`/`l{i}` naming conventions as every generated program
    // — a spliced statement's variable references often resolve in the
    // host, and the validate() gate rejects the rest (sort clashes, absent
    // names, donor-only async targets).
    let donor = crate::gen::generate(rng, &crate::gen::GenConfig::default());
    let src = rng.gen_range(0..donor.actions.len());
    let src_body = &donor.actions[src].body;
    if src_body.is_empty() {
        return None;
    }
    let stmt = src_body[rng.gen_range(0..src_body.len())].clone();
    let dst = rng.gen_range(0..spec.actions.len());
    let mut c = spec.clone();
    let at = rng.gen_range(0..c.actions[dst].body.len() + 1);
    c.actions[dst].body.insert(at, stmt);
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use rand::SeedableRng;

    #[test]
    fn mutants_stay_sound_across_seeds() {
        let gen_config = GenConfig::default();
        let mut_config = MutateConfig::default();
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generate(&mut rng, &gen_config);
            let mut current = base;
            for step in 0..3 {
                current = mutate(&mut rng, &current, &mut_config);
                assert!(
                    validate(&current, &mut_config),
                    "seed {seed} step {step}: mutant failed the soundness gate"
                );
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let gen_config = GenConfig::default();
        let mut_config = MutateConfig::default();
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let base = generate(&mut rng, &gen_config);
            crate::serial::write_spec(&mutate(&mut rng, &base, &mut_config))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn every_operator_produces_a_validating_mutant_somewhere() {
        let gen_config = GenConfig::default();
        let mut_config = MutateConfig::default();
        for op in MutOp::ALL {
            let mut hit = false;
            'seeds: for seed in 0..200 {
                let mut rng = StdRng::seed_from_u64(seed);
                let base = generate(&mut rng, &gen_config);
                if let Some(cand) = apply(&mut rng, &base, op) {
                    if validate(&cand, &mut_config) {
                        hit = true;
                        break 'seeds;
                    }
                }
            }
            assert!(hit, "operator {} never produced a sound mutant", op.name());
        }
    }

    #[test]
    fn structural_finiteness_rejects_forward_spawns() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = generate(&mut rng, &GenConfig::default());
        assert!(structurally_finite(&spec));
        // A self-spawn in the entry action is an infinite spawn chain.
        let mut bad = spec;
        let main = bad.actions.len() - 1;
        bad.actions[main].body.push(SpecStmt::Async {
            callee: bad.main.clone(),
            args: Vec::new(),
        });
        assert!(!structurally_finite(&bad));
    }
}
