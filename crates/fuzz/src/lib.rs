//! Generative differential testing for the IS workspace.
//!
//! The crate closes the loop the hand-written suites leave open: instead of
//! checking fixed protocols against fixed expectations, it *generates*
//! well-typed DSL programs ([`gen`]), runs each through a battery of
//! redundant-path oracles ([`oracles`]) — VM vs interpreter, sequential vs
//! engine-scheduled IS checking, interned vs structural identity, memoized
//! vs brute-force mover analysis, multiset permutation invariance — and,
//! when two paths disagree, greedily shrinks the program to a locally
//! minimal repro ([`shrink`]) serialized in a textual corpus format
//! ([`serial`]) alongside the RNG seed that produced it.
//!
//! Everything operates on [`spec::ProgramSpec`], a name-based program
//! description that builds through the ordinary `inseq_lang` typechecker —
//! so every generated or shrunk program is well-typed by construction, and
//! corpus files replay through the exact pipeline hand-written protocols
//! use. [`corpus`] seeds the corpus with the paper's Table 1 protocols
//! exported through the same format.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod meta;
pub mod mutate;
pub mod oracles;
pub mod serial;
pub mod shrink;
pub mod spec;

pub use campaign::{run_campaign, CampaignConfig, CampaignResult};
pub use coverage::{measure_battery, CoverageMap, MeasureOptions, MeasuredRun};
pub use gen::{generate, GenConfig};
pub use mutate::{mutate, MutOp, MutateConfig};
pub use oracles::{run_battery, run_oracle, Disagreement, Oracle, OracleOutcome, DEFAULT_BUDGET};
pub use serial::{parse_spec, write_spec, ParseError};
pub use shrink::shrink;
pub use spec::{ActionSpec, BuiltSpec, ProgramSpec, SpecError, SpecStmt};
