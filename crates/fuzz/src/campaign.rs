//! The coverage-guided campaign: corpus evolution over the oracle battery.
//!
//! The blind campaign the fuzz binary always had generates a fresh program
//! per iteration and forgets it. The guided campaign keeps a **corpus**: a
//! program whose [`CoverageMap`] contains bits no earlier program produced
//! is retained, and later iterations *mutate* corpus members ([`crate::mutate`])
//! instead of starting over — probing the neighborhood of inputs that
//! already proved they reach new behavior. A configurable slice of
//! iterations (`fresh_ratio`) still generates from scratch so the corpus
//! never inbreeds.
//!
//! Scheduling policy: mutation parents are drawn uniformly from the most
//! recent [`RECENCY_WINDOW`] corpus entries — recent entries found bits the
//! whole earlier corpus missed, so their neighborhoods are the least
//! explored. Each parent takes several mutation steps (3–8 by default):
//! single-step mutants sit too close to their parent to out-discover fresh
//! generation, while multi-step mutants accumulate material past the
//! generator's size bounds (the mutate bounds are deliberately wider) and
//! cross-pollinate via [`crate::mutate::MutOp::CrossSplice`], which is what
//! lets a guided campaign strictly beat a blind one on distinct coverage
//! edges at equal iterations (see `tests/guided_vs_blind.rs` and
//! EXPERIMENTS.md). The corpus needs ~100 iterations of warmup before the
//! advantage shows; very short campaigns are better off blind.
//!
//! Everything is deterministic per `(seed, config)`: iteration `i` seeds
//! its own RNG with `seed + i`, so any iteration can be replayed in
//! isolation, and a campaign interrupted and re-run from the same seed
//! retraces the same trajectory.

use std::time::{Duration, Instant};

use inseq_kernel::ReduceMode;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::coverage::{measure_battery, CoverageMap, MeasureOptions};
use crate::gen::{generate, GenConfig};
use crate::mutate::{mutate, MutateConfig};
use crate::oracles::{Disagreement, Oracle};
use crate::spec::ProgramSpec;

/// Mutation parents come from the last this-many corpus entries.
const RECENCY_WINDOW: usize = 8;

/// Guided campaigns stay blind until the corpus holds this many entries.
/// A one-entry corpus makes a terrible gene pool — early mutants would all
/// orbit whatever program iteration 0 happened to produce — and the warmup
/// also keeps short guided and blind campaigns behaviorally identical, so
/// faults the battery can catch in the first few iterations are caught at
/// the same iteration in both modes (see `tests/guided_fault_race.rs`).
const WARMUP_CORPUS: usize = RECENCY_WINDOW;

/// Salt separating the scheduling RNG from the payload RNG. Scheduling
/// decisions (mutate or generate, which parent, how many steps) draw from
/// their own stream so a guided iteration that decides to generate fresh
/// produces *exactly* the program the blind campaign's same-numbered
/// iteration would — corpus entries stay replayable from the iteration
/// seed alone, and guided-vs-blind comparisons line up program-for-program
/// on fresh iterations.
const SCHED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed; iteration `i` uses `seed + i`.
    pub seed: u64,
    /// Iteration count.
    pub iters: u64,
    /// Guided (corpus evolution) or blind (fresh program every iteration).
    pub guided: bool,
    /// Fraction of guided iterations that generate fresh anyway.
    pub fresh_ratio: f64,
    /// Mutation steps per guided iteration, drawn uniformly from
    /// `min_mutate_steps..=max_mutate_steps`. Enough steps let mutants
    /// accumulate material past the generator's size bounds (the mutate
    /// bounds are wider), reaching program shapes fresh generation never
    /// produces.
    pub min_mutate_steps: usize,
    /// Upper bound of the per-iteration mutation step draw (inclusive).
    pub max_mutate_steps: usize,
    /// Generator bounds.
    pub gen: GenConfig,
    /// Mutant bounds.
    pub mutate: MutateConfig,
    /// Per-oracle exploration budget.
    pub budget: usize,
    /// Worker count of the recorded parallel exploration section.
    pub workers: usize,
    /// Reduction mode of the recorded reduced exploration section.
    pub reduce: ReduceMode,
    /// Wall-clock cap; the campaign stops at the first iteration boundary
    /// past it. `None` means iterations alone bound the run.
    pub time_limit: Option<Duration>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            iters: 200,
            guided: true,
            fresh_ratio: 0.5,
            min_mutate_steps: 3,
            max_mutate_steps: 8,
            gen: GenConfig::default(),
            mutate: MutateConfig::default(),
            budget: crate::oracles::DEFAULT_BUDGET,
            workers: 2,
            reduce: ReduceMode::Por,
            time_limit: None,
        }
    }
}

impl CampaignConfig {
    fn measure_options(&self) -> MeasureOptions {
        MeasureOptions {
            budget: self.budget,
            workers: self.workers,
            reduce: self.reduce,
        }
    }
}

/// How a corpus entry was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Fresh from the generator.
    Generated,
    /// Mutated from an earlier corpus entry.
    Mutated,
}

impl EntryKind {
    /// The metadata name of the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EntryKind::Generated => "generated",
            EntryKind::Mutated => "mutated",
        }
    }
}

/// One retained program.
#[derive(Debug)]
pub struct CorpusEntry {
    /// The program.
    pub spec: ProgramSpec,
    /// Iteration seed that produced it (`config.seed + iteration`).
    pub seed: u64,
    /// Generated or mutated.
    pub kind: EntryKind,
    /// Coverage bits this entry added when promoted.
    pub gain: usize,
    /// The entry's own full coverage map.
    pub coverage: CoverageMap,
}

/// One point of the coverage-over-time trend (recorded whenever the global
/// edge count grows, plus once at the end).
#[derive(Debug, Clone)]
pub struct TrendPoint {
    /// Iterations completed when the point was taken.
    pub iteration: u64,
    /// Global distinct coverage edges at that time.
    pub edges: usize,
    /// Corpus size at that time.
    pub corpus: usize,
    /// Wall-clock seconds since the campaign started.
    pub elapsed_secs: f64,
}

/// A disagreement the campaign hit, with provenance.
#[derive(Debug)]
pub struct CampaignFinding {
    /// Iteration (0-based) at which the battery disagreed.
    pub iteration: u64,
    /// That iteration's RNG seed.
    pub seed: u64,
    /// The offending program, unshrunk.
    pub spec: ProgramSpec,
    /// The disagreement.
    pub disagreement: Disagreement,
}

/// Everything a campaign run produces.
#[derive(Debug)]
pub struct CampaignResult {
    /// Iterations actually executed (≤ `config.iters` when a disagreement
    /// or the time limit stopped the run early).
    pub iterations: u64,
    /// The union coverage map.
    pub global: CoverageMap,
    /// Retained programs, promotion order.
    pub corpus: Vec<CorpusEntry>,
    /// Coverage growth over time.
    pub trend: Vec<TrendPoint>,
    /// Cumulative per-oracle wall clock across all iterations.
    pub oracle_wall: Vec<(Oracle, Duration)>,
    /// The first disagreement, when one was found.
    pub finding: Option<CampaignFinding>,
    /// Total wall clock of the run.
    pub wall: Duration,
}

impl CampaignResult {
    /// Programs per second through the full battery.
    #[must_use]
    pub fn programs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.iterations as f64 / secs
        } else {
            0.0
        }
    }

    /// The trend as a self-contained JSON document (no serde in the tree;
    /// the fields are all numbers, so hand-rendering is trivial).
    #[must_use]
    pub fn trend_json(&self) -> String {
        let points: Vec<String> = self
            .trend
            .iter()
            .map(|p| {
                format!(
                    "{{\"iteration\":{},\"edges\":{},\"corpus\":{},\"elapsed_secs\":{:.3}}}",
                    p.iteration, p.edges, p.corpus, p.elapsed_secs
                )
            })
            .collect();
        format!(
            "{{\"iterations\":{},\"edges\":{},\"corpus\":{},\"programs_per_sec\":{:.3},\
             \"found_disagreement\":{},\"trend\":[{}]}}\n",
            self.iterations,
            self.global.edges(),
            self.corpus.len(),
            self.programs_per_sec(),
            self.finding.is_some(),
            points.join(",")
        )
    }
}

/// Runs a campaign. `on_iteration`, when given, observes each completed
/// iteration (`iteration, global edge count`) — the binary uses it for
/// progress lines.
pub fn run_campaign(
    config: &CampaignConfig,
    mut on_iteration: Option<&mut dyn FnMut(u64, usize)>,
) -> CampaignResult {
    let start = Instant::now();
    let mut global = CoverageMap::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut trend: Vec<TrendPoint> = Vec::new();
    let mut oracle_wall: Vec<(Oracle, Duration)> =
        Oracle::ALL.iter().map(|&o| (o, Duration::ZERO)).collect();
    let mut finding = None;
    let mut iterations = 0;

    for i in 0..config.iters {
        if let Some(limit) = config.time_limit {
            if start.elapsed() >= limit {
                break;
            }
        }
        let seed = config.seed.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sched = StdRng::seed_from_u64(seed ^ SCHED_SALT);

        let (spec, kind) = if config.guided
            && corpus.len() >= WARMUP_CORPUS
            && !sched.gen_bool(config.fresh_ratio)
        {
            let window = corpus.len().min(RECENCY_WINDOW);
            let parent = &corpus[corpus.len() - 1 - sched.gen_range(0..window)];
            let steps = config.min_mutate_steps.max(1);
            let span = config.max_mutate_steps.saturating_sub(steps) + 1;
            let steps = steps + sched.gen_range(0..span.max(1));
            let mut mutant = parent.spec.clone();
            for _ in 0..steps {
                mutant = mutate(&mut rng, &mutant, &config.mutate);
            }
            (mutant, EntryKind::Mutated)
        } else {
            (generate(&mut rng, &config.gen), EntryKind::Generated)
        };

        let run = measure_battery(&spec, &config.measure_options());
        for (slot, (_, wall)) in oracle_wall.iter_mut().enumerate() {
            if let Some((_, d)) = run.phases.get(slot) {
                *wall += *d;
            }
        }
        iterations = i + 1;

        if let Err(disagreement) = run.outcomes {
            finding = Some(CampaignFinding {
                iteration: i,
                seed,
                spec,
                disagreement,
            });
            break;
        }

        let gain = global.merge(&run.coverage);
        if gain > 0 {
            corpus.push(CorpusEntry {
                spec,
                seed,
                kind,
                gain,
                coverage: run.coverage,
            });
            trend.push(TrendPoint {
                iteration: iterations,
                edges: global.edges(),
                corpus: corpus.len(),
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }
        if let Some(observe) = on_iteration.as_deref_mut() {
            observe(iterations, global.edges());
        }
    }

    trend.push(TrendPoint {
        iteration: iterations,
        edges: global.edges(),
        corpus: corpus.len(),
        elapsed_secs: start.elapsed().as_secs_f64(),
    });
    CampaignResult {
        iterations,
        global,
        corpus,
        trend,
        oracle_wall,
        finding,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(guided: bool, iters: u64) -> CampaignConfig {
        CampaignConfig {
            iters,
            guided,
            budget: 600,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn guided_campaign_builds_a_corpus_and_finds_no_disagreement() {
        let result = run_campaign(&quick(true, 25), None);
        assert!(result.finding.is_none(), "{:?}", result.finding);
        assert_eq!(result.iterations, 25);
        assert!(!result.corpus.is_empty(), "corpus must retain something");
        assert!(result.global.edges() > 0);
        // Trend is monotone in edges and ends at the final count.
        let edges: Vec<usize> = result.trend.iter().map(|p| p.edges).collect();
        assert!(edges.windows(2).all(|w| w[0] <= w[1]), "{edges:?}");
        assert_eq!(*edges.last().unwrap(), result.global.edges());
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let sigs = |_| {
            let r = run_campaign(&quick(true, 15), None);
            (
                r.global.signature(),
                r.corpus.iter().map(|e| e.seed).collect::<Vec<_>>(),
            )
        };
        assert_eq!(sigs(0), sigs(1));
    }

    #[test]
    fn guided_mode_actually_mutates() {
        let result = run_campaign(&quick(true, 40), None);
        assert!(
            result.corpus.iter().any(|e| e.kind == EntryKind::Mutated),
            "40 guided iterations should promote at least one mutant"
        );
    }

    #[test]
    fn trend_json_is_well_formed_enough() {
        let result = run_campaign(&quick(false, 5), None);
        let json = result.trend_json();
        assert!(json.starts_with('{') && json.ends_with("]}\n"), "{json}");
        assert!(json.contains("\"programs_per_sec\""));
    }
}
