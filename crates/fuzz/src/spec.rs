//! Re-export shim: the spec IR moved to [`inseq_lang::spec`] so the
//! verification daemon can share it; fuzz call sites keep their paths.

pub use inseq_lang::spec::{spec_stmts, ActionSpec, BuiltSpec, ProgramSpec, SpecError, SpecStmt};
