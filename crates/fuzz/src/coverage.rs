//! The campaign's coverage signal: one [`CoverageMap`] per measured program.
//!
//! A map is the union of three bitmap families:
//!
//! * **VM dispatch edges** — `(previous opcode kind, opcode kind)` pairs
//!   recorded by `inseq_lang::coverage` while the measured program's
//!   deterministic explorations and checks execute on the register VM;
//! * **oracle outcomes** — which of the battery's oracles fired and with
//!   which verdict class (checked / skipped / disagreement);
//! * **verdict variants** — the program's own behavior classes (assertion
//!   failure, deadlock, clean termination, budget exhaustion, violated IS
//!   premises, reduction pruning), bucketed into fixed bit positions.
//!
//! **Determinism contract.** A map is a *set* of bits, and every recorded
//! section is either sequential and deterministic (kernel exploration,
//! reduced exploration, `check()`) or parallel with a worker-invariant
//! evaluation set (unreduced engine exploration: every visited
//! configuration's pending asyncs are evaluated at least once, and edges
//! per evaluation are a pure function of `(action, store, args)`). The two
//! schedule-dependent paths the workspace ships — parallel *reduced*
//! exploration, whose ample choices depend on interning order, and any
//! budget-truncated parallel run — are excluded from recording, so the same
//! seed and program produce a bit-identical signature at any worker count
//! and under any `--reduce` mode. `tests/coverage_determinism.rs` pins this.
//!
//! Measurement is process-global (the VM bitmap is shared), so
//! [`measure_battery`] serializes through a mutex: concurrent tests cannot
//! pollute each other's snapshots.

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use inseq_core::mechanical_application;
use inseq_engine::{ParallelExplorer, Reducer};
use inseq_kernel::{Explorer, ReduceMode};
use inseq_lang::coverage as vmcov;

use crate::oracles::{run_oracle, Disagreement, Oracle, OracleOutcome};
use crate::spec::ProgramSpec;

/// Number of `u64` words of auxiliary (non-VM) coverage.
const AUX_WORDS: usize = 2;

// Aux word 0 layout. Bits 0..18: oracle × outcome class (3 bits per oracle,
// battery order). The rest are verdict-variant bits:
const BIT_BUILD_FAILS: usize = 18;
const BIT_PASS: usize = 19;
const BIT_FAILURE: usize = 20;
const BIT_DEADLOCK: usize = 21;
const BIT_OVER_BUDGET: usize = 22;
const BIT_CHECK_PASSES: usize = 23;
const BIT_CHECK_VIOLATED: usize = 24;
const BIT_REDUCE_PRUNED: usize = 25;
const BIT_REDUCE_EXHAUSTIVE: usize = 26;
const BIT_REDUCE_ORBITS: usize = 27;
const BIT_REDUCE_OVER_BUDGET: usize = 28;
// Aux word 1: 64 hash buckets over violated-premise labels and failure
// reasons (distinct diagnostics are distinct behavior variants).

/// The coverage fingerprint of one measured program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    vm: Vec<u64>,
    aux: [u64; AUX_WORDS],
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// The empty map.
    #[must_use]
    pub fn new() -> Self {
        CoverageMap {
            vm: vec![0; vmcov::SNAPSHOT_WORDS],
            aux: [0; AUX_WORDS],
        }
    }

    fn words(&self) -> impl Iterator<Item = u64> + '_ {
        self.vm.iter().copied().chain(self.aux.iter().copied())
    }

    /// Total distinct coverage edges (set bits) in the map.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.words().map(|w| w.count_ones() as usize).sum()
    }

    /// Distinct VM dispatch edges alone.
    #[must_use]
    pub fn vm_edges(&self) -> usize {
        vmcov::edge_count(&self.vm)
    }

    /// Folds `other` into `self`; returns how many bits were new.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let mut fresh = 0;
        for (mine, theirs) in self
            .vm
            .iter_mut()
            .chain(self.aux.iter_mut())
            .zip(other.words())
        {
            fresh += (theirs & !*mine).count_ones() as usize;
            *mine |= theirs;
        }
        fresh
    }

    /// How many of `other`'s bits are not in `self`, without merging.
    #[must_use]
    pub fn would_add(&self, other: &CoverageMap) -> usize {
        self.words()
            .zip(other.words())
            .map(|(mine, theirs)| (theirs & !mine).count_ones() as usize)
            .sum()
    }

    /// A 16-hex-digit signature of the map, stable across runs and worker
    /// counts (FNV-1a over the bitmap words).
    #[must_use]
    pub fn signature(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in self.words() {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        let mut s = String::new();
        let _ = write!(s, "{h:016x}");
        s
    }

    fn set_aux(&mut self, word: usize, bit: usize) {
        self.aux[word] |= 1 << bit;
    }

    /// `class`: 0 = checked, 1 = skipped, 2 = disagreement.
    fn set_oracle(&mut self, oracle: Oracle, class: usize) {
        let slot = Oracle::ALL
            .iter()
            .position(|&o| o == oracle)
            .expect("oracle is one of ALL");
        self.set_aux(0, slot * 3 + class);
    }

    fn bucket_label(&mut self, label: &str) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.aux[1] |= 1 << (h % 64);
    }
}

/// Everything one measured battery run produces.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Per-oracle outcomes, or the first disagreement.
    pub outcomes: Result<Vec<(Oracle, OracleOutcome)>, Disagreement>,
    /// The program's coverage fingerprint.
    pub coverage: CoverageMap,
    /// Wall-clock spent in each oracle, battery order.
    pub phases: Vec<(Oracle, Duration)>,
}

/// Knobs of a measured run.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Exploration budget (distinct configurations) per oracle.
    pub budget: usize,
    /// Worker count of the recorded unreduced engine exploration.
    pub workers: usize,
    /// Reduction mode of the recorded reduced sequential exploration.
    pub reduce: ReduceMode,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            budget: crate::oracles::DEFAULT_BUDGET,
            workers: 2,
            reduce: ReduceMode::Por,
        }
    }
}

/// Serializes measured runs: the VM coverage bitmap is process-global.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

fn lock_measure() -> MutexGuard<'static, ()> {
    // A panicking measured test must not poison every later measurement.
    MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs the full oracle battery on `spec` while recording its coverage map.
///
/// Coverage recording follows the determinism contract in the module docs:
/// sequential exploration, reduced sequential exploration, `check()`, and
/// the worker-invariant unreduced engine exploration record VM edges; the
/// battery itself (which interleaves parallel and budget-sensitive paths)
/// runs unrecorded and contributes outcome bits only.
#[must_use]
pub fn measure_battery(spec: &ProgramSpec, opts: &MeasureOptions) -> MeasuredRun {
    let _guard = lock_measure();
    let mut map = CoverageMap::new();
    vmcov::reset();

    let built = spec.build();
    let mut within_budget = false;
    match &built {
        Err(_) => map.set_aux(0, BIT_BUILD_FAILS),
        Ok(built) => {
            vmcov::set_enabled(true);
            // Deterministic sequential exploration: verdict variants.
            match Explorer::new(&built.program)
                .with_budget(opts.budget)
                .explore([built.init.clone()])
            {
                Err(_) => map.set_aux(0, BIT_OVER_BUDGET),
                Ok(exp) => {
                    within_budget = true;
                    if exp.has_failure() {
                        map.set_aux(0, BIT_FAILURE);
                        for reason in exp.failure_reports() {
                            map.bucket_label(&reason);
                        }
                    }
                    if exp.has_deadlock() {
                        map.set_aux(0, BIT_DEADLOCK);
                    }
                    if !exp.has_failure() && !exp.has_deadlock() {
                        map.set_aux(0, BIT_PASS);
                    }
                }
            }
            // Deterministic reduced sequential exploration: pruning variants.
            let reducer = Reducer::new(opts.reduce);
            match Explorer::new(&built.program)
                .with_budget(opts.budget)
                .with_reduction(&reducer)
                .explore([built.init.clone()])
            {
                Err(_) => map.set_aux(0, BIT_REDUCE_OVER_BUDGET),
                Ok(exp) => {
                    if exp.pruned() > 0 {
                        map.set_aux(0, BIT_REDUCE_PRUNED);
                    } else {
                        map.set_aux(0, BIT_REDUCE_EXHAUSTIVE);
                    }
                    if exp.orbit_collapses() > 0 {
                        map.set_aux(0, BIT_REDUCE_ORBITS);
                    }
                }
            }
            // Sequential IS check of the mechanical application: premise
            // variants (multi-action programs only, like the oracle).
            if built.program.action_names().count() >= 2 {
                let app = mechanical_application(&built.program, built.init.clone(), opts.budget);
                match app.check() {
                    Ok(_) => map.set_aux(0, BIT_CHECK_PASSES),
                    Err(v) => {
                        map.set_aux(0, BIT_CHECK_VIOLATED);
                        map.bucket_label(v.premise());
                    }
                }
            }
            // Unreduced engine exploration at the requested worker count:
            // recorded only when the sequential run fit the budget, so a
            // truncated (schedule-dependent) parallel frontier can never
            // leak into the signature.
            if within_budget {
                let _ = ParallelExplorer::new(&built.program)
                    .with_workers(opts.workers)
                    .with_budget(opts.budget)
                    .explore([built.init.clone()]);
            }
            vmcov::set_enabled(false);
        }
    }

    // The battery re-checks everything through both sequential and parallel
    // paths; it runs unrecorded (outcome bits only) per the contract above.
    let mut outcomes = Vec::new();
    let mut phases = Vec::new();
    let mut disagreement = None;
    for &oracle in &Oracle::ALL {
        let start = Instant::now();
        let result = run_oracle(oracle, spec, opts.budget);
        phases.push((oracle, start.elapsed()));
        match result {
            Ok(out) => {
                map.set_oracle(oracle, if out.checked() { 0 } else { 1 });
                outcomes.push((oracle, out));
            }
            Err(d) => {
                map.set_oracle(oracle, 2);
                map.bucket_label(&format!("disagreement:{}", d.oracle));
                disagreement = Some(d);
                break;
            }
        }
    }
    map.vm = vmcov::snapshot();

    MeasuredRun {
        outcomes: match disagreement {
            Some(d) => Err(d),
            None => Ok(outcomes),
        },
        coverage: map,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn measurement_produces_nonempty_coverage_and_agrees() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = generate(&mut rng, &GenConfig::default());
        let run = measure_battery(&spec, &MeasureOptions::default());
        assert!(run.outcomes.is_ok(), "seed 7 battery must agree");
        assert!(run.coverage.vm_edges() > 0, "VM edges must be recorded");
        assert!(run.coverage.edges() > run.coverage.vm_edges());
        assert_eq!(run.phases.len(), Oracle::ALL.len());
    }

    #[test]
    fn merge_counts_fresh_bits_and_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = measure_battery(
            &generate(&mut rng, &GenConfig::default()),
            &MeasureOptions::default(),
        );
        let b = measure_battery(
            &generate(&mut rng, &GenConfig::default()),
            &MeasureOptions::default(),
        );
        let mut global = CoverageMap::new();
        let first = global.merge(&a.coverage);
        assert_eq!(first, a.coverage.edges());
        assert_eq!(global.would_add(&a.coverage), 0);
        assert_eq!(global.merge(&a.coverage), 0, "idempotent merge");
        let fresh = global.would_add(&b.coverage);
        assert_eq!(global.merge(&b.coverage), fresh);
        assert!(global.edges() >= a.coverage.edges().max(b.coverage.edges()));
    }

    #[test]
    fn signature_is_stable_across_repeat_measurement() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = generate(&mut rng, &GenConfig::default());
        let opts = MeasureOptions::default();
        let one = measure_battery(&spec, &opts).coverage.signature();
        let two = measure_battery(&spec, &opts).coverage.signature();
        assert_eq!(one, two);
    }
}
