//! Exporting hand-written protocols through the generator's spec format.
//!
//! The corpus under `fuzz/corpus/` is seeded with the paper's Table 1
//! protocols: each `P2` atomic-action program is converted back into a
//! [`ProgramSpec`] (name-based statements, globals with initial values, the
//! initial pending bag) and serialized with [`crate::serial::write_spec`].
//! Replaying those files exercises the exact same parse → build → explore
//! path that minimized fuzz repros use, on programs whose behavior the
//! protocol test suites pin down independently.

use std::sync::Arc;

use inseq_kernel::Config;
use inseq_lang::{DslAction, GlobalDecls};
use inseq_protocols::{
    broadcast, chang_roberts, n_buyer, paxos, ping_pong, producer_consumer, two_phase_commit, zoo,
};

use crate::spec::{spec_stmts, ActionSpec, ProgramSpec};

/// Converts built DSL actions plus an initial configuration into a spec.
///
/// `actions` must list callees before callers (every protocol's
/// `p2_dsl_actions` does) and must include every `async`/`call` target;
/// `main` is the entry action; `init` supplies both the global initial
/// values (in `decls` schema order) and the initial pending bag.
#[must_use]
pub fn export_program(
    decls: &Arc<GlobalDecls>,
    actions: &[Arc<DslAction>],
    main: &str,
    init: &Config,
) -> ProgramSpec {
    let globals = decls
        .iter()
        .enumerate()
        .map(|(i, (name, sort))| (name.to_owned(), sort.clone(), init.globals.get(i).clone()))
        .collect();
    let actions = actions
        .iter()
        .map(|a| ActionSpec {
            name: a.name().to_owned(),
            params: a.params().to_vec(),
            locals: a.locals().to_vec(),
            body: spec_stmts(a.body()),
        })
        .collect();
    let pending = init
        .pending
        .iter()
        .map(|pa| (pa.action.as_str().to_owned(), pa.args.clone()))
        .collect();
    ProgramSpec {
        globals,
        actions,
        main: main.to_owned(),
        pending,
    }
}

/// The seven Table 1 protocols as specs, on deliberately tiny instances so
/// corpus replay stays cheap: `(file stem, spec)`.
#[must_use]
pub fn table1_specs() -> Vec<(&'static str, ProgramSpec)> {
    let mut out = Vec::new();

    {
        let a = broadcast::build();
        let instance = broadcast::Instance::new(&[3, 1]);
        let init = broadcast::init_config(&a.p2, &a, &instance);
        out.push((
            "broadcast",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = ping_pong::build();
        let init = ping_pong::init_config(&a.p2, &a, ping_pong::Instance::new(2));
        out.push((
            "ping_pong",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = producer_consumer::build();
        let init = producer_consumer::init_config(&a.p2, &a, producer_consumer::Instance::new(2));
        out.push((
            "producer_consumer",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = n_buyer::build();
        let instance = n_buyer::Instance::new(10, &[6, 6]);
        let init = n_buyer::init_config(&a.p2, &a, &instance);
        out.push((
            "n_buyer",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = chang_roberts::build();
        let instance = chang_roberts::Instance::new(&[20, 10]);
        let init = chang_roberts::init_config(&a.p2, &a, &instance);
        out.push((
            "chang_roberts",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = two_phase_commit::build();
        let instance = two_phase_commit::Instance::new(&[true, false]);
        let init = two_phase_commit::init_config(&a.p2, &a, &instance);
        out.push((
            "two_phase_commit",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }
    {
        let a = paxos::build();
        let init = paxos::init_config(&a.p2, &a, paxos::Instance::new(1, 2));
        out.push((
            "paxos",
            export_program(&a.decls, &a.p2_dsl_actions(), a.main.name(), &init),
        ));
    }

    out
}

/// The scenario-zoo protocols as specs, on their default instances:
/// `(file stem, spec)`. Stems carry a `zoo-` prefix so the corpus
/// directory sorts the campaign's promotions apart from the Table 1 seeds.
#[must_use]
pub fn zoo_specs() -> Vec<(String, ProgramSpec)> {
    zoo::zoo_cases()
        .iter()
        .map(|case| {
            (
                format!("zoo-{}", case.name),
                export_program(&case.decls, &case.actions, "Main", &case.init),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{parse_spec, write_spec};
    use inseq_kernel::Explorer;

    #[test]
    fn every_table1_export_builds_and_round_trips() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 7);
        for (name, spec) in &specs {
            let built = spec
                .build()
                .unwrap_or_else(|e| panic!("{name}: exported spec does not build: {e}"));
            // The exported program must actually run: explore a little.
            let exploration = Explorer::new(&built.program)
                .with_budget(50_000)
                .explore([built.init])
                .unwrap_or_else(|e| panic!("{name}: exploration failed: {e}"));
            assert!(
                exploration.config_count() > 1,
                "{name}: export is inert — only the initial config is reachable"
            );
            assert!(
                !exploration.has_failure(),
                "{name}: exported P2 program reaches an assertion failure"
            );
            // Text round trip is the identity on the canonical form.
            let text = write_spec(spec);
            let reparsed = parse_spec(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                write_spec(&reparsed),
                text,
                "{name}: unstable serialization"
            );
        }
    }

    #[test]
    fn zoo_exports_round_trip_and_keep_their_verdicts() {
        let cases = zoo::zoo_cases();
        let specs = zoo_specs();
        assert_eq!(specs.len(), cases.len());
        for (case, (name, spec)) in cases.iter().zip(&specs) {
            let built = spec
                .build()
                .unwrap_or_else(|e| panic!("{name}: exported spec does not build: {e}"));
            let exported = Explorer::new(&built.program)
                .with_budget(50_000)
                .explore([built.init])
                .unwrap_or_else(|e| panic!("{name}: exploration failed: {e}"));
            let native = Explorer::new(&case.program)
                .with_budget(50_000)
                .explore([case.init.clone()])
                .unwrap_or_else(|e| panic!("{name}: native exploration failed: {e}"));
            // The export must preserve the verdict class *and* the size of
            // the reachable space — the zoo's whole value is pinning these.
            assert_eq!(exported.has_failure(), native.has_failure(), "{name}");
            assert_eq!(exported.has_deadlock(), native.has_deadlock(), "{name}");
            assert_eq!(exported.config_count(), native.config_count(), "{name}");
            let text = write_spec(spec);
            let reparsed = parse_spec(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                write_spec(&reparsed),
                text,
                "{name}: unstable serialization"
            );
        }
    }
}
