//! Greedy structural shrinking of failing specs.
//!
//! [`shrink`] repeatedly tries single edits — drop an action, a global, a
//! pending async, or a statement; splice a compound statement's block in
//! its place; pull an integer constant toward zero — and keeps any edit
//! after which the spec still builds *and* still fails the caller's
//! predicate. Every accepted edit strictly decreases a finite measure
//! (action + global + pending + statement count, plus the magnitude sum of
//! integer constants), so the loop terminates at a local minimum.

use inseq_kernel::Value;
use inseq_lang::Expr;

use crate::spec::{ProgramSpec, SpecStmt};

/// Shrinks `spec` to a locally minimal spec on which `fails` still holds.
///
/// `fails` is the interest predicate — typically "this oracle still
/// disagrees". Candidates that no longer build or no longer fail are
/// discarded; `spec` itself is returned unchanged when no edit survives.
pub fn shrink(spec: &ProgramSpec, fails: impl Fn(&ProgramSpec) -> bool) -> ProgramSpec {
    let mut current = spec.clone();
    loop {
        let accepted = candidates(&current)
            .into_iter()
            .find(|c| c.build().is_ok() && fails(c));
        match accepted {
            Some(smaller) => current = smaller,
            None => return current,
        }
    }
}

/// Every single-edit reduction of `spec`, most aggressive first.
fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();

    // Drop a whole action, together with every reference to it.
    for i in 0..spec.actions.len() {
        let name = spec.actions[i].name.clone();
        if name == spec.main {
            continue;
        }
        let mut c = spec.clone();
        c.actions.remove(i);
        c.pending.retain(|(n, _)| *n != name);
        for action in &mut c.actions {
            strip_refs(&mut action.body, &name);
        }
        out.push(c);
    }

    // Drop a global. References make the candidate fail to build, which
    // discards it — no need to chase uses.
    for i in 0..spec.globals.len() {
        let mut c = spec.clone();
        c.globals.remove(i);
        out.push(c);
    }

    // Drop an initial pending async.
    for i in 0..spec.pending.len() {
        let mut c = spec.clone();
        c.pending.remove(i);
        out.push(c);
    }

    // Statement-level edits, one action at a time.
    for i in 0..spec.actions.len() {
        for body in block_candidates(&spec.actions[i].body) {
            let mut c = spec.clone();
            c.actions[i].body = body;
            out.push(c);
        }
    }

    // Pull integer constants toward zero: expressions first, then the
    // values in global initializers and pending arguments.
    let n_ints = count_spec_ints(spec);
    for idx in 0..n_ints {
        for target in [ShrinkTo::Zero, ShrinkTo::Half] {
            if let Some(c) = shrink_spec_int(spec, idx, target) {
                out.push(c);
            }
        }
    }

    out
}

/// Removes `async`/`call` statements that target `name`, recursively.
fn strip_refs(block: &mut Vec<SpecStmt>, name: &str) {
    block.retain(|s| {
        !matches!(s,
            SpecStmt::Async { callee, .. } | SpecStmt::Call { callee, .. } if callee == name)
    });
    for stmt in block {
        match stmt {
            SpecStmt::If(_, t, e) => {
                strip_refs(t, name);
                strip_refs(e, name);
            }
            SpecStmt::ForRange(_, _, _, body) => strip_refs(body, name),
            _ => {}
        }
    }
}

/// Every one-edit reduction of a statement block: drop a statement, splice
/// a compound statement's sub-block over it, or reduce inside a sub-block.
fn block_candidates(block: &[SpecStmt]) -> Vec<Vec<SpecStmt>> {
    let mut out = Vec::new();
    for i in 0..block.len() {
        // Drop the statement entirely.
        let mut dropped = block.to_vec();
        dropped.remove(i);
        out.push(dropped);

        // Splice a compound statement's blocks in its place, and recurse.
        match &block[i] {
            SpecStmt::If(_, then_b, else_b) => {
                for sub in [then_b, else_b] {
                    let mut spliced = block.to_vec();
                    spliced.splice(i..=i, sub.iter().cloned());
                    out.push(spliced);
                }
                for (which, sub) in [then_b, else_b].into_iter().enumerate() {
                    for cand in block_candidates(sub) {
                        let mut edited = block.to_vec();
                        if let SpecStmt::If(_, t, e) = &mut edited[i] {
                            *(if which == 0 { t } else { e }) = cand;
                        }
                        out.push(edited);
                    }
                }
            }
            SpecStmt::ForRange(_, _, _, body) => {
                let mut spliced = block.to_vec();
                spliced.splice(i..=i, body.iter().cloned());
                out.push(spliced);
                for cand in block_candidates(body) {
                    let mut edited = block.to_vec();
                    if let SpecStmt::ForRange(_, _, _, b) = &mut edited[i] {
                        *b = cand;
                    }
                    out.push(edited);
                }
            }
            _ => {}
        }
    }
    out
}

#[derive(Clone, Copy)]
enum ShrinkTo {
    Zero,
    Half,
}

impl ShrinkTo {
    fn apply(self, n: i64) -> Option<i64> {
        let next = match self {
            ShrinkTo::Zero => 0,
            ShrinkTo::Half => n / 2,
        };
        (next != n).then_some(next)
    }
}

/// Indexed, in-order traversal of every integer constant in the spec:
/// expression constants in action bodies, then global initial values, then
/// pending-async arguments. `edit` receives each integer's running index
/// and may replace it.
pub(crate) fn for_each_spec_int(spec: &mut ProgramSpec, edit: &mut impl FnMut(&mut i64)) {
    for action in &mut spec.actions {
        for_each_block_int(&mut action.body, edit);
    }
    for (_, _, value) in &mut spec.globals {
        for_each_value_int(value, edit);
    }
    for (_, args) in &mut spec.pending {
        for value in args {
            for_each_value_int(value, edit);
        }
    }
}

pub(crate) fn count_spec_ints(spec: &ProgramSpec) -> usize {
    let mut n = 0;
    for_each_spec_int(&mut spec.clone(), &mut |_| n += 1);
    n
}

fn shrink_spec_int(spec: &ProgramSpec, index: usize, to: ShrinkTo) -> Option<ProgramSpec> {
    let mut c = spec.clone();
    let mut at = 0usize;
    let mut changed = false;
    for_each_spec_int(&mut c, &mut |n| {
        if at == index {
            if let Some(next) = to.apply(*n) {
                *n = next;
                changed = true;
            }
        }
        at += 1;
    });
    changed.then_some(c)
}

fn for_each_block_int(block: &mut [SpecStmt], edit: &mut impl FnMut(&mut i64)) {
    for stmt in block {
        match stmt {
            SpecStmt::Assign(_, e) | SpecStmt::Assume(e) | SpecStmt::Assert(e, _) => {
                for_each_expr_int(e, edit);
            }
            SpecStmt::AssignAt(_, k, v) => {
                for_each_expr_int(k, edit);
                for_each_expr_int(v, edit);
            }
            SpecStmt::If(c, t, e) => {
                for_each_expr_int(c, edit);
                for_each_block_int(t, edit);
                for_each_block_int(e, edit);
            }
            SpecStmt::ForRange(_, lo, hi, body) => {
                for_each_expr_int(lo, edit);
                for_each_expr_int(hi, edit);
                for_each_block_int(body, edit);
            }
            SpecStmt::Choose(_, dom) => for_each_expr_int(dom, edit),
            SpecStmt::Send { key, msg, .. } => {
                if let Some(k) = key {
                    for_each_expr_int(k, edit);
                }
                for_each_expr_int(msg, edit);
            }
            SpecStmt::Recv { key, .. } => {
                if let Some(k) = key {
                    for_each_expr_int(k, edit);
                }
            }
            SpecStmt::Async { args, .. } | SpecStmt::Call { args, .. } => {
                for e in args {
                    for_each_expr_int(e, edit);
                }
            }
            SpecStmt::Skip => {}
        }
    }
}

fn for_each_expr_int(expr: &mut Expr, edit: &mut impl FnMut(&mut i64)) {
    match expr {
        Expr::Const(v) => for_each_value_int(v, edit),
        Expr::Var(_) => {}
        Expr::Neg(a)
        | Expr::Not(a)
        | Expr::SomeOf(a)
        | Expr::IsSome(a)
        | Expr::Unwrap(a)
        | Expr::SizeOf(a)
        | Expr::MinOf(a)
        | Expr::MaxOf(a)
        | Expr::SumOf(a)
        | Expr::Proj(a, _) => for_each_expr_int(a, edit),
        Expr::Bin(_, a, b)
        | Expr::MapGet(a, b)
        | Expr::Contains(a, b)
        | Expr::CountOf(a, b)
        | Expr::WithElem(a, b)
        | Expr::WithoutElem(a, b)
        | Expr::UnionOf(a, b)
        | Expr::IncludedIn(a, b)
        | Expr::RangeSet(a, b)
        | Expr::Forall(_, a, b)
        | Expr::Exists(_, a, b)
        | Expr::Filter(_, a, b)
        | Expr::MapImage(_, a, b) => {
            for_each_expr_int(a, edit);
            for_each_expr_int(b, edit);
        }
        Expr::Ite(a, b, c) | Expr::MapSet(a, b, c) => {
            for_each_expr_int(a, edit);
            for_each_expr_int(b, edit);
            for_each_expr_int(c, edit);
        }
        Expr::Tuple(es) => {
            for e in es {
                for_each_expr_int(e, edit);
            }
        }
    }
}

/// Shrinks integers inside plain values. Set/bag/map elements are keys of
/// ordered containers, so they are left alone — rewriting them in place
/// would silently merge entries.
fn for_each_value_int(value: &mut Value, edit: &mut impl FnMut(&mut i64)) {
    match value {
        Value::Int(n) => edit(n),
        Value::Opt(Some(inner)) => for_each_value_int(inner, edit),
        Value::Tuple(vs) | Value::Seq(vs) => {
            for v in vs {
                for_each_value_int(v, edit);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ActionSpec;
    use inseq_kernel::Explorer;
    use inseq_lang::build;
    use inseq_lang::Sort;

    /// A program whose `Main` asserts `g < 7` after incrementing `g` twice,
    /// wrapped in assorted irrelevant statements. The minimal failing core
    /// is the assert plus at most the pending entry.
    fn noisy_failing_spec() -> ProgramSpec {
        ProgramSpec {
            globals: vec![
                ("g".to_owned(), Sort::Int, Value::Int(9)),
                ("junk".to_owned(), Sort::set(Sort::Int), Value::empty_set()),
            ],
            actions: vec![
                ActionSpec {
                    name: "Helper".to_owned(),
                    params: vec![("p0".to_owned(), Sort::Int)],
                    locals: vec![],
                    body: vec![SpecStmt::Assign(
                        "junk".to_owned(),
                        build::with_elem(build::var("junk"), build::var("p0")),
                    )],
                },
                ActionSpec {
                    name: "Main".to_owned(),
                    params: vec![],
                    locals: vec![("t0".to_owned(), Sort::Int)],
                    body: vec![
                        SpecStmt::Assign("t0".to_owned(), build::int(5)),
                        SpecStmt::If(
                            build::gt(build::var("t0"), build::int(0)),
                            vec![SpecStmt::Assert(
                                build::lt(build::var("g"), build::int(7)),
                                "g small".to_owned(),
                            )],
                            vec![SpecStmt::Skip],
                        ),
                        SpecStmt::Async {
                            callee: "Helper".to_owned(),
                            args: vec![build::int(3)],
                        },
                    ],
                },
            ],
            main: "Main".to_owned(),
            pending: vec![("Main".to_owned(), vec![])],
        }
    }

    fn reaches_failure(spec: &ProgramSpec) -> bool {
        let Ok(built) = spec.build() else {
            return false;
        };
        Explorer::new(&built.program)
            .with_budget(10_000)
            .explore([built.init])
            .map(|x| x.has_failure())
            .unwrap_or(false)
    }

    #[test]
    fn shrinks_a_noisy_failure_to_a_tiny_core() {
        let spec = noisy_failing_spec();
        assert!(reaches_failure(&spec), "seed spec must fail");
        let small = shrink(&spec, reaches_failure);
        assert!(reaches_failure(&small), "shrunk spec must still fail");
        assert!(
            small.stmt_count() <= 2,
            "expected a tiny repro, got {} statements:\n{small:?}",
            small.stmt_count()
        );
        assert!(small.actions.len() <= 1, "helper action should be dropped");
        assert!(small.globals.len() <= 1, "junk global should be dropped");
    }

    #[test]
    fn shrink_returns_input_when_nothing_smaller_fails() {
        let spec = noisy_failing_spec();
        // Nothing "fails" under an always-false predicate.
        let same = shrink(&spec, |_| false);
        assert_eq!(same.stmt_count(), spec.stmt_count());
        assert_eq!(same.actions.len(), spec.actions.len());
    }
}
