//! The `fuzz` binary: generate → check → shrink → serialize.
//!
//! ```text
//! fuzz [--seed N] [--iters N] [--max-actions N] [--budget N]
//!      [--oracle NAME]... [--corpus-dir DIR]
//! fuzz --replay FILE [--oracle NAME]... [--budget N]
//! fuzz --export-table1 [--corpus-dir DIR]
//! ```
//!
//! Exit codes: `0` — every iteration agreed; `1` — a disagreement was
//! found (a minimized repro is written into the corpus directory); `2` —
//! usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use inseq_fuzz::corpus::table1_specs;
use inseq_fuzz::oracles::{disagrees, run_oracle, Oracle, OracleOutcome, DEFAULT_BUDGET};
use inseq_fuzz::serial::{parse_spec, write_spec};
use inseq_fuzz::shrink::shrink;
use inseq_fuzz::spec::ProgramSpec;
use inseq_fuzz::{generate, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    seed: u64,
    iters: u64,
    max_actions: usize,
    budget: usize,
    oracles: Vec<Oracle>,
    replay: Option<PathBuf>,
    corpus_dir: PathBuf,
    export_table1: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            seed: 0,
            iters: 200,
            max_actions: GenConfig::default().max_actions,
            budget: DEFAULT_BUDGET,
            oracles: Vec::new(),
            replay: None,
            corpus_dir: PathBuf::from("fuzz/corpus"),
            export_table1: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => opts.seed = parse_num(&value("--seed")?)?,
                "--iters" => opts.iters = parse_num(&value("--iters")?)?,
                "--max-actions" => opts.max_actions = parse_num(&value("--max-actions")?)?,
                "--budget" => opts.budget = parse_num(&value("--budget")?)?,
                "--oracle" => {
                    let name = value("--oracle")?;
                    let oracle = Oracle::from_name(&name).ok_or_else(|| {
                        format!(
                            "unknown oracle `{name}`; known: {}",
                            Oracle::ALL.map(|o| o.name()).join(", ")
                        )
                    })?;
                    opts.oracles.push(oracle);
                }
                "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
                "--corpus-dir" => opts.corpus_dir = PathBuf::from(value("--corpus-dir")?),
                "--export-table1" => opts.export_table1 = true,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.oracles.is_empty() {
            opts.oracles = Oracle::ALL.to_vec();
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

fn usage() {
    eprintln!(
        "usage: fuzz [--seed N] [--iters N] [--max-actions N] [--budget N] \
         [--oracle NAME]... [--corpus-dir DIR]\n\
         \x20      fuzz --replay FILE [--oracle NAME]... [--budget N]\n\
         \x20      fuzz --export-table1 [--corpus-dir DIR]\n\
         oracles: {}",
        Oracle::ALL.map(|o| o.name()).join(", ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    if opts.export_table1 {
        return export_table1(&opts);
    }
    if let Some(path) = &opts.replay {
        return replay(path.clone(), &opts);
    }
    campaign(&opts)
}

fn export_table1(opts: &Options) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&opts.corpus_dir) {
        eprintln!("error: cannot create {}: {e}", opts.corpus_dir.display());
        return ExitCode::from(2);
    }
    for (name, spec) in table1_specs() {
        let path = opts.corpus_dir.join(format!("{name}.sexp"));
        let mut text = format!(
            "; Table 1 protocol `{name}` (P2 atomic-action program, tiny instance),\n\
             ; exported through the fuzz corpus format. Regenerate with\n\
             ; `fuzz --export-table1`.\n"
        );
        text.push_str(&write_spec(&spec));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn replay(path: PathBuf, opts: &Options) -> ExitCode {
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let spec = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for &oracle in &opts.oracles {
        match run_oracle(oracle, &spec, opts.budget) {
            Ok(OracleOutcome::Checked) => println!("{oracle}: ok"),
            Ok(OracleOutcome::Skipped(why)) => println!("{oracle}: skipped ({why})"),
            Err(d) => {
                println!("{oracle}: DISAGREEMENT\n  {}", d.detail);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn campaign(opts: &Options) -> ExitCode {
    let config = GenConfig {
        max_actions: opts.max_actions,
        ..GenConfig::default()
    };
    let mut checked = vec![0u64; Oracle::ALL.len()];
    let mut skipped = vec![0u64; Oracle::ALL.len()];
    for i in 0..opts.iters {
        let seed = opts.seed.wrapping_add(i);
        let spec = generate(&mut StdRng::seed_from_u64(seed), &config);
        for &oracle in &opts.oracles {
            let slot = Oracle::ALL.iter().position(|&o| o == oracle).unwrap();
            match run_oracle(oracle, &spec, opts.budget) {
                Ok(OracleOutcome::Checked) => checked[slot] += 1,
                Ok(OracleOutcome::Skipped(_)) => skipped[slot] += 1,
                Err(d) => return report_disagreement(opts, seed, &spec, &d.detail, oracle),
            }
        }
        if (i + 1) % 50 == 0 {
            println!("… {}/{} iterations", i + 1, opts.iters);
        }
    }
    println!(
        "fuzzed {} programs (seeds {}..{}), no disagreements",
        opts.iters,
        opts.seed,
        opts.seed.wrapping_add(opts.iters)
    );
    for &oracle in &opts.oracles {
        let slot = Oracle::ALL.iter().position(|&o| o == oracle).unwrap();
        println!(
            "  {:<12} checked {:>5}  skipped {:>5}",
            oracle.name(),
            checked[slot],
            skipped[slot]
        );
    }
    ExitCode::SUCCESS
}

fn report_disagreement(
    opts: &Options,
    seed: u64,
    spec: &ProgramSpec,
    detail: &str,
    oracle: Oracle,
) -> ExitCode {
    eprintln!("seed {seed}: oracle `{oracle}` disagreement:\n  {detail}");
    eprintln!("shrinking…");
    let budget = opts.budget;
    let small = shrink(spec, |candidate| disagrees(oracle, candidate, budget));
    eprintln!(
        "minimized to {} statement(s) across {} action(s)",
        small.stmt_count(),
        small.actions.len()
    );
    let mut text = format!(
        "; Minimized repro: oracle `{oracle}` disagreement.\n\
         ; Found by `fuzz --seed {seed} --iters 1 --oracle {oracle} --budget {budget}`.\n\
         ; Replay with `fuzz --replay <this file> --oracle {oracle}`.\n"
    );
    text.push_str(&write_spec(&small));
    let path = opts
        .corpus_dir
        .join(format!("repro-{}-seed{seed}.sexp", oracle.name()));
    if let Err(e) =
        std::fs::create_dir_all(&opts.corpus_dir).and_then(|()| std::fs::write(&path, &text))
    {
        eprintln!("error: cannot write repro to {}: {e}", path.display());
        eprintln!("repro follows:\n{text}");
    } else {
        eprintln!("repro written to {}", path.display());
    }
    ExitCode::from(1)
}
