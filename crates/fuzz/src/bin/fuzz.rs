//! The `fuzz` binary: generate → check → shrink → serialize.
//!
//! ```text
//! fuzz [--seed N] [--iters N] [--max-actions N] [--budget N]
//!      [--oracle NAME]... [--corpus-dir DIR]
//!      [--guided] [--workers N] [--reduce off|por|sym|both]
//!      [--time-limit SECS] [--trend-json FILE]
//! fuzz --replay FILE [--oracle NAME]... [--budget N]
//! fuzz --export-table1 [--corpus-dir DIR]
//! fuzz --export-zoo [--corpus-dir DIR]
//! ```
//!
//! `--guided` switches the campaign from blind generation to
//! coverage-guided corpus evolution (see `inseq_fuzz::campaign`);
//! `--trend-json` writes the coverage-over-time trend as one JSON document.
//!
//! Replay verifies any `;@` metadata recorded in the corpus file: the
//! entry must reproduce its recorded verdict, visited count, witness-trace
//! length, and coverage signature. A metadata block that is malformed or
//! lacks its `;@ seed` line is a usage error (exit 2), not a panic.
//!
//! Exit codes: `0` — every iteration agreed (and, for replay, metadata
//! verified); `1` — a disagreement or a stale corpus entry was found; `2`
//! — usage error, including unreadable or malformed corpus metadata.

use std::path::PathBuf;
use std::process::ExitCode;

use inseq_fuzz::campaign::{run_campaign, CampaignConfig};
use inseq_fuzz::corpus::{table1_specs, zoo_specs};
use inseq_fuzz::coverage::MeasureOptions;
use inseq_fuzz::meta::{phase_breakdown, ReplayMeta};
use inseq_fuzz::oracles::{disagrees, run_oracle, Oracle, OracleOutcome, DEFAULT_BUDGET};
use inseq_fuzz::serial::{parse_spec, write_spec};
use inseq_fuzz::shrink::shrink;
use inseq_fuzz::spec::ProgramSpec;
use inseq_fuzz::{generate, GenConfig};
use inseq_kernel::ReduceMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    seed: u64,
    iters: u64,
    max_actions: usize,
    budget: usize,
    oracles: Vec<Oracle>,
    replay: Option<PathBuf>,
    corpus_dir: PathBuf,
    export_table1: bool,
    export_zoo: bool,
    guided: bool,
    workers: usize,
    reduce: ReduceMode,
    time_limit: Option<u64>,
    trend_json: Option<PathBuf>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            seed: 0,
            iters: 200,
            max_actions: GenConfig::default().max_actions,
            budget: DEFAULT_BUDGET,
            oracles: Vec::new(),
            replay: None,
            corpus_dir: PathBuf::from("fuzz/corpus"),
            export_table1: false,
            export_zoo: false,
            guided: false,
            workers: 2,
            reduce: ReduceMode::Por,
            time_limit: None,
            trend_json: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => opts.seed = parse_num(&value("--seed")?)?,
                "--iters" => opts.iters = parse_num(&value("--iters")?)?,
                "--max-actions" => opts.max_actions = parse_num(&value("--max-actions")?)?,
                "--budget" => opts.budget = parse_num(&value("--budget")?)?,
                "--oracle" => {
                    let name = value("--oracle")?;
                    let oracle = Oracle::from_name(&name).ok_or_else(|| {
                        format!(
                            "unknown oracle `{name}`; known: {}",
                            Oracle::ALL.map(|o| o.name()).join(", ")
                        )
                    })?;
                    opts.oracles.push(oracle);
                }
                "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
                "--corpus-dir" => opts.corpus_dir = PathBuf::from(value("--corpus-dir")?),
                "--export-table1" => opts.export_table1 = true,
                "--export-zoo" => opts.export_zoo = true,
                "--guided" => opts.guided = true,
                "--workers" => opts.workers = parse_num(&value("--workers")?)?,
                "--reduce" => {
                    let mode = value("--reduce")?;
                    opts.reduce = match mode.as_str() {
                        "off" => ReduceMode::Off,
                        "por" => ReduceMode::Por,
                        "sym" => ReduceMode::Sym,
                        "both" => ReduceMode::Both,
                        other => return Err(format!("unknown reduce mode `{other}`")),
                    };
                }
                "--time-limit" => opts.time_limit = Some(parse_num(&value("--time-limit")?)?),
                "--trend-json" => opts.trend_json = Some(PathBuf::from(value("--trend-json")?)),
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.oracles.is_empty() {
            opts.oracles = Oracle::ALL.to_vec();
        }
        if opts.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

fn usage() {
    eprintln!(
        "usage: fuzz [--seed N] [--iters N] [--max-actions N] [--budget N] \
         [--oracle NAME]... [--corpus-dir DIR]\n\
         \x20           [--guided] [--workers N] [--reduce off|por|sym|both] \
         [--time-limit SECS] [--trend-json FILE]\n\
         \x20      fuzz --replay FILE [--oracle NAME]... [--budget N]\n\
         \x20      fuzz --export-table1 [--corpus-dir DIR]\n\
         \x20      fuzz --export-zoo [--corpus-dir DIR]\n\
         oracles: {}",
        Oracle::ALL.map(|o| o.name()).join(", ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    if opts.export_table1 {
        return export_table1(&opts);
    }
    if opts.export_zoo {
        return export_zoo(&opts);
    }
    if let Some(path) = &opts.replay {
        return replay(path.clone(), &opts);
    }
    if opts.guided {
        return guided_campaign(&opts);
    }
    campaign(&opts)
}

fn export_table1(opts: &Options) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&opts.corpus_dir) {
        eprintln!("error: cannot create {}: {e}", opts.corpus_dir.display());
        return ExitCode::from(2);
    }
    for (name, spec) in table1_specs() {
        let path = opts.corpus_dir.join(format!("{name}.sexp"));
        let mut text = format!(
            "; Table 1 protocol `{name}` (P2 atomic-action program, tiny instance),\n\
             ; exported through the fuzz corpus format. Regenerate with\n\
             ; `fuzz --export-table1`.\n"
        );
        text.push_str(&write_spec(&spec));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn export_zoo(opts: &Options) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&opts.corpus_dir) {
        eprintln!("error: cannot create {}: {e}", opts.corpus_dir.display());
        return ExitCode::from(2);
    }
    // Zoo entries record the verified-replay metadata (verdict, visited
    // count, witness length, coverage signature) at the default measure
    // options so `tests/zoo_replay.rs` can detect staleness. Measuring runs
    // the whole battery per protocol, so this takes a few seconds.
    let measure = MeasureOptions::default();
    for (name, spec) in zoo_specs() {
        let meta = inseq_fuzz::meta::record(&spec, 0, "promoted", &measure);
        let path = opts.corpus_dir.join(format!("{name}.sexp"));
        let mut text = format!(
            "; Scenario-zoo protocol `{name}` (see `inseq_protocols::zoo`),\n\
             ; promoted from the coverage-guided campaign and pinned with\n\
             ; verified-replay metadata. Regenerate with `fuzz --export-zoo`.\n{}",
            meta.render()
        );
        text.push_str(&write_spec(&spec));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn replay(path: PathBuf, opts: &Options) -> ExitCode {
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let spec = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    // Metadata problems are usage errors: a malformed block, or a block
    // that exists but lacks the seed the verification is keyed on.
    let meta = match ReplayMeta::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if !meta.is_empty() {
        if let Err(e) = meta.require_seed() {
            eprintln!("error: {}: {}", path.display(), e.message);
            return ExitCode::from(2);
        }
    }

    let mut failed = false;
    for &oracle in &opts.oracles {
        match run_oracle(oracle, &spec, opts.budget) {
            Ok(OracleOutcome::Checked) => println!("{oracle}: ok"),
            Ok(OracleOutcome::Skipped(why)) => println!("{oracle}: skipped ({why})"),
            Err(d) => {
                println!("{oracle}: DISAGREEMENT\n  {}", d.detail);
                failed = true;
            }
        }
    }

    if !meta.is_empty() {
        let measure = MeasureOptions {
            budget: opts.budget,
            workers: opts.workers,
            reduce: opts.reduce,
        };
        let mismatches = inseq_fuzz::meta::verify(&spec, &meta, &measure);
        if mismatches.is_empty() {
            println!("metadata: verified");
        } else {
            for m in &mismatches {
                println!("metadata: STALE — {m}");
            }
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn guided_campaign(opts: &Options) -> ExitCode {
    let config = CampaignConfig {
        seed: opts.seed,
        iters: opts.iters,
        guided: true,
        gen: GenConfig {
            max_actions: opts.max_actions,
            ..GenConfig::default()
        },
        budget: opts.budget,
        workers: opts.workers,
        reduce: opts.reduce,
        time_limit: opts.time_limit.map(std::time::Duration::from_secs),
        ..CampaignConfig::default()
    };
    let mut progress = |iteration: u64, edges: usize| {
        if iteration.is_multiple_of(50) {
            println!("… {iteration}/{} iterations, {edges} edges", opts.iters);
        }
    };
    let result = run_campaign(&config, Some(&mut progress));

    println!(
        "guided campaign: {} iterations, {} coverage edges, {} corpus entries, {:.1} programs/sec",
        result.iterations,
        result.global.edges(),
        result.corpus.len(),
        result.programs_per_sec()
    );
    println!(
        "per-oracle wall clock:\n{}",
        phase_breakdown(&result.oracle_wall)
    );

    if let Some(path) = &opts.trend_json {
        if let Err(e) = std::fs::write(path, result.trend_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("trend written to {}", path.display());
    }

    match result.finding {
        None => ExitCode::SUCCESS,
        Some(finding) => report_disagreement(
            opts,
            finding.seed,
            &finding.spec,
            &finding.disagreement.detail,
            finding.disagreement.oracle,
        ),
    }
}

fn campaign(opts: &Options) -> ExitCode {
    let config = GenConfig {
        max_actions: opts.max_actions,
        ..GenConfig::default()
    };
    let mut checked = vec![0u64; Oracle::ALL.len()];
    let mut skipped = vec![0u64; Oracle::ALL.len()];
    for i in 0..opts.iters {
        let seed = opts.seed.wrapping_add(i);
        let spec = generate(&mut StdRng::seed_from_u64(seed), &config);
        for &oracle in &opts.oracles {
            let slot = Oracle::ALL.iter().position(|&o| o == oracle).unwrap();
            match run_oracle(oracle, &spec, opts.budget) {
                Ok(OracleOutcome::Checked) => checked[slot] += 1,
                Ok(OracleOutcome::Skipped(_)) => skipped[slot] += 1,
                Err(d) => return report_disagreement(opts, seed, &spec, &d.detail, oracle),
            }
        }
        if (i + 1) % 50 == 0 {
            println!("… {}/{} iterations", i + 1, opts.iters);
        }
    }
    println!(
        "fuzzed {} programs (seeds {}..{}), no disagreements",
        opts.iters,
        opts.seed,
        opts.seed.wrapping_add(opts.iters)
    );
    for &oracle in &opts.oracles {
        let slot = Oracle::ALL.iter().position(|&o| o == oracle).unwrap();
        println!(
            "  {:<12} checked {:>5}  skipped {:>5}",
            oracle.name(),
            checked[slot],
            skipped[slot]
        );
    }
    ExitCode::SUCCESS
}

fn report_disagreement(
    opts: &Options,
    seed: u64,
    spec: &ProgramSpec,
    detail: &str,
    oracle: Oracle,
) -> ExitCode {
    eprintln!("seed {seed}: oracle `{oracle}` disagreement:\n  {detail}");
    eprintln!("shrinking…");
    let budget = opts.budget;
    let small = shrink(spec, |candidate| disagrees(oracle, candidate, budget));
    eprintln!(
        "minimized to {} statement(s) across {} action(s)",
        small.stmt_count(),
        small.actions.len()
    );
    let meta = ReplayMeta {
        seed: Some(seed),
        kind: Some("generated".into()),
        oracle: Some(oracle.name().into()),
        ..ReplayMeta::default()
    };
    let mut text = format!(
        "; Minimized repro: oracle `{oracle}` disagreement.\n\
         ; Found by `fuzz --seed {seed} --iters 1 --oracle {oracle} --budget {budget}`.\n\
         ; Replay with `fuzz --replay <this file> --oracle {oracle}`.\n{}",
        meta.render()
    );
    text.push_str(&write_spec(&small));
    let path = opts
        .corpus_dir
        .join(format!("repro-{}-seed{seed}.sexp", oracle.name()));
    if let Err(e) =
        std::fs::create_dir_all(&opts.corpus_dir).and_then(|()| std::fs::write(&path, &text))
    {
        eprintln!("error: cannot write repro to {}: {e}", path.display());
        eprintln!("repro follows:\n{text}");
    } else {
        eprintln!("repro written to {}", path.display());
    }
    ExitCode::from(1)
}
