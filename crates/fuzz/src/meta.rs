//! Corpus-entry metadata: the `;@ key value` header block.
//!
//! Every line of a corpus file starting with `;@` is a metadata directive.
//! To the s-expression parser these are ordinary comments, so files with
//! and without metadata parse identically; [`ReplayMeta`] reads them
//! separately and the `fuzz --replay` path uses them as a staleness gate —
//! a replayed entry must reproduce the verdict, visited-configuration
//! count, witness-trace length, and coverage signature recorded when the
//! entry was promoted.
//!
//! The directives:
//!
//! ```text
//! ;@ seed 42            RNG seed of the campaign iteration (required
//!                       whenever any other directive is present)
//! ;@ kind generated     generated | mutated | protocol
//! ;@ oracle reduce      the oracle that disagreed, for repro entries
//! ;@ verdict pass       pass | failure | deadlock | over-budget |
//!                       build-error | disagreement
//! ;@ visited 123        sequential exploration configuration count
//! ;@ trace-len 4        shortest witness trace length (0 when none)
//! ;@ coverage a1b2…     16-hex-digit coverage signature
//! ```
//!
//! A malformed directive (unknown key, missing or non-numeric value) is a
//! [`MetaError`], not a panic: `fuzz --replay` reports it and exits 2.

use std::fmt;
use std::time::Duration;

use inseq_kernel::Explorer;

use crate::coverage::{measure_battery, MeasureOptions};
use crate::spec::ProgramSpec;

/// Parsed `;@` metadata of one corpus entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayMeta {
    /// Campaign RNG seed that produced the entry.
    pub seed: Option<u64>,
    /// How the entry came to be: `generated`, `mutated`, or `protocol`.
    pub kind: Option<String>,
    /// The disagreeing oracle, for repro entries.
    pub oracle: Option<String>,
    /// Recorded verdict class.
    pub verdict: Option<String>,
    /// Recorded sequential visited-configuration count.
    pub visited: Option<usize>,
    /// Recorded shortest witness trace length.
    pub trace_len: Option<usize>,
    /// Recorded coverage signature (16 hex digits).
    pub coverage: Option<String>,
}

/// A malformed `;@` directive.
#[derive(Debug)]
pub struct MetaError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metadata error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MetaError {}

impl ReplayMeta {
    /// Extracts the metadata block from corpus-file text.
    ///
    /// Lines not starting with `;@` are ignored. An empty result (no
    /// directives at all) is [`ReplayMeta::default`], not an error.
    ///
    /// # Errors
    ///
    /// Returns a [`MetaError`] for an unknown key, a directive without a
    /// value, or a numeric field that does not parse.
    pub fn parse(text: &str) -> Result<ReplayMeta, MetaError> {
        let mut meta = ReplayMeta::default();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let Some(rest) = line.trim_start().strip_prefix(";@") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let Some(key) = parts.next() else {
                return Err(MetaError {
                    line: line_no,
                    message: "`;@` directive without a key".into(),
                });
            };
            let Some(value) = parts.next() else {
                return Err(MetaError {
                    line: line_no,
                    message: format!("`;@ {key}` is missing its value"),
                });
            };
            let num = |field: &str| -> Result<usize, MetaError> {
                value.parse().map_err(|_| MetaError {
                    line: line_no,
                    message: format!("`;@ {field}` value `{value}` is not a number"),
                })
            };
            match key {
                "seed" => {
                    meta.seed = Some(value.parse().map_err(|_| MetaError {
                        line: line_no,
                        message: format!("`;@ seed` value `{value}` is not a number"),
                    })?);
                }
                "kind" => meta.kind = Some(value.to_owned()),
                "oracle" => meta.oracle = Some(value.to_owned()),
                "verdict" => meta.verdict = Some(value.to_owned()),
                "visited" => meta.visited = Some(num("visited")?),
                "trace-len" => meta.trace_len = Some(num("trace-len")?),
                "coverage" => meta.coverage = Some(value.to_owned()),
                other => {
                    return Err(MetaError {
                        line: line_no,
                        message: format!("unknown metadata key `{other}`"),
                    });
                }
            }
        }
        Ok(meta)
    }

    /// `true` when no directive was present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == ReplayMeta::default()
    }

    /// The seed, or a diagnostic explaining that this entry's metadata
    /// block is incomplete — replay verification cannot run without it.
    ///
    /// # Errors
    ///
    /// Returns a [`MetaError`] when the block has directives but no seed.
    pub fn require_seed(&self) -> Result<u64, MetaError> {
        self.seed.ok_or_else(|| MetaError {
            line: 0,
            message: "corpus entry has metadata but no `;@ seed` directive; \
                      cannot verify the recorded run (re-promote the entry \
                      or delete its `;@` lines to replay unverified)"
                .into(),
        })
    }

    /// Renders the block as `;@` lines (empty string when [`is_empty`]).
    ///
    /// [`is_empty`]: ReplayMeta::is_empty
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(seed) = self.seed {
            out.push_str(&format!(";@ seed {seed}\n"));
        }
        if let Some(kind) = &self.kind {
            out.push_str(&format!(";@ kind {kind}\n"));
        }
        if let Some(oracle) = &self.oracle {
            out.push_str(&format!(";@ oracle {oracle}\n"));
        }
        if let Some(verdict) = &self.verdict {
            out.push_str(&format!(";@ verdict {verdict}\n"));
        }
        if let Some(visited) = self.visited {
            out.push_str(&format!(";@ visited {visited}\n"));
        }
        if let Some(trace_len) = self.trace_len {
            out.push_str(&format!(";@ trace-len {trace_len}\n"));
        }
        if let Some(coverage) = &self.coverage {
            out.push_str(&format!(";@ coverage {coverage}\n"));
        }
        out
    }
}

/// What one deterministic sequential run of a spec observes — the facts a
/// corpus entry records at promotion time and re-checks at replay time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// Verdict class (`pass`, `failure`, `deadlock`, `over-budget`,
    /// `build-error`).
    pub verdict: String,
    /// Sequential visited-configuration count (0 when not explorable).
    pub visited: usize,
    /// Shortest witness trace length (0 when there is no witness).
    pub trace_len: usize,
}

/// Observes `spec` through one sequential exploration.
#[must_use]
pub fn observe(spec: &ProgramSpec, budget: usize) -> Observed {
    let Ok(built) = spec.build() else {
        return Observed {
            verdict: "build-error".into(),
            visited: 0,
            trace_len: 0,
        };
    };
    match Explorer::new(&built.program)
        .with_budget(budget)
        .explore([built.init])
    {
        Err(_) => Observed {
            verdict: "over-budget".into(),
            visited: 0,
            trace_len: 0,
        },
        Ok(exp) => {
            let (verdict, trace_len) = if exp.has_failure() {
                let len = exp
                    .failure_witnesses()
                    .iter()
                    .map(|w| w.trace.len())
                    .min()
                    .unwrap_or(0);
                ("failure".to_owned(), len)
            } else if exp.has_deadlock() {
                let len = exp
                    .deadlock_witnesses()
                    .iter()
                    .map(inseq_kernel::Trace::len)
                    .min()
                    .unwrap_or(0);
                ("deadlock".to_owned(), len)
            } else {
                ("pass".to_owned(), 0)
            };
            Observed {
                verdict,
                visited: exp.config_count(),
                trace_len,
            }
        }
    }
}

/// Records promotion-time metadata for a corpus entry.
#[must_use]
pub fn record(spec: &ProgramSpec, seed: u64, kind: &str, opts: &MeasureOptions) -> ReplayMeta {
    let observed = observe(spec, opts.budget);
    let run = measure_battery(spec, opts);
    ReplayMeta {
        seed: Some(seed),
        kind: Some(kind.to_owned()),
        oracle: None,
        verdict: Some(observed.verdict),
        visited: Some(observed.visited),
        trace_len: Some(observed.trace_len),
        coverage: Some(run.coverage.signature()),
    }
}

/// One discrepancy between recorded metadata and a fresh replay.
#[derive(Debug)]
pub struct ReplayMismatch {
    /// The directive that disagrees.
    pub field: &'static str,
    /// Value recorded at promotion time.
    pub recorded: String,
    /// Value observed by this replay.
    pub observed: String,
}

impl fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: recorded {} but replay observed {}",
            self.field, self.recorded, self.observed
        )
    }
}

/// Verifies a corpus entry against its recorded metadata.
///
/// Only directives the entry actually records are checked; an entry with
/// just a seed verifies vacuously. Returns every mismatch, empty on a
/// faithful replay.
#[must_use]
pub fn verify(spec: &ProgramSpec, meta: &ReplayMeta, opts: &MeasureOptions) -> Vec<ReplayMismatch> {
    let mut mismatches = Vec::new();
    let mut push = |field: &'static str, recorded: String, observed: String| {
        if recorded != observed {
            mismatches.push(ReplayMismatch {
                field,
                recorded,
                observed,
            });
        }
    };
    if meta.verdict.is_some() || meta.visited.is_some() || meta.trace_len.is_some() {
        let observed = observe(spec, opts.budget);
        if let Some(v) = &meta.verdict {
            push("verdict", v.clone(), observed.verdict.clone());
        }
        if let Some(n) = meta.visited {
            push("visited", n.to_string(), observed.visited.to_string());
        }
        if let Some(n) = meta.trace_len {
            push("trace-len", n.to_string(), observed.trace_len.to_string());
        }
    }
    if let Some(sig) = &meta.coverage {
        let run = measure_battery(spec, opts);
        push("coverage", sig.clone(), run.coverage.signature());
    }
    mismatches
}

/// Formats a per-oracle wall-clock breakdown through `inseq-obs`, for the
/// campaign summary and the throughput bench.
#[must_use]
pub fn phase_breakdown(phases: &[(crate::oracles::Oracle, Duration)]) -> String {
    phases
        .iter()
        .map(|(oracle, wall)| inseq_obs::PhaseStat::new(oracle.name(), *wall, 0).to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_round_trip_through_render_and_parse() {
        let meta = ReplayMeta {
            seed: Some(42),
            kind: Some("mutated".into()),
            oracle: None,
            verdict: Some("pass".into()),
            visited: Some(123),
            trace_len: Some(4),
            coverage: Some("00aabbccddeeff11".into()),
        };
        let text = format!("{}(spec)\n", meta.render());
        assert_eq!(ReplayMeta::parse(&text).unwrap(), meta);
    }

    #[test]
    fn plain_comments_and_spec_text_parse_as_empty_meta() {
        let meta = ReplayMeta::parse("; a comment\n(spec (globals))\n").unwrap();
        assert!(meta.is_empty());
    }

    #[test]
    fn malformed_directives_are_errors_not_panics() {
        for bad in [
            ";@ seed\n",
            ";@ seed banana\n",
            ";@ visited x\n",
            ";@ trace-len -1\n",
            ";@ mystery 3\n",
            ";@\n",
        ] {
            let err = ReplayMeta::parse(bad).expect_err(bad);
            assert_eq!(err.line, 1, "{bad}");
        }
    }

    #[test]
    fn missing_seed_is_reported_with_a_diagnostic() {
        let meta = ReplayMeta::parse(";@ verdict pass\n").unwrap();
        let err = meta.require_seed().expect_err("seed is missing");
        assert!(err.message.contains("no `;@ seed`"), "{}", err.message);
    }
}
