//! Re-export shim: the textual corpus format moved to [`inseq_lang::serial`]
//! so the verification daemon can reuse it as its wire encoding; fuzz call
//! sites keep their paths, and corpus files replay byte-identically.

pub use inseq_lang::serial::{parse_spec, write_spec, ParseError};
