//! Property test for the mutators' soundness contract: whatever escapes
//! [`inseq_fuzz::mutate`] typechecks, is finite by construction, and stays
//! inside the configured size bounds — unsound candidates are rejected *by
//! the mutator's* validate gate, never later by an oracle.
//!
//! 50 proptest cases × 10 sequential mutation steps each = 500 mutated
//! programs, every one re-validated from scratch and spot-checked against
//! the cheapest oracle (`vm-interp`), which must come back with a clean
//! outcome: a build error surfacing there would mean an ill-typed program
//! slipped through.

use proptest::prelude::*;

use inseq_fuzz::mutate::{mutate, structurally_finite, validate, MutateConfig};
use inseq_fuzz::oracles::{run_oracle, Oracle};
use inseq_fuzz::{generate, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn five_hundred_mutants_all_pass_the_soundness_gate(seed in 0u64..10_000) {
        let gen_config = GenConfig::default();
        let mut_config = MutateConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = generate(&mut rng, &gen_config);

        for step in 0..10 {
            current = mutate(&mut rng, &current, &mut_config);

            // The full gate, re-checked from outside the mutator.
            prop_assert!(
                validate(&current, &mut_config),
                "seed {seed} step {step}: mutant fails validate()"
            );
            prop_assert!(
                current.build().is_ok(),
                "seed {seed} step {step}: mutant does not typecheck"
            );
            prop_assert!(
                structurally_finite(&current),
                "seed {seed} step {step}: spawn DAG no longer points backwards"
            );
            prop_assert!(
                current.actions.len() <= mut_config.max_actions
                    && current.stmt_count() <= mut_config.max_stmts,
                "seed {seed} step {step}: mutant exceeds size bounds \
                 ({} actions, {} stmts)",
                current.actions.len(),
                current.stmt_count()
            );
        }

        // The oracle sees a well-formed program, never a build reject. A
        // small budget keeps this cheap; over-budget explorations come back
        // as Skipped, which is still a clean (non-erroring) outcome.
        let outcome = run_oracle(Oracle::VmInterp, &current, 400);
        prop_assert!(
            outcome.is_ok(),
            "seed {seed}: vm-interp rejected a mutator-approved program: {outcome:?}"
        );
    }
}
