//! End-to-end proof that the `reduce` oracle has teeth: deliberately break
//! the ample rule (the engine's `fault-injection` feature makes every
//! `Reducer` prune on the first enabled candidate with no commutation
//! check) and check that the oracle catches the resulting verdict flip.
//!
//! This lives in its own integration-test binary so the process-global
//! fault switch cannot leak into any other test.

use inseq_engine::fault::{set_unsound_prune, unsound_prune_enabled};
use inseq_fuzz::oracles::{disagrees, run_oracle, Oracle, OracleOutcome, DEFAULT_BUDGET};
use inseq_fuzz::{generate, ActionSpec, GenConfig, ProgramSpec, SpecStmt};
use inseq_kernel::Value;
use inseq_lang::{BinOp, Expr, Sort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The canonical program an unsound ample rule gets wrong: two initially
/// pending actions where only the `BChecker`-first order fails.
///
/// * `AWriter` sets `x := 1`.
/// * `BChecker` asserts `x != 0`, which fails exactly when it runs first.
///
/// Unreduced exploration tries both orders and reports the failure. The
/// faulted `Reducer` prunes to the first enabled pending — `AWriter`, which
/// sorts before `BChecker` in the canonical pending order — so the reduced
/// run only ever sees the safe schedule and reports no failure: a verdict
/// flip the oracle must catch. The *sound* rule keeps both orders, because
/// the pair's joint outcomes differ (one order fails), so the same program
/// also pins that soundness is restored once the fault is healed.
fn order_sensitive_spec() -> ProgramSpec {
    let checker_body = vec![SpecStmt::Assert(
        Expr::Bin(
            BinOp::Ne,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(Value::Int(0))),
        ),
        "x still zero".into(),
    )];
    ProgramSpec {
        globals: vec![("x".into(), Sort::Int, Value::Int(0))],
        actions: vec![
            ActionSpec {
                name: "AWriter".into(),
                params: Vec::new(),
                locals: Vec::new(),
                body: vec![SpecStmt::Assign("x".into(), Expr::Const(Value::Int(1)))],
            },
            ActionSpec {
                name: "BChecker".into(),
                params: Vec::new(),
                locals: Vec::new(),
                body: checker_body,
            },
        ],
        main: "AWriter".into(),
        pending: vec![
            ("AWriter".into(), Vec::new()),
            ("BChecker".into(), Vec::new()),
        ],
    }
}

#[test]
fn injected_unsound_pruning_is_caught_by_the_reduce_oracle() {
    assert!(!unsound_prune_enabled(), "fault must start disabled");
    let spec = order_sensitive_spec();

    // Sanity: the sound reduction agrees on the handcrafted program and on
    // a batch of generated ones.
    assert!(
        matches!(
            run_oracle(Oracle::Reduce, &spec, DEFAULT_BUDGET),
            Ok(OracleOutcome::Checked)
        ),
        "sound reduction disagrees on the handcrafted program"
    );
    let config = GenConfig::default();
    for seed in 0..10u64 {
        let generated = generate(&mut StdRng::seed_from_u64(seed), &config);
        run_oracle(Oracle::Reduce, &generated, DEFAULT_BUDGET)
            .unwrap_or_else(|d| panic!("seed {seed} disagrees before injection: {d}"));
    }

    // Inject: every Reducer now prunes to the first enabled pending with no
    // commutation check. The pruned schedule is the only failing one, so
    // the reduced verdict flips and the oracle must notice.
    set_unsound_prune(true);
    let caught = disagrees(Oracle::Reduce, &spec, DEFAULT_BUDGET);
    set_unsound_prune(false);
    assert!(
        caught,
        "the reduce oracle missed an unsound pruning rule that hides the \
         only failing schedule"
    );

    // Heal: the same program must agree again, pinning the disagreement on
    // the injected fault rather than on a real reduction bug.
    assert!(
        matches!(
            run_oracle(Oracle::Reduce, &spec, DEFAULT_BUDGET),
            Ok(OracleOutcome::Checked)
        ),
        "repro still disagrees after removing the fault"
    );
}
