//! Exit-code contract of `fuzz --replay` on corpus metadata, exercised
//! against the real binary (`CARGO_BIN_EXE_fuzz`): malformed `;@` blocks
//! and metadata lacking its `;@ seed` line are *usage errors* — exit 2
//! with a diagnostic on stderr — never panics; intact metadata verifies to
//! exit 0; stale metadata is a finding, exit 1.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use inseq_fuzz::corpus::zoo_specs;
use inseq_fuzz::write_spec;

fn scratch(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("inseq-replay-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("scratch corpus file");
    path
}

fn replay(path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fuzz"))
        .args(["--replay", path.to_str().unwrap(), "--budget", "2000"])
        .output()
        .expect("fuzz binary runs")
}

fn spec_text() -> String {
    let (_, spec) = zoo_specs().remove(1); // inc-double-race: small, fast
    write_spec(&spec)
}

#[test]
fn metadata_without_seed_exits_2_with_a_diagnostic_not_a_panic() {
    // Metadata present (kind, verdict) but no `;@ seed` line.
    let text = format!(";@ kind promoted\n;@ verdict failure\n{}", spec_text());
    let path = scratch("no-seed.sexp", &text);
    let out = replay(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage-error exit 2; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(";@ seed"),
        "diagnostic must name the missing directive; got:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be a diagnostic, not a panic:\n{stderr}"
    );
}

#[test]
fn malformed_metadata_line_exits_2() {
    for (name, bad_line) in [
        ("bad-key.sexp", ";@ flavor spicy"),
        ("bad-value.sexp", ";@ visited lots"),
        ("missing-value.sexp", ";@ seed"),
    ] {
        let text = format!("{bad_line}\n{}", spec_text());
        let path = scratch(name, &text);
        let out = replay(&path);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: expected exit 2; stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn metadata_free_corpus_file_still_replays_to_exit_0() {
    let path = scratch("plain.sexp", &spec_text());
    let out = replay(&path);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stale_metadata_exits_1_and_names_the_drifted_field() {
    // Claim a wrong visited count; verification must flag exactly that.
    let text = format!(
        ";@ seed 0\n;@ kind promoted\n;@ verdict failure\n;@ visited 99999\n{}",
        spec_text()
    );
    let path = scratch("stale.sexp", &text);
    let out = replay(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("STALE") && stdout.contains("visited"),
        "stale report must name the drifted field:\n{stdout}"
    );
}
