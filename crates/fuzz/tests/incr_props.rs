//! Property tests for footprint-incremental re-checking.
//!
//! The cache-key scheme in [`inseq_core::incr`] promises that a
//! footprint-disjoint edit can never change the verdict of any obligation
//! that does not involve the edited action. This test randomizes such edits:
//! two-phase commit is extended with an `Audit` action whose body touches
//! only a fresh `audit` global (disjoint from every other action's
//! footprint), the body is drawn from a small grammar of shapes and
//! constants, and the incremental checker is run warm (v2 over v1's cache)
//! and cold (v2 in a fresh cache). The warm run must (a) report the same
//! pass/fail verdict and violated premise as the cold run on every
//! obligation, with bit-identical diagnostics on every obligation it
//! actually recomputed, and (b) serve every obligation not involving
//! `Audit` straight from cache.
//!
//! Cache-served *failing* obligations replay the diagnostic stored by the
//! base run. Witness messages render the full counterexample store — the
//! projected-out `audit` coordinate included — so a replayed message is
//! guaranteed verdict- and premise-accurate but can differ textually from
//! a fresh recomputation in exactly those projected-out coordinates (the
//! same way an incremental compiler replays warnings from the cached run).

use std::collections::BTreeMap;

use proptest::prelude::*;

use inseq_core::{mechanical_application, ArtifactKeys, ObligationCache};
use inseq_engine::Engine;
use inseq_fuzz::corpus::table1_specs;
use inseq_fuzz::spec::{ActionSpec, ProgramSpec, SpecStmt};
use inseq_kernel::{ActionName, Value};
use inseq_lang::build::{add, eq, int, var};
use inseq_lang::serial::{action_hash, canonical_hash};
use inseq_lang::Sort;

const BUDGET: usize = 4_000;

/// One observed obligation outcome, minus the cache/wall bookkeeping.
type Verdict = (String, bool, Option<String>, Option<String>);

/// Runs the incremental checker on `spec` over `cache`, returning
/// `(verdicts in canonical order, cached flags in the same order)`.
fn run_incremental(
    engine: &Engine,
    cache: &ObligationCache,
    spec: &ProgramSpec,
) -> (Vec<Verdict>, Vec<bool>) {
    let built = spec.build().expect("spec builds");
    let program_key = canonical_hash(spec);
    let mut action_keys: BTreeMap<ActionName, u64> = BTreeMap::new();
    for name in built.program.action_names() {
        if let Some(action) = spec.action(name.as_str()) {
            action_keys.insert(name.clone(), action_hash(action));
        }
    }
    let keys = ArtifactKeys::mechanical(program_key, action_keys, built.program.main());
    let app = mechanical_application(&built.program, built.init.clone(), BUDGET);
    let on_outcome = |_: &inseq_core::ObligationOutcome| {};
    let rep = app
        .check_incremental(engine, cache, &keys, &on_outcome)
        .expect("2pc+audit discharges without structural errors");
    let verdicts = rep
        .outcomes
        .iter()
        .map(|o| {
            (
                o.kind.label(),
                o.passed,
                o.premise.clone(),
                o.message.clone(),
            )
        })
        .collect();
    let cached = rep.outcomes.iter().map(|o| o.cached).collect();
    (verdicts, cached)
}

/// Two-phase commit with an extra `Audit` action over a fresh global.
fn audited_2pc(body: Vec<SpecStmt>) -> ProgramSpec {
    let mut spec = table1_specs()
        .into_iter()
        .find(|(name, _)| *name == "two_phase_commit")
        .expect("2pc in corpus")
        .1;
    spec.globals
        .push(("audit".to_owned(), Sort::Int, Value::Int(0)));
    spec.pending.push(("Audit".to_owned(), Vec::new()));
    spec.actions.push(ActionSpec {
        name: "Audit".to_owned(),
        params: Vec::new(),
        locals: Vec::new(),
        body,
    });
    spec
}

/// Bodies that read and write only the `audit` global.
fn audit_body() -> impl Strategy<Value = Vec<SpecStmt>> {
    (0usize..3, -3i64..4).prop_map(|(shape, c)| match shape {
        0 => vec![SpecStmt::Assign("audit".to_owned(), int(c))],
        1 => vec![SpecStmt::Assign(
            "audit".to_owned(),
            add(var("audit"), int(c)),
        )],
        _ => vec![SpecStmt::If(
            eq(var("audit"), int(0)),
            vec![SpecStmt::Assign("audit".to_owned(), int(c))],
            Vec::new(),
        )],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn footprint_disjoint_edits_preserve_unrelated_verdicts(
        body_v1 in audit_body(),
        body_v2 in audit_body(),
    ) {
        let engine = Engine::new().with_threads(2);
        let v1 = audited_2pc(body_v1);
        let v2 = audited_2pc(body_v2);

        // Warm: v1 populates the cache, then v2 reuses it.
        let shared = ObligationCache::new();
        run_incremental(&engine, &shared, &v1);
        let (warm_verdicts, warm_cached) = run_incremental(&engine, &shared, &v2);

        // Cold reference: v2 from scratch.
        let fresh = ObligationCache::new();
        let (cold_verdicts, _) = run_incremental(&engine, &fresh, &v2);

        // (a) Cache reuse never changes a verdict or its violated premise,
        // and whatever the warm run recomputed is bit-identical to cold.
        prop_assert_eq!(warm_verdicts.len(), cold_verdicts.len());
        for ((warm, &cached), cold) in
            warm_verdicts.iter().zip(&warm_cached).zip(&cold_verdicts)
        {
            let (warm_label, warm_passed, warm_premise, warm_message) = warm;
            let (cold_label, cold_passed, cold_premise, cold_message) = cold;
            prop_assert_eq!(warm_label, cold_label);
            prop_assert_eq!(warm_passed, cold_passed, "verdict of `{}`", warm_label);
            prop_assert_eq!(warm_premise, cold_premise, "premise of `{}`", warm_label);
            if !cached {
                prop_assert_eq!(warm_message, cold_message, "message of `{}`", warm_label);
            }
        }

        // (b) Only obligations involving the edited action may recompute;
        // (I3) evaluates every eliminated action's abstraction, so it is
        // an Audit-involving obligation too.
        for ((label, _, _, _), cached) in warm_verdicts.iter().zip(warm_cached) {
            let involves_audit = label.contains("Audit") || label == "(I3) induction";
            if !involves_audit {
                prop_assert!(
                    cached,
                    "obligation `{}` recomputed after a disjoint edit",
                    label
                );
            }
        }
        engine.shutdown();
    }
}
