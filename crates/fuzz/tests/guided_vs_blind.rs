//! The tentpole claim, as a regression test: at equal iteration counts and
//! equal seeds, the coverage-guided campaign reaches strictly more distinct
//! coverage edges than the blind campaign.
//!
//! Guidance only changes *which* program each iteration runs (mutate a
//! recent corpus member vs generate fresh), so any edge advantage is
//! attributable to corpus evolution, not to extra measurement. The
//! parameters mirror the seed-0 numbers recorded in EXPERIMENTS.md, scaled
//! down to keep the test quick; both campaigns are fully deterministic, so
//! a failure here means the scheduler or the mutators regressed, not that
//! the dice came up badly.

use inseq_fuzz::campaign::{run_campaign, CampaignConfig};

fn config(guided: bool) -> CampaignConfig {
    CampaignConfig {
        seed: 0,
        iters: 120,
        guided,
        budget: 600,
        ..CampaignConfig::default()
    }
}

#[test]
fn guided_campaign_strictly_beats_blind_on_distinct_edges_at_equal_iterations() {
    let guided = run_campaign(&config(true), None);
    let blind = run_campaign(&config(false), None);

    assert!(guided.finding.is_none(), "{:?}", guided.finding);
    assert!(blind.finding.is_none(), "{:?}", blind.finding);
    assert_eq!(guided.iterations, blind.iterations, "equal work");

    assert!(
        guided.global.edges() > blind.global.edges(),
        "guided must strictly beat blind at equal iterations: \
         guided = {} edges, blind = {} edges",
        guided.global.edges(),
        blind.global.edges()
    );
    // The advantage must come from mutation actually happening.
    assert!(
        guided
            .corpus
            .iter()
            .any(|e| e.kind == inseq_fuzz::campaign::EntryKind::Mutated),
        "guided run promoted no mutants — scheduler is effectively blind"
    );
}
