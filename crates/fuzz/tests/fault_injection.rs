//! End-to-end proof that the battery has teeth: deliberately miscompile the
//! VM (the `fault-injection` feature skews every runtime integer addition)
//! and check that the `vm-interp` oracle catches it and the shrinker
//! minimizes the disagreeing program to a handful of statements.
//!
//! This lives in its own integration-test binary so the process-global
//! fault offset cannot leak into any other test.

use inseq_fuzz::oracles::{disagrees, run_oracle, Oracle, OracleOutcome, DEFAULT_BUDGET};
use inseq_fuzz::shrink::shrink;
use inseq_fuzz::{generate, GenConfig};
use inseq_lang::fault::{set_vm_add_offset, vm_add_offset};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn injected_vm_miscompile_is_caught_and_shrunk_to_a_tiny_repro() {
    assert_eq!(vm_add_offset(), 0, "offset must start at identity");

    // Sanity: with the identity offset the oracle agrees on these seeds.
    let config = GenConfig::default();
    for seed in 0..10u64 {
        let spec = generate(&mut StdRng::seed_from_u64(seed), &config);
        run_oracle(Oracle::VmInterp, &spec, DEFAULT_BUDGET)
            .unwrap_or_else(|d| panic!("seed {seed} disagrees before injection: {d}"));
    }

    // Inject: the VM now computes `a + b + 1` for every runtime addition.
    set_vm_add_offset(1);
    let found = (0..200u64).find_map(|seed| {
        let spec = generate(&mut StdRng::seed_from_u64(seed), &config);
        match run_oracle(Oracle::VmInterp, &spec, DEFAULT_BUDGET) {
            Err(_) => Some((seed, spec)),
            Ok(_) => None,
        }
    });
    let (seed, spec) = found.expect("200 generated programs never exercised a runtime add");

    let small = shrink(&spec, |candidate| {
        disagrees(Oracle::VmInterp, candidate, DEFAULT_BUDGET)
    });
    assert!(
        disagrees(Oracle::VmInterp, &small, DEFAULT_BUDGET),
        "shrunk spec no longer disagrees"
    );
    assert!(
        small.stmt_count() <= 5,
        "seed {seed}: expected a <=5-statement repro, got {} statements:\n{}",
        small.stmt_count(),
        inseq_fuzz::write_spec(&small)
    );

    // Heal the VM: the same minimized program must now agree, which pins
    // the disagreement on the injected fault rather than on a real bug.
    set_vm_add_offset(0);
    assert!(
        matches!(
            run_oracle(Oracle::VmInterp, &small, DEFAULT_BUDGET),
            Ok(OracleOutcome::Checked)
        ),
        "repro still disagrees after removing the fault"
    );
}
