//! The coverage map's determinism contract, end to end.
//!
//! The guided campaign's corpus decisions, the recorded `;@ coverage`
//! metadata, and the guided-vs-blind comparison in EXPERIMENTS.md are all
//! keyed on [`CoverageMap::signature`]. That only works if the signature is
//! a pure function of `(program, budget, reduce mode)` — in particular it
//! must NOT depend on the worker count of the parallel exploration section
//! (the recorded parallel run evaluates a worker-invariant set of
//! configurations) or on which of two identical runs produced it. These
//! tests pin that contract on generated programs and on the scenario-zoo
//! protocols (which cover the deadlock / schedule-dependent-failure / pass
//! verdict classes).

use inseq_fuzz::corpus::zoo_specs;
use inseq_fuzz::coverage::{measure_battery, MeasureOptions};
use inseq_fuzz::spec::ProgramSpec;
use inseq_fuzz::{generate, GenConfig};
use inseq_kernel::ReduceMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: usize = 1_000;

fn subjects() -> Vec<(String, ProgramSpec)> {
    let mut subjects: Vec<(String, ProgramSpec)> = (0..4u64)
        .map(|seed| {
            let spec = generate(&mut StdRng::seed_from_u64(seed), &GenConfig::default());
            (format!("generated-seed{seed}"), spec)
        })
        .collect();
    subjects.extend(zoo_specs());
    subjects
}

fn signature(spec: &ProgramSpec, workers: usize, reduce: ReduceMode) -> String {
    let run = measure_battery(
        spec,
        &MeasureOptions {
            budget: BUDGET,
            workers,
            reduce,
        },
    );
    assert!(
        run.outcomes.is_ok(),
        "battery disagreement on a determinism subject: {:?}",
        run.outcomes
    );
    run.coverage.signature()
}

#[test]
fn signatures_are_identical_across_worker_counts_and_repeated_runs() {
    for (name, spec) in subjects() {
        let reference = signature(&spec, 1, ReduceMode::Por);
        for workers in [1usize, 2, 4] {
            for round in 0..2 {
                assert_eq!(
                    signature(&spec, workers, ReduceMode::Por),
                    reference,
                    "{name}: signature drifted at {workers} worker(s), round {round}"
                );
            }
        }
    }
}

#[test]
fn signatures_are_deterministic_under_every_reduce_mode() {
    for (name, spec) in subjects() {
        for reduce in [ReduceMode::Por, ReduceMode::Sym, ReduceMode::Both] {
            let first = signature(&spec, 2, reduce);
            let second = signature(&spec, 4, reduce);
            assert_eq!(
                first, second,
                "{name}: signature not reproducible under --reduce {reduce}"
            );
        }
    }
}

#[test]
fn signatures_separate_the_zoo_verdict_classes() {
    // Sanity against a signature that is deterministic because it is
    // constant: the three zoo archetypes must hash differently.
    let sigs: Vec<String> = zoo_specs()
        .iter()
        .map(|(_, spec)| signature(spec, 2, ReduceMode::Por))
        .collect();
    assert_eq!(sigs.len(), 3);
    assert!(
        sigs[0] != sigs[1] && sigs[1] != sigs[2] && sigs[0] != sigs[2],
        "zoo signatures collide: {sigs:?}"
    );
}
