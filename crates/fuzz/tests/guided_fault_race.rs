//! Fault-injection proof for the guided campaign: with the VM deliberately
//! miscompiled (the `fault-injection` feature offsets every runtime integer
//! addition), a guided campaign must find a battery disagreement at least
//! as fast — in iterations-to-find, on the same seed stream — as a blind
//! campaign, and the finding must shrink to a replayable repro.
//!
//! Guidance must never *hide* a fault: mutation only changes which programs
//! run, and the battery inspects every one of them. This test lives in its
//! own integration-test binary because the fault offset is process-global.
//!
//! Both campaigns are deterministic, so the iteration counts compared here
//! are exact, not statistics.

use inseq_fuzz::campaign::{run_campaign, CampaignConfig, CampaignResult};
use inseq_fuzz::oracles::{disagrees, run_oracle, Oracle, OracleOutcome};
use inseq_fuzz::shrink::shrink;
use inseq_lang::fault::{set_vm_add_offset, vm_add_offset};

const BUDGET: usize = 800;

fn campaign(guided: bool) -> CampaignResult {
    run_campaign(
        &CampaignConfig {
            seed: 0,
            iters: 300,
            guided,
            budget: BUDGET,
            ..CampaignConfig::default()
        },
        None,
    )
}

#[test]
fn guided_campaign_finds_the_injected_fault_at_least_as_fast_as_blind() {
    assert_eq!(vm_add_offset(), 0, "offset must start at identity");
    set_vm_add_offset(1);

    let guided = campaign(true);
    let blind = campaign(false);

    // Reset before any assertion can exit the test early: later tests in
    // other binaries never see the fault, but assertions below re-run
    // oracles and need the *injected* state, so heal only at the end.
    let guided_find = guided.finding.as_ref().map(|f| f.iteration);
    let blind_find = blind.finding.as_ref().map(|f| f.iteration);

    let Some(found_at) = guided_find else {
        set_vm_add_offset(0);
        panic!("300 guided iterations never tripped the vm-interp oracle");
    };
    // Blind finding is allowed to not exist within the window; guided must
    // then have strictly won. When both find, guided may not be slower.
    if let Some(blind_at) = blind_find {
        assert!(
            found_at <= blind_at,
            "guided took {found_at} iterations, blind only {blind_at}"
        );
    }

    // The finding shrinks to a still-disagreeing repro…
    let finding = guided.finding.as_ref().unwrap();
    assert_eq!(finding.disagreement.oracle, Oracle::VmInterp);
    let small = shrink(&finding.spec, |candidate| {
        disagrees(Oracle::VmInterp, candidate, BUDGET)
    });
    let still_disagrees = disagrees(Oracle::VmInterp, &small, BUDGET);

    // …and healing the VM clears it, pinning the blame on the fault.
    set_vm_add_offset(0);
    assert!(still_disagrees, "shrunk repro no longer disagrees");
    assert!(
        matches!(
            run_oracle(Oracle::VmInterp, &small, BUDGET),
            Ok(OracleOutcome::Checked)
        ),
        "repro still disagrees after removing the fault"
    );
    assert!(
        small.stmt_count() <= 6,
        "expected a tiny repro, got {} statements:\n{}",
        small.stmt_count(),
        inseq_fuzz::write_spec(&small)
    );
}
