//! Property-based tests for the configuration logic: the simplifier
//! preserves semantics on randomly generated formulas and configurations.

use proptest::prelude::*;

use inseq_kernel::{Config, GlobalSchema, GlobalStore, Multiset, PendingAsync, Value};
use inseq_vc::{simplify, Formula, Term};

fn schema() -> GlobalSchema {
    GlobalSchema::new(["x", "y"])
}

fn config(x: i64, y: i64, pending_a: usize) -> Config {
    let mut pending = Multiset::new();
    for _ in 0..pending_a {
        pending.insert(PendingAsync::new("A", vec![]));
    }
    Config::new(
        GlobalStore::new(vec![Value::Int(x), Value::Int(y)]),
        pending,
    )
}

/// A strategy for ground terms over the two globals and small constants.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (-4i64..5).prop_map(Term::int),
        Just(Term::global("x")),
        Just(Term::global("y")),
        Just(Term::pending_total("A")),
    ]
}

/// A recursive strategy for formulas.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (term_strategy(), term_strategy()).prop_map(|(a, b)| Formula::eq(a, b)),
        (term_strategy(), term_strategy()).prop_map(|(a, b)| Formula::le(a, b)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Formula::And),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner, -2i64..3, 0i64..4).prop_map(|(body, lo, hi)| Formula::forall(
                "q",
                Term::int(lo),
                Term::int(lo + hi),
                body
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplify_preserves_semantics(
        f in formula_strategy(),
        x in -3i64..4,
        y in -3i64..4,
        pending in 0usize..3,
    ) {
        let schema = schema();
        let c = config(x, y, pending);
        let before = f.eval(&schema, &c).expect("ground formulas evaluate");
        let after = simplify(f).eval(&schema, &c).expect("simplified formulas evaluate");
        prop_assert_eq!(before, after);
    }

    #[test]
    fn simplify_never_increases_complexity(f in formula_strategy()) {
        let before = f.complexity();
        let after = simplify(f).complexity();
        prop_assert!(after <= before);
    }

    #[test]
    fn simplify_is_idempotent(f in formula_strategy()) {
        let once = simplify(f);
        let twice = simplify(once.clone());
        prop_assert_eq!(once, twice);
    }
}
