//! A declarative *configuration logic* — the assertion language for flat
//! inductive invariants.
//!
//! The paper's baseline comparison (§5.2 "Invariant complexity") pits IS
//! proof artifacts against classical "asynchrony-aware" inductive
//! invariants, like invariant (2) for the broadcast consensus protocol or
//! the Ivy invariants for Paxos. Such invariants constrain whole
//! *configurations* `(g, Ω)`: they quantify over the global store **and**
//! over the multiset of pending asyncs. The action DSL of `inseq-lang`
//! cannot express the latter (gates see only the store — that is exactly
//! why the paper introduces ghost `pendingAsyncs` variables), so this crate
//! provides the missing assertion language:
//!
//! * [`Term`]s evaluate over a configuration — including the atom
//!   [`Term::PendingCount`], the multiplicity of a pending async in `Ω`;
//! * [`Formula`]s are boolean combinations with bounded integer quantifiers;
//! * a [`simplify`] pass performs constant folding (standing in for the
//!   rewriting Boogie performs before SMT); and
//! * [`Formula::eval`] decides a formula on a configuration, which is the
//!   enumerative substitute for an SMT query (see DESIGN.md §2).
//!
//! The `inseq-baseline` crate builds flat-invariant checkers on top.
//!
//! # Example
//!
//! ```
//! use inseq_vc::{Formula, Term};
//! use inseq_kernel::demo::counter_program;
//! use inseq_kernel::Value;
//!
//! // "the counter never exceeds the number of executed Inc tasks":
//! // counter + #pending Inc == 2
//! let f = Formula::eq(
//!     Term::add(Term::global("counter"), Term::pending_count("Inc", vec![])),
//!     Term::konst(Value::Int(2)),
//! );
//! let p = counter_program();
//! let init = p.initial_config(vec![]).unwrap();
//! let exp = inseq_kernel::Explorer::new(&p).explore([init]).unwrap();
//! // Holds in every reachable configuration except the uninitialised one.
//! let holding = exp
//!     .configs()
//!     .filter(|c| f.eval(p.schema(), c).unwrap_or(false))
//!     .count();
//! assert!(holding >= 3);
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::should_implement_trait)] // Term::add/sub are AST constructors, not arithmetic on Term
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use inseq_kernel::{ActionName, Config, GlobalSchema, PendingAsync, Value};

/// An evaluation error: unbound names, sort confusion, partial operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcError(String);

impl fmt::Display for VcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc evaluation error: {}", self.0)
    }
}

impl Error for VcError {}

fn err<T>(msg: impl Into<String>) -> Result<T, VcError> {
    Err(VcError(msg.into()))
}

fn int_of(v: &Value) -> Result<i64, VcError> {
    match v {
        Value::Int(i) => Ok(*i),
        other => err(format!("expected Int, found {other}")),
    }
}

/// A term of the configuration logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A literal value.
    Const(Value),
    /// A quantifier-bound variable.
    Bound(String),
    /// The value of a global variable, by name (resolved via the schema).
    Global(String),
    /// `m[k]` for a total map.
    MapAt(Box<Term>, Box<Term>),
    /// Tuple projection.
    Proj(Box<Term>, usize),
    /// The payload of a `Some`; evaluation fails on `None`.
    Unwrap(Box<Term>),
    /// Integer addition.
    Add(Box<Term>, Box<Term>),
    /// Integer subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Size of a collection.
    SizeOf(Box<Term>),
    /// Multiplicity of an element in a bag.
    CountIn(Box<Term>, Box<Term>),
    /// Tuple construction.
    Tuple(Vec<Term>),
    /// The multiplicity in `Ω` of the pending async `action(args…)` — the
    /// atom that makes this a logic over configurations, not just stores.
    PendingCount(ActionName, Vec<Term>),
    /// Total number of pending asyncs of an action, over all arguments.
    PendingTotal(ActionName),
    /// Number of pending asyncs of an action whose arguments match the
    /// pattern: `Some(t)` positions must equal `t`'s value, `None` positions
    /// are wildcards.
    PendingMatching(ActionName, Vec<Option<Term>>),
}

impl Term {
    /// Literal.
    #[must_use]
    pub fn konst(v: Value) -> Term {
        Term::Const(v)
    }

    /// Integer literal.
    #[must_use]
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// Bound-variable reference.
    #[must_use]
    pub fn bound(name: &str) -> Term {
        Term::Bound(name.to_owned())
    }

    /// Global-variable reference.
    #[must_use]
    pub fn global(name: &str) -> Term {
        Term::Global(name.to_owned())
    }

    /// `m[k]`.
    #[must_use]
    pub fn map_at(m: Term, k: Term) -> Term {
        Term::MapAt(Box::new(m), Box::new(k))
    }

    /// `a + b`.
    #[must_use]
    pub fn add(a: Term, b: Term) -> Term {
        Term::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::Sub(Box::new(a), Box::new(b))
    }

    /// `|c|`.
    #[must_use]
    pub fn size_of(c: Term) -> Term {
        Term::SizeOf(Box::new(c))
    }

    /// Multiplicity of `e` in bag `c`.
    #[must_use]
    pub fn count_in(c: Term, e: Term) -> Term {
        Term::CountIn(Box::new(c), Box::new(e))
    }

    /// Tuple construction.
    #[must_use]
    pub fn tuple_of(ts: Vec<Term>) -> Term {
        Term::Tuple(ts)
    }

    /// Multiplicity of `action(args…)` in `Ω`.
    #[must_use]
    pub fn pending_count(action: impl Into<ActionName>, args: Vec<Term>) -> Term {
        Term::PendingCount(action.into(), args)
    }

    /// Total pending asyncs of `action`.
    #[must_use]
    pub fn pending_total(action: impl Into<ActionName>) -> Term {
        Term::PendingTotal(action.into())
    }

    /// Pending asyncs of `action` matching an argument pattern.
    #[must_use]
    pub fn pending_matching(action: impl Into<ActionName>, pattern: Vec<Option<Term>>) -> Term {
        Term::PendingMatching(action.into(), pattern)
    }

    /// Evaluates the term on a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`VcError`] on unbound names or sort mismatches.
    pub fn eval(&self, schema: &GlobalSchema, config: &Config) -> Result<Value, VcError> {
        self.eval_in(schema, config, &[])
    }

    fn eval_in(
        &self,
        schema: &GlobalSchema,
        config: &Config,
        bound: &[(String, Value)],
    ) -> Result<Value, VcError> {
        match self {
            Term::Const(v) => Ok(v.clone()),
            Term::Bound(x) => bound
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| VcError(format!("unbound variable `{x}`"))),
            Term::Global(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| VcError(format!("unknown global `{name}`")))?;
                Ok(config.globals.get(idx).clone())
            }
            Term::MapAt(m, k) => {
                let m = m.eval_in(schema, config, bound)?;
                let k = k.eval_in(schema, config, bound)?;
                match m {
                    Value::Map(m) => Ok(m.get(&k).clone()),
                    other => err(format!("indexing a non-map {other}")),
                }
            }
            Term::Proj(t, i) => match t.eval_in(schema, config, bound)? {
                Value::Tuple(vs) if *i < vs.len() => Ok(vs[*i].clone()),
                other => err(format!("projection .{i} on {other}")),
            },
            Term::Unwrap(t) => match t.eval_in(schema, config, bound)? {
                Value::Opt(Some(v)) => Ok(*v),
                Value::Opt(None) => err("unwrap of None"),
                other => err(format!("unwrap of non-option {other}")),
            },
            Term::Add(a, b) => Ok(Value::Int(
                int_of(&a.eval_in(schema, config, bound)?)?
                    + int_of(&b.eval_in(schema, config, bound)?)?,
            )),
            Term::Sub(a, b) => Ok(Value::Int(
                int_of(&a.eval_in(schema, config, bound)?)?
                    - int_of(&b.eval_in(schema, config, bound)?)?,
            )),
            Term::SizeOf(t) => {
                let v = t.eval_in(schema, config, bound)?;
                let n = match &v {
                    Value::Set(s) => s.len(),
                    Value::Bag(b) => b.len(),
                    Value::Seq(s) => s.len(),
                    other => return err(format!("size of non-collection {other}")),
                };
                Ok(Value::Int(n as i64))
            }
            Term::Tuple(ts) => Ok(Value::Tuple(
                ts.iter()
                    .map(|t| t.eval_in(schema, config, bound))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Term::CountIn(c, e) => {
                let c = c.eval_in(schema, config, bound)?;
                let e = e.eval_in(schema, config, bound)?;
                match &c {
                    Value::Bag(b) => Ok(Value::Int(b.count(&e) as i64)),
                    other => err(format!("count in non-bag {other}")),
                }
            }
            Term::PendingCount(action, args) => {
                let args = args
                    .iter()
                    .map(|t| t.eval_in(schema, config, bound))
                    .collect::<Result<Vec<_>, _>>()?;
                let pa = PendingAsync::new(action.clone(), args);
                Ok(Value::Int(config.pending.count(&pa) as i64))
            }
            Term::PendingTotal(action) => Ok(Value::Int(
                config
                    .pending
                    .iter()
                    .filter(|pa| &pa.action == action)
                    .count() as i64,
            )),
            Term::PendingMatching(action, pattern) => {
                let wanted: Vec<Option<Value>> = pattern
                    .iter()
                    .map(|p| {
                        p.as_ref()
                            .map(|t| t.eval_in(schema, config, bound))
                            .transpose()
                    })
                    .collect::<Result<_, _>>()?;
                let count = config
                    .pending
                    .iter()
                    .filter(|pa| {
                        &pa.action == action
                            && pa.args.len() == wanted.len()
                            && pa.args.iter().zip(&wanted).all(|(a, w)| match w {
                                Some(v) => a == v,
                                None => true,
                            })
                    })
                    .count();
                Ok(Value::Int(count as i64))
            }
        }
    }
}

/// A formula of the configuration logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Term equality.
    Eq(Term, Term),
    /// Integer `≤`.
    Le(Term, Term),
    /// `t is Some`.
    IsSome(Term),
    /// Collection membership.
    Contains(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction.
    And(Vec<Formula>),
    /// n-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// `∀ x ∈ [lo, hi]. φ` over integers.
    Forall {
        /// Bound variable.
        var: String,
        /// Lower bound (inclusive).
        lo: Term,
        /// Upper bound (inclusive).
        hi: Term,
        /// Body.
        body: Box<Formula>,
    },
    /// `∃ x ∈ [lo, hi]. φ` over integers.
    Exists {
        /// Bound variable.
        var: String,
        /// Lower bound (inclusive).
        lo: Term,
        /// Upper bound (inclusive).
        hi: Term,
        /// Body.
        body: Box<Formula>,
    },
}

impl Formula {
    /// `a == b`.
    #[must_use]
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// `a ≤ b`.
    #[must_use]
    pub fn le(a: Term, b: Term) -> Formula {
        Formula::Le(a, b)
    }

    /// `!f`.
    #[must_use]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `a ⟹ b`.
    #[must_use]
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// `∀ var ∈ [lo, hi]. body`.
    #[must_use]
    pub fn forall(var: &str, lo: Term, hi: Term, body: Formula) -> Formula {
        Formula::Forall {
            var: var.to_owned(),
            lo,
            hi,
            body: Box::new(body),
        }
    }

    /// `∃ var ∈ [lo, hi]. body`.
    #[must_use]
    pub fn exists(var: &str, lo: Term, hi: Term, body: Formula) -> Formula {
        Formula::Exists {
            var: var.to_owned(),
            lo,
            hi,
            body: Box::new(body),
        }
    }

    /// Decides the formula on a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`VcError`] on unbound names or sort mismatches.
    pub fn eval(&self, schema: &GlobalSchema, config: &Config) -> Result<bool, VcError> {
        self.eval_in(schema, config, &mut Vec::new())
    }

    fn eval_in(
        &self,
        schema: &GlobalSchema,
        config: &Config,
        bound: &mut Vec<(String, Value)>,
    ) -> Result<bool, VcError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Eq(a, b) => {
                Ok(a.eval_in(schema, config, bound)? == b.eval_in(schema, config, bound)?)
            }
            Formula::Le(a, b) => Ok(int_of(&a.eval_in(schema, config, bound)?)?
                <= int_of(&b.eval_in(schema, config, bound)?)?),
            Formula::IsSome(t) => Ok(matches!(
                t.eval_in(schema, config, bound)?,
                Value::Opt(Some(_))
            )),
            Formula::Contains(c, e) => {
                let c = c.eval_in(schema, config, bound)?;
                let e = e.eval_in(schema, config, bound)?;
                match &c {
                    Value::Set(s) => Ok(s.contains(&e)),
                    Value::Bag(b) => Ok(b.contains(&e)),
                    Value::Seq(s) => Ok(s.contains(&e)),
                    other => err(format!("membership in non-collection {other}")),
                }
            }
            Formula::Not(f) => Ok(!f.eval_in(schema, config, bound)?),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval_in(schema, config, bound)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval_in(schema, config, bound)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => {
                Ok(!a.eval_in(schema, config, bound)? || b.eval_in(schema, config, bound)?)
            }
            Formula::Forall { var, lo, hi, body } => {
                let lo = int_of(&lo.eval_in(schema, config, bound)?)?;
                let hi = int_of(&hi.eval_in(schema, config, bound)?)?;
                for i in lo..=hi {
                    bound.push((var.clone(), Value::Int(i)));
                    let ok = body.eval_in(schema, config, bound)?;
                    bound.pop();
                    if !ok {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Exists { var, lo, hi, body } => {
                let lo = int_of(&lo.eval_in(schema, config, bound)?)?;
                let hi = int_of(&hi.eval_in(schema, config, bound)?)?;
                for i in lo..=hi {
                    bound.push((var.clone(), Value::Int(i)));
                    let ok = body.eval_in(schema, config, bound)?;
                    bound.pop();
                    if ok {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// The number of AST nodes — the *invariant complexity* metric reported
    /// by the baseline comparison (§5.2 of the paper counts conjuncts; node
    /// count refines that).
    #[must_use]
    pub fn complexity(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Eq(..) | Formula::Le(..) | Formula::IsSome(_) | Formula::Contains(..) => 1,
            Formula::Not(f) => 1 + f.complexity(),
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(Formula::complexity).sum::<usize>()
            }
            Formula::Implies(a, b) => 1 + a.complexity() + b.complexity(),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => 1 + body.complexity(),
        }
    }

    /// The number of top-level conjuncts (after flattening `And`s), the
    /// coarse metric the paper uses when comparing against Ivy.
    #[must_use]
    pub fn conjunct_count(&self) -> usize {
        match self {
            Formula::And(fs) => fs.iter().map(Formula::conjunct_count).sum(),
            _ => 1,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Bound(x) => write!(f, "{x}"),
            Term::Global(g) => write!(f, "{g}"),
            Term::MapAt(m, k) => write!(f, "{m}[{k}]"),
            Term::Proj(t, i) => write!(f, "{t}.{i}"),
            Term::Unwrap(t) => write!(f, "unwrap({t})"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::SizeOf(t) => write!(f, "|{t}|"),
            Term::CountIn(c, e) => write!(f, "count({c}, {e})"),
            Term::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::PendingCount(a, args) => {
                write!(f, "#pending {a}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::PendingTotal(a) => write!(f, "#pending {a}(..)"),
            Term::PendingMatching(a, pat) => {
                write!(f, "#pending {a}(")?;
                for (i, t) in pat.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Some(t) => write!(f, "{t}")?,
                        None => write!(f, "_")?,
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Eq(a, b) => write!(f, "{a} == {b}"),
            Formula::Le(a, b) => write!(f, "{a} <= {b}"),
            Formula::IsSome(t) => write!(f, "({t} is Some)"),
            Formula::Contains(c, e) => write!(f, "({e} in {c})"),
            Formula::Not(g) => write!(f, "!({g})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} ==> {b})"),
            Formula::Forall { var, lo, hi, body } => {
                write!(f, "(forall {var} in [{lo}, {hi}]. {body})")
            }
            Formula::Exists { var, lo, hi, body } => {
                write!(f, "(exists {var} in [{lo}, {hi}]. {body})")
            }
        }
    }
}

/// Constant folding and flattening — the rewriting pass Boogie would apply
/// before handing a VC to the solver.
#[must_use]
pub fn simplify(f: Formula) -> Formula {
    match f {
        Formula::Not(inner) => match simplify(*inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(g) => *g,
            g => Formula::Not(Box::new(g)),
        },
        Formula::And(fs) => {
            let mut out = Vec::new();
            for g in fs.into_iter().map(simplify) {
                match g {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Formula::True,
                1 => out.pop().expect("len checked"),
                _ => Formula::And(out),
            }
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs.into_iter().map(simplify) {
                match g {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Formula::False,
                1 => out.pop().expect("len checked"),
                _ => Formula::Or(out),
            }
        }
        Formula::Implies(a, b) => {
            let a = simplify(*a);
            let b = simplify(*b);
            match (a, b) {
                (Formula::True, b) => b,
                (Formula::False, _) => Formula::True,
                (_, Formula::True) => Formula::True,
                (a, Formula::False) => simplify(Formula::Not(Box::new(a))),
                (a, b) => Formula::Implies(Box::new(a), Box::new(b)),
            }
        }
        Formula::Forall { var, lo, hi, body } => Formula::Forall {
            var,
            lo,
            hi,
            body: Box::new(simplify(*body)),
        },
        Formula::Exists { var, lo, hi, body } => Formula::Exists {
            var,
            lo,
            hi,
            body: Box::new(simplify(*body)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::counter_program;
    use inseq_kernel::{Explorer, Multiset};

    fn demo_config() -> (std::sync::Arc<GlobalSchema>, Config) {
        let p = counter_program();
        let schema = p.schema().clone();
        let mut pending = Multiset::new();
        pending.insert(PendingAsync::new("Inc", vec![]));
        pending.insert(PendingAsync::new("Inc", vec![]));
        let config = Config::new(inseq_kernel::GlobalStore::new(vec![Value::Int(0)]), pending);
        (schema, config)
    }

    #[test]
    fn pending_count_atom() {
        let (schema, config) = demo_config();
        let t = Term::pending_count("Inc", vec![]);
        assert_eq!(t.eval(&schema, &config).unwrap(), Value::Int(2));
        let t = Term::pending_total("Inc");
        assert_eq!(t.eval(&schema, &config).unwrap(), Value::Int(2));
        let t = Term::pending_count("Dec", vec![]);
        assert_eq!(t.eval(&schema, &config).unwrap(), Value::Int(0));
    }

    #[test]
    fn arithmetic_and_globals() {
        let (schema, config) = demo_config();
        let f = Formula::eq(
            Term::add(Term::global("counter"), Term::int(2)),
            Term::int(2),
        );
        assert!(f.eval(&schema, &config).unwrap());
        assert!(Term::global("nope").eval(&schema, &config).is_err());
    }

    #[test]
    fn quantifiers_over_ranges() {
        let (schema, config) = demo_config();
        let f = Formula::forall(
            "i",
            Term::int(1),
            Term::int(3),
            Formula::le(Term::int(1), Term::bound("i")),
        );
        assert!(f.eval(&schema, &config).unwrap());
        let f = Formula::exists(
            "i",
            Term::int(1),
            Term::int(3),
            Formula::eq(Term::bound("i"), Term::int(4)),
        );
        assert!(!f.eval(&schema, &config).unwrap());
    }

    #[test]
    fn invariant_style_formula_holds_on_reachable_configs() {
        // counter + #Inc pending == 2, once Main has executed.
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let f = Formula::Or(vec![
            Formula::eq(Term::pending_total("Main"), Term::int(1)),
            Formula::eq(
                Term::add(Term::global("counter"), Term::pending_total("Inc")),
                Term::int(2),
            ),
        ]);
        for c in exp.configs() {
            assert!(f.eval(p.schema(), c).unwrap(), "violated at {c}");
        }
    }

    #[test]
    fn simplify_folds_constants() {
        let f = Formula::And(vec![
            Formula::True,
            Formula::Or(vec![
                Formula::False,
                Formula::eq(Term::int(1), Term::int(1)),
            ]),
        ]);
        assert_eq!(simplify(f), Formula::eq(Term::int(1), Term::int(1)));
        assert_eq!(
            simplify(Formula::Implies(
                Box::new(Formula::False),
                Box::new(Formula::False)
            )),
            Formula::True
        );
        assert_eq!(
            simplify(Formula::Not(Box::new(Formula::Not(Box::new(
                Formula::True
            ))))),
            Formula::True
        );
    }

    #[test]
    fn complexity_metrics() {
        let f = Formula::And(vec![
            Formula::eq(Term::int(1), Term::int(1)),
            Formula::forall("i", Term::int(1), Term::int(2), Formula::True),
        ]);
        assert_eq!(f.conjunct_count(), 2);
        assert!(f.complexity() >= 3);
    }

    #[test]
    fn display_renders_readably() {
        let f = Formula::forall(
            "i",
            Term::int(1),
            Term::global("n"),
            Formula::eq(
                Term::pending_count("A", vec![Term::bound("i")]),
                Term::int(1),
            ),
        );
        assert_eq!(f.to_string(), "(forall i in [1, n]. #pending A(i) == 1)");
    }

    #[test]
    fn short_circuit_avoids_errors() {
        let (schema, config) = demo_config();
        // unwrap(None) is never evaluated because the disjunction
        // short-circuits.
        let f = Formula::Or(vec![
            Formula::True,
            Formula::eq(
                Term::Unwrap(Box::new(Term::konst(Value::none()))),
                Term::int(1),
            ),
        ]);
        assert!(f.eval(&schema, &config).unwrap());
    }
}
