//! Error types for the kernel.

use std::error::Error;
use std::fmt;

use crate::action::ActionName;
use crate::explore::Trace;

/// Errors raised when constructing or querying programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A pending async or lookup referred to an action the program does not
    /// define.
    UnknownAction(ActionName),
    /// A pending async supplied the wrong number of arguments.
    ArityMismatch {
        /// The action involved.
        action: ActionName,
        /// The declared arity.
        expected: usize,
        /// The number of arguments supplied.
        found: usize,
    },
    /// The program was built without a `Main` action.
    MissingMain,
    /// The initial store does not match the global schema.
    SchemaMismatch {
        /// Number of globals declared by the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownAction(name) => write!(f, "unknown action `{name}`"),
            KernelError::ArityMismatch {
                action,
                expected,
                found,
            } => write!(
                f,
                "action `{action}` expects {expected} argument(s) but was given {found}"
            ),
            KernelError::MissingMain => write!(f, "program has no `Main` action"),
            KernelError::SchemaMismatch { expected, found } => write!(
                f,
                "initial store has {found} value(s) but the schema declares {expected} global(s)"
            ),
        }
    }
}

impl Error for KernelError {}

/// Errors raised during explicit-state exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The exploration exceeded its configuration budget.
    BudgetExceeded {
        /// The configured limit that was hit.
        limit: usize,
        /// How many distinct configurations had been interned when the
        /// budget ran out — the exhaustion point. Always `> limit`.
        visited: usize,
        /// A firing sequence from an initial configuration to the
        /// configuration whose discovery tripped the budget. `None` when the
        /// explorer keeps no edge graph (the parallel engine).
        trace: Option<Trace>,
    },
    /// A structural program error surfaced while exploring.
    Kernel(KernelError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::BudgetExceeded {
                limit,
                visited,
                trace,
            } => {
                write!(
                    f,
                    "exploration exceeded the budget of {limit} configurations \
                     (visited {visited} before giving up)"
                )?;
                if let Some(trace) = trace {
                    write!(f, "; deepest firing sequence: {trace}")?;
                }
                Ok(())
            }
            ExploreError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Kernel(e) => Some(e),
            ExploreError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<KernelError> for ExploreError {
    fn from(e: KernelError) -> Self {
        ExploreError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = KernelError::UnknownAction("Foo".into());
        assert_eq!(e.to_string(), "unknown action `Foo`");
        let e = ExploreError::BudgetExceeded {
            limit: 10,
            visited: 11,
            trace: None,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("11"));
    }

    #[test]
    fn explore_error_wraps_kernel_error() {
        let e: ExploreError = KernelError::MissingMain.into();
        assert!(e.source().is_some());
    }
}
