//! The value domain `D` over which stores are defined.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::multiset::Multiset;

/// A first-order value.
///
/// Values are totally ordered and hashable so that stores, configurations and
/// multisets of pending asyncs can be deduplicated during explicit-state
/// exploration. Maps carry a default value and are kept *canonical*: a key
/// whose value equals the default is never stored, so two maps that agree as
/// functions compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A mathematical integer (bounded to `i64` in this implementation).
    Int(i64),
    /// An optional value (`None()` / `Some(v)` in the paper's Paxos figures).
    Opt(Option<Box<Value>>),
    /// A tuple / datatype value with a constructor tag.
    Tuple(Vec<Value>),
    /// A finite set.
    Set(BTreeSet<Value>),
    /// A finite multiset (bag); the paper's channel type.
    Bag(Multiset<Value>),
    /// A finite sequence; used for FIFO-queue channels.
    Seq(Vec<Value>),
    /// A total map with a default, stored canonically (see type docs).
    Map(Map),
}

impl Value {
    /// Builds `Some(v)`.
    #[must_use]
    pub fn some(v: Value) -> Self {
        Value::Opt(Some(Box::new(v)))
    }

    /// Builds `None`.
    #[must_use]
    pub fn none() -> Self {
        Value::Opt(None)
    }

    /// Builds an empty set.
    #[must_use]
    pub fn empty_set() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// Builds an empty bag.
    #[must_use]
    pub fn empty_bag() -> Self {
        Value::Bag(Multiset::new())
    }

    /// Builds an empty sequence.
    #[must_use]
    pub fn empty_seq() -> Self {
        Value::Seq(Vec::new())
    }

    /// Builds a total map that is `default` everywhere.
    #[must_use]
    pub fn const_map(default: Value) -> Self {
        Value::Map(Map::new(default))
    }

    /// Returns the integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Int`]; kernel callers only invoke
    /// this after the `inseq-lang` type checker has established the sort.
    #[must_use]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Returns the boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, found {other:?}"),
        }
    }

    /// Returns a reference to the set payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Set`].
    #[must_use]
    pub fn as_set(&self) -> &BTreeSet<Value> {
        match self {
            Value::Set(s) => s,
            other => panic!("expected Set, found {other:?}"),
        }
    }

    /// Returns a reference to the bag payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Bag`].
    #[must_use]
    pub fn as_bag(&self) -> &Multiset<Value> {
        match self {
            Value::Bag(b) => b,
            other => panic!("expected Bag, found {other:?}"),
        }
    }

    /// Returns a reference to the sequence payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Seq`].
    #[must_use]
    pub fn as_seq(&self) -> &Vec<Value> {
        match self {
            Value::Seq(s) => s,
            other => panic!("expected Seq, found {other:?}"),
        }
    }

    /// Returns a reference to the map payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Map`].
    #[must_use]
    pub fn as_map(&self) -> &Map {
        match self {
            Value::Map(m) => m,
            other => panic!("expected Map, found {other:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Opt(None) => write!(f, "None"),
            Value::Opt(Some(v)) => write!(f, "Some({v})"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Bag(b) => write!(f, "{b}"),
            Value::Seq(s) => {
                write!(f, "[")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => write!(f, "{m}"),
        }
    }
}

/// A total map `Value → Value` with a default, stored canonically.
///
/// Keys bound to the default value are removed on insertion, so equality of
/// [`Map`]s coincides with extensional equality of the functions they denote.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Map {
    default: Box<Value>,
    entries: BTreeMap<Value, Value>,
}

impl Map {
    /// Creates the constant map equal to `default` everywhere.
    #[must_use]
    pub fn new(default: Value) -> Self {
        Map {
            default: Box::new(default),
            entries: BTreeMap::new(),
        }
    }

    /// The default value of the map.
    #[must_use]
    pub fn default_value(&self) -> &Value {
        &self.default
    }

    /// Looks up `key`, yielding the default when no explicit entry exists.
    #[must_use]
    pub fn get(&self, key: &Value) -> &Value {
        self.entries.get(key).unwrap_or(&self.default)
    }

    /// Functional update, preserving canonicity.
    #[must_use]
    pub fn set(&self, key: Value, value: Value) -> Self {
        let mut next = self.clone();
        next.set_in_place(key, value);
        next
    }

    /// In-place update, preserving canonicity.
    pub fn set_in_place(&mut self, key: Value, value: Value) {
        if value == *self.default {
            self.entries.remove(&key);
        } else {
            self.entries.insert(key, value);
        }
    }

    /// Iterates over the non-default entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Value)> {
        self.entries.iter()
    }

    /// Number of non-default entries.
    #[must_use]
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[default {}", self.default)?;
        for (k, v) in &self.entries {
            write!(f, ", {k} := {v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_canonical() {
        let m = Map::new(Value::Int(0));
        let m1 = m.set(Value::Int(1), Value::Int(5));
        let m2 = m1.set(Value::Int(1), Value::Int(0));
        assert_eq!(m, m2, "writing the default back must restore equality");
        assert_eq!(m2.support_len(), 0);
    }

    #[test]
    fn map_get_returns_default() {
        let m = Map::new(Value::Bool(false));
        assert_eq!(m.get(&Value::Int(7)), &Value::Bool(false));
        let m = m.set(Value::Int(7), Value::Bool(true));
        assert_eq!(m.get(&Value::Int(7)), &Value::Bool(true));
        assert_eq!(m.get(&Value::Int(8)), &Value::Bool(false));
    }

    #[test]
    fn value_constructors() {
        assert_eq!(
            Value::some(Value::Int(3)),
            Value::Opt(Some(Box::new(Value::Int(3))))
        );
        assert_eq!(Value::none(), Value::Opt(None));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(4i64), Value::Int(4));
    }

    #[test]
    fn value_display_is_readable() {
        let v = Value::Tuple(vec![Value::Int(1), Value::some(Value::Bool(true))]);
        assert_eq!(v.to_string(), "(1, Some(true))");
        assert_eq!(Value::empty_set().to_string(), "{}");
        assert_eq!(Value::empty_seq().to_string(), "[]");
    }

    #[test]
    fn value_ordering_is_total_within_variants() {
        let mut vs = vec![Value::Int(3), Value::Int(1), Value::Int(2)];
        vs.sort();
        assert_eq!(vs, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
