//! Semantic kernel for *inductive sequentialization* (Kragl et al., PLDI 2020).
//!
//! This crate provides the semantic objects of §3 of the paper:
//!
//! * [`Value`] and the canonical [`Multiset`] container,
//! * global stores ([`GlobalStore`]) with a named [`GlobalSchema`],
//! * pending asyncs ([`PendingAsync`]) — an action name paired with argument
//!   values, representing a created-but-not-yet-executed task,
//! * gated atomic actions, represented semantically by the
//!   [`ActionSemantics`] trait: from an input store an action either *fails*
//!   (the gate is violated), *blocks* (no transition is enabled), or yields a
//!   set of transitions `(g′, Ω′)`,
//! * programs ([`Program`]) — finite maps from action names to actions with a
//!   dedicated `Main`,
//! * configurations ([`Config`]) `(g, Ω)` and the small-step transition
//!   relation, realized by the exhaustive [`Explorer`],
//! * program summaries `Good(P)` / `Trans(P)` ([`Summary`]) as used by the
//!   refinement definition (Def. 3.2), and
//! * the [`StateUniverse`] over which mover and IS side conditions are
//!   discharged by enumeration (our explicit-state substitute for the SMT
//!   backend used by the paper's CIVL implementation).
//!
//! # Example
//!
//! ```
//! use inseq_kernel::{Explorer, Program, Value};
//! use inseq_kernel::demo::counter_program;
//!
//! // A tiny demo program whose Main spawns two `Inc` tasks.
//! let program: Program = counter_program();
//! let init = program.initial_config(vec![]).unwrap();
//! let exploration = Explorer::new(&program).explore([init]).unwrap();
//! assert!(!exploration.has_failure());
//! // Both interleavings end with the counter at 2.
//! for store in exploration.terminal_stores() {
//!     assert_eq!(store.get(0), &Value::Int(2));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod cintern;
mod config;
pub mod demo;
mod error;
mod explore;
pub mod hash;
pub mod intern;
mod multiset;
mod program;
pub mod reduce;
pub mod render;
mod store;
mod universe;
mod value;

pub use cintern::{ConcurrentInterner, ConfigReq, StoreReq, NUM_SHARDS};

pub use action::{
    ActionName, ActionOutcome, ActionSemantics, ExecStats, Footprint, NativeAction, PendingAsync,
    Transition,
};
pub use config::{Config, Step};
pub use error::{ExploreError, KernelError};
pub use explore::{
    Execution, Exploration, Explorer, FailureWitness, Summary, Trace, DEFAULT_CONFIG_BUDGET,
};
pub use intern::{ArgsId, BagId, ConfigId, Interner, PaId, StoreId, ValueId};
pub use multiset::Multiset;
pub use program::{GlobalSchema, Program, ProgramBuilder};
pub use reduce::{
    canonical_parts, canonical_parts_concurrent, node_permutations, pair_commutes_at,
    pair_commutes_within, ReduceMode, ReductionPolicy, SymmetrySpec, PAIR_CLOSURE_DEPTH,
};
pub use store::GlobalStore;
pub use universe::StateUniverse;
pub use value::{Map, Value};
