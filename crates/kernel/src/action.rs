//! Gated atomic actions, pending asyncs, and transitions (§3 of the paper).

use std::fmt;
use std::sync::Arc;

use crate::multiset::Multiset;
use crate::store::GlobalStore;
use crate::value::Value;

/// The name of an atomic action, e.g. `Broadcast` or `Main`.
///
/// Cheap to clone; names are compared by string content.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionName(Arc<str>);

impl ActionName {
    /// Creates an action name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        ActionName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ActionName {
    fn from(s: &str) -> Self {
        ActionName::new(s)
    }
}

impl From<String> for ActionName {
    fn from(s: String) -> Self {
        ActionName::new(s)
    }
}

impl fmt::Display for ActionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A *pending async* `(ℓ, A)`: an action name together with the argument
/// values (the local store) it will execute with.
///
/// Pending asyncs appear both statically, as the tasks created by a
/// transition, and dynamically, in the multiset component `Ω` of a
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PendingAsync {
    /// The action to be executed.
    pub action: ActionName,
    /// The argument values `ℓ`.
    pub args: Vec<Value>,
}

impl PendingAsync {
    /// Creates a pending async.
    #[must_use]
    pub fn new(action: impl Into<ActionName>, args: Vec<Value>) -> Self {
        PendingAsync {
            action: action.into(),
            args,
        }
    }
}

impl fmt::Display for PendingAsync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.action)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// One transition of an atomic action: the updated global store `g′` and the
/// multiset `Ω′` of pending asyncs created by the step.
///
/// The input store `(g, ℓ)` is implicit — a `Transition` is always produced
/// by [`ActionSemantics::eval`] relative to the store it was evaluated from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transition {
    /// The global store after the step.
    pub globals: GlobalStore,
    /// The pending asyncs created by the step.
    pub created: Multiset<PendingAsync>,
}

impl Transition {
    /// Creates a transition.
    #[must_use]
    pub fn new(globals: GlobalStore, created: Multiset<PendingAsync>) -> Self {
        Transition { globals, created }
    }

    /// A transition that updates the globals and creates no pending asyncs.
    #[must_use]
    pub fn pure(globals: GlobalStore) -> Self {
        Transition {
            globals,
            created: Multiset::new(),
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-> {} creating {}", self.globals, self.created)
    }
}

/// The result of evaluating a gated atomic action `(ρ, τ)` from one input
/// store `g·ℓ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionOutcome {
    /// The gate is violated: `g·ℓ ∉ ρ`. Executing the action from here drives
    /// the program to the failure configuration `⊥`.
    Failure {
        /// Human-readable reason (e.g. the failing assertion), used for the
        /// targeted error messages the paper's CIVL integration emphasises.
        reason: String,
    },
    /// The gate holds; these are the enabled transitions `(g·ℓ, g′, Ω′) ∈ τ`.
    /// An empty vector means the action *blocks* from this store — the paper
    /// is explicit that blocking is distinct from failing.
    Transitions(Vec<Transition>),
}

impl ActionOutcome {
    /// A blocked outcome (gate holds, no transition enabled).
    #[must_use]
    pub fn blocked() -> Self {
        ActionOutcome::Transitions(Vec::new())
    }

    /// Whether the outcome is a gate violation.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, ActionOutcome::Failure { .. })
    }

    /// The transitions, or `None` on failure.
    #[must_use]
    pub fn transitions(&self) -> Option<&[Transition]> {
        match self {
            ActionOutcome::Failure { .. } => None,
            ActionOutcome::Transitions(ts) => Some(ts),
        }
    }
}

/// The global-store *footprint* of an action: which schema indices its
/// evaluation may read and which it may write.
///
/// A footprint is a contract on [`ActionSemantics::eval`]: for fixed
/// arguments, the outcome is a function of the globals at `reads` alone, and
/// every produced transition agrees with the input store outside `writes`.
/// Both lists are sorted and deduplicated; over-approximation is sound
/// (claiming a read/write that never happens), under-approximation is not.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Schema indices the action may read.
    pub reads: Vec<usize>,
    /// Schema indices the action may write.
    pub writes: Vec<usize>,
}

impl Footprint {
    /// Creates a footprint, sorting and deduplicating both index lists.
    #[must_use]
    pub fn new(mut reads: Vec<usize>, mut writes: Vec<usize>) -> Self {
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        Footprint { reads, writes }
    }

    /// Whether the two footprints share any schema index, counting both
    /// reads and writes on both sides.
    ///
    /// Disjointness (`!overlaps`) is the separability test incremental
    /// re-verification relies on: two actions with disjoint footprints
    /// commute and preserve each other's gates, so editing one cannot
    /// change proof obligations that only mention the other.
    #[must_use]
    pub fn overlaps(&self, other: &Footprint) -> bool {
        let mine = self.key_indices();
        other
            .key_indices()
            .iter()
            .any(|i| mine.binary_search(i).is_ok())
    }

    /// The sorted union of `reads` and `writes` — the projection of the
    /// global store that determines the outcome *and* every recorded write
    /// value, which makes it the correct memoization key for transition
    /// caching.
    #[must_use]
    pub fn key_indices(&self) -> Vec<usize> {
        let mut key: Vec<usize> = self
            .reads
            .iter()
            .chain(self.writes.iter())
            .copied()
            .collect();
        key.sort_unstable();
        key.dedup();
        key
    }
}

/// Execution counters reported by [`ActionSemantics::exec_stats`].
///
/// Observability only: these never influence verdicts. The fields describe
/// how an action has been executed so far — through a compiled form, the
/// reference interpreter, or both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Actions that have been lowered to a compiled form.
    pub compiled_actions: u64,
    /// Wall time spent compiling, in nanoseconds.
    pub compile_nanos: u64,
    /// Total ops across all compiled bodies.
    pub compiled_ops: u64,
    /// Evaluations served by the compiled (VM) path.
    pub vm_evals: u64,
    /// Evaluations served by the reference interpreter.
    pub interp_evals: u64,
}

impl ExecStats {
    /// Field-wise sum of two stat blocks.
    #[must_use]
    pub fn merged(self, other: ExecStats) -> ExecStats {
        ExecStats {
            compiled_actions: self.compiled_actions + other.compiled_actions,
            compile_nanos: self.compile_nanos + other.compile_nanos,
            compiled_ops: self.compiled_ops + other.compiled_ops,
            vm_evals: self.vm_evals + other.vm_evals,
            interp_evals: self.interp_evals + other.interp_evals,
        }
    }
}

/// The semantics of a gated atomic action.
///
/// Implementors compute, for a given input store, whether the gate `ρ` holds
/// and — if it does — the set of enabled transitions of `τ`. The main
/// implementor is the DSL interpreter in `inseq-lang`; [`NativeAction`] wraps
/// a Rust closure for tests and small examples.
pub trait ActionSemantics: fmt::Debug + Send + Sync {
    /// Number of action parameters (length of the local store `ℓ`).
    fn arity(&self) -> usize;

    /// Evaluates the action from global store `globals` and arguments `args`.
    ///
    /// `args.len()` must equal [`arity`](ActionSemantics::arity); violating
    /// this is a caller bug and implementations may panic.
    fn eval(&self, globals: &GlobalStore, args: &[Value]) -> ActionOutcome;

    /// The action's global footprint, when one can be soundly computed.
    ///
    /// `None` (the default) means the action is opaque — callers must assume
    /// it may read and write the entire store. DSL actions override this with
    /// a static analysis of their bodies, which lets explorers memoize
    /// transitions keyed on the projected store instead of the whole one.
    fn footprint(&self) -> Option<Footprint> {
        None
    }

    /// One-time setup ahead of hot evaluation — e.g. forcing a compile
    /// cache — so the cost lands before timing-sensitive loops instead of on
    /// the first [`eval`](ActionSemantics::eval). Must be idempotent and
    /// must not change semantics. The default does nothing.
    fn prepare(&self) {}

    /// Execution counters accumulated so far (see [`ExecStats`]). The
    /// default reports all zeros.
    fn exec_stats(&self) -> ExecStats {
        ExecStats::default()
    }
}

/// An atomic action implemented directly as a Rust closure.
///
/// # Example
///
/// ```
/// use inseq_kernel::{ActionOutcome, ActionSemantics, GlobalStore, NativeAction, Transition, Value};
///
/// // An action that increments global 0.
/// let inc = NativeAction::new("Inc", 0, |g: &GlobalStore, _args: &[Value]| {
///     let next = g.with(0, Value::Int(g.get(0).as_int() + 1));
///     ActionOutcome::Transitions(vec![Transition::pure(next)])
/// });
/// let out = inc.eval(&GlobalStore::new(vec![Value::Int(41)]), &[]);
/// assert_eq!(
///     out.transitions().unwrap()[0].globals.get(0),
///     &Value::Int(42)
/// );
/// ```
pub struct NativeAction {
    label: String,
    arity: usize,
    #[allow(clippy::type_complexity)]
    eval: Box<dyn Fn(&GlobalStore, &[Value]) -> ActionOutcome + Send + Sync>,
}

impl NativeAction {
    /// Creates a native action from a closure.
    pub fn new<F>(label: impl Into<String>, arity: usize, eval: F) -> Self
    where
        F: Fn(&GlobalStore, &[Value]) -> ActionOutcome + Send + Sync + 'static,
    {
        NativeAction {
            label: label.into(),
            arity,
            eval: Box::new(eval),
        }
    }
}

impl fmt::Debug for NativeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeAction")
            .field("label", &self.label)
            .field("arity", &self.arity)
            .finish()
    }
}

impl ActionSemantics for NativeAction {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, globals: &GlobalStore, args: &[Value]) -> ActionOutcome {
        debug_assert_eq!(args.len(), self.arity, "arity mismatch for {}", self.label);
        (self.eval)(globals, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_name_roundtrip() {
        let n: ActionName = "Broadcast".into();
        assert_eq!(n.as_str(), "Broadcast");
        assert_eq!(n.to_string(), "Broadcast");
        assert_eq!(n, ActionName::new("Broadcast"));
    }

    #[test]
    fn pending_async_display() {
        let pa = PendingAsync::new("Collect", vec![Value::Int(2)]);
        assert_eq!(pa.to_string(), "Collect(2)");
    }

    #[test]
    fn blocked_outcome_is_not_failure() {
        let b = ActionOutcome::blocked();
        assert!(!b.is_failure());
        assert_eq!(b.transitions().unwrap().len(), 0);
    }

    #[test]
    fn native_action_failure() {
        let fail = NativeAction::new("Fail", 0, |_, _| ActionOutcome::Failure {
            reason: "assert false".into(),
        });
        let out = fail.eval(&GlobalStore::default(), &[]);
        assert!(out.is_failure());
        assert!(out.transitions().is_none());
    }
}
