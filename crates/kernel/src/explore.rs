//! Exhaustive small-step exploration of asynchronous programs.
//!
//! This module realises the transition relation of §3: in configuration
//! `(g, Ω)` any pending async may be scheduled; if its gate is violated the
//! program moves to the failure configuration, otherwise each enabled
//! transition updates the globals and adds the created pending asyncs to `Ω`.
//!
//! The [`Explorer`] enumerates *all* reachable configurations, which is the
//! explicit-state substitute for the SMT-backed reasoning of the paper's
//! CIVL implementation (see DESIGN.md §2 for the substitution argument).
//!
//! Exploration runs over *interned* state (see [`crate::intern`]): the
//! visited set is the configuration arena itself, successor stores are
//! interned through the firing action's write footprint so unchanged slots
//! are shared with the parent, and successor pending bags are small-diff
//! rebuilds of the parent's interned entry vector. Duplicate detection — the
//! hot operation of explicit-state search — therefore hashes two `u32` ids
//! instead of a full configuration tree.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::action::{ActionName, ActionOutcome, PendingAsync};
use crate::config::{Config, Step};
use crate::error::ExploreError;
use crate::intern::{BagId, Interner, PaId, StoreId};
use crate::program::Program;
use crate::reduce::{canonical_parts, ReductionPolicy};
use crate::store::GlobalStore;

/// Default bound on the number of distinct configurations explored.
pub const DEFAULT_CONFIG_BUDGET: usize = 4_000_000;

/// An exhaustive breadth-first explorer for a [`Program`].
pub struct Explorer<'p> {
    program: &'p Program,
    budget: usize,
    reduction: Option<&'p dyn ReductionPolicy>,
}

impl fmt::Debug for Explorer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Explorer")
            .field("budget", &self.budget)
            .field("reduced", &self.reduction.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> Explorer<'p> {
    /// Creates an explorer with the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        Explorer {
            program,
            budget: DEFAULT_CONFIG_BUDGET,
            reduction: None,
        }
    }

    /// Sets the maximum number of distinct configurations to visit before
    /// giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Explores under a reduction policy: configurations whose pending
    /// asyncs the policy proves commuting expand only an ample singleton,
    /// and successors are canonicalized under the policy's symmetry
    /// quotient (if any) before interning. Verdicts (failure-freedom,
    /// deadlock-freedom, orbit-expanded terminal stores) are preserved;
    /// visited/edge counts refer to the *reduced* graph.
    #[must_use]
    pub fn with_reduction(mut self, policy: &'p dyn ReductionPolicy) -> Self {
        self.reduction = Some(policy);
        self
    }

    /// Explores all configurations reachable from the given initial
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the state space exceeds
    /// the budget and [`ExploreError::Kernel`] when a pending async refers to
    /// an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<Exploration, ExploreError> {
        // One-time action setup (e.g. compiling to bytecode) before the hot
        // loop, so first-evaluation cost never lands mid-exploration.
        self.program.prepare_actions();
        let mut interner = Interner::new();
        // `(store, bag)` parts per config id, so dequeuing a configuration
        // is two array reads instead of a deep clone.
        let mut parts = Vec::new();
        let mut initial_ids = Vec::new();
        let mut edges = Vec::new();
        let mut failures = Vec::new();
        let mut deadlocks = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        for config in initial {
            let (id, fresh) = interner.intern_config(&config);
            if fresh {
                parts.push(interner.config_parts(id));
            }
            initial_ids.push(id.index());
            frontier.push(id.index());
        }
        // Write footprints per action, fetched once so the scheduling loop
        // can intern successor stores through the footprint's write set.
        let footprints: HashMap<ActionName, Vec<usize>> = self
            .program
            .actions()
            .filter_map(|(name, a)| a.footprint().map(|f| (name.clone(), f.writes)))
            .collect();
        // Reused across configurations: the distinct pending asyncs of the
        // configuration under expansion. Bag entries are canonically sorted
        // in `Multiset` iteration order, so firing order (and hence edge and
        // discovery order) matches the previous tree-walking explorer.
        let mut pa_buf: Vec<PaId> = Vec::new();
        let sym = self.reduction.and_then(ReductionPolicy::symmetry);
        // Raw successor parts → canonical parts, so each orbit is
        // canonicalized once (ids are append-only, keys never go stale).
        let mut canon_cache: HashMap<(StoreId, BagId), (StoreId, BagId)> = HashMap::new();
        let mut pruned: u64 = 0;
        let mut orbit_collapses: u64 = 0;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let id = frontier[cursor];
            cursor += 1;
            let (sid, bagid) = parts[id];
            pa_buf.clear();
            pa_buf.extend(interner.bag_entries(bagid).iter().map(|&(p, _)| p));
            // An ample singleton, when the policy proves one sound here.
            let ample: Option<PaId> = match self.reduction {
                Some(policy) if pa_buf.len() >= 2 => {
                    let pending: Vec<(PendingAsync, usize)> = interner
                        .bag_entries(bagid)
                        .iter()
                        .map(|&(p, n)| (interner.pa(p).clone(), n as usize))
                        .collect();
                    policy
                        .ample(self.program, interner.store(sid), &pending)
                        .map(|i| pa_buf[i])
                }
                _ => None,
            };
            let mut progressed = pa_buf.is_empty();
            let mut to_expand: Vec<PaId> = match ample {
                Some(p) => vec![p],
                None => pa_buf.clone(),
            };
            let mut ample_round = ample.is_some();
            loop {
                let mut any_fresh = false;
                for &paid in &to_expand {
                    let outcome = {
                        let globals = interner.store(sid);
                        let pa = interner.pa(paid);
                        self.program.eval_pa(globals, pa)?
                    };
                    match outcome {
                        ActionOutcome::Failure { reason } => {
                            progressed = true;
                            failures.push(Failure {
                                config: id,
                                fired: paid,
                                reason,
                            });
                        }
                        ActionOutcome::Transitions(transitions) => {
                            if !transitions.is_empty() {
                                progressed = true;
                            }
                            let writes =
                                footprints.get(&interner.pa(paid).action).map(Vec::as_slice);
                            for t in transitions {
                                let next_sid = interner.intern_store_diff(sid, &t.globals, writes);
                                let next_bag = interner.bag_after(bagid, paid, &t.created);
                                let (next_sid, next_bag) = match sym {
                                    Some(spec) => {
                                        let canon = canonical_parts(
                                            &mut interner,
                                            &mut canon_cache,
                                            spec,
                                            (next_sid, next_bag),
                                        );
                                        if canon != (next_sid, next_bag) {
                                            orbit_collapses += 1;
                                        }
                                        canon
                                    }
                                    None => (next_sid, next_bag),
                                };
                                let (next_id, fresh) =
                                    interner.intern_config_parts(next_sid, next_bag);
                                edges.push(Edge {
                                    from: id,
                                    fired: paid,
                                    to: next_id.index(),
                                });
                                if fresh {
                                    any_fresh = true;
                                    parts.push((next_sid, next_bag));
                                    if interner.config_count() > self.budget {
                                        // The edge to `next_id` is already
                                        // recorded, so the exhaustion point
                                        // has a concrete witness run.
                                        let trace = shortest_steps(
                                            &interner,
                                            &edges,
                                            &initial_ids,
                                            next_id.index(),
                                        )
                                        .map(|steps| Trace { steps });
                                        return Err(ExploreError::BudgetExceeded {
                                            limit: self.budget,
                                            visited: interner.config_count(),
                                            trace,
                                        });
                                    }
                                    frontier.push(next_id.index());
                                }
                            }
                        }
                    }
                }
                if ample_round {
                    if any_fresh {
                        // The ample expansion discovered a new configuration;
                        // the pruned pendings fire from there eventually.
                        pruned += (pa_buf.len() - 1) as u64;
                        break;
                    }
                    // Cycle proviso: every ample successor was already
                    // visited, so postponing the others could starve them
                    // around a cycle. Fall back to full expansion.
                    let chosen = to_expand[0];
                    to_expand = pa_buf.iter().copied().filter(|&p| p != chosen).collect();
                    ample_round = false;
                } else {
                    break;
                }
            }
            if !progressed {
                deadlocks.push(id);
            }
        }
        let configs = interner
            .config_ids()
            .map(|cid| interner.resolve_config(cid))
            .collect();
        Ok(Exploration {
            interner,
            configs,
            initial: initial_ids,
            edges,
            failures,
            deadlocks,
            pruned,
            orbit_collapses,
        })
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration.
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        let exp = self.explore([initial])?;
        Ok(Summary {
            good: !exp.has_failure(),
            terminal: exp.terminal_stores().cloned().collect(),
        })
    }
}

/// An edge of the explored configuration graph. The fired pending async is
/// stored by interned id; resolve through the exploration's interner.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Edge {
    from: usize,
    fired: PaId,
    to: usize,
}

/// A recorded gate violation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Failure {
    config: usize,
    fired: PaId,
    reason: String,
}

/// One shortest edge path from any id in `initial` to `target`, resolved
/// into concrete steps via the interner. `None` when `target` is not
/// reachable over the recorded edges (e.g. a config absorbed into a universe
/// from an invariant transition rather than from this exploration).
///
/// This BFS-parent walk is the single reconstruction routine behind
/// [`Exploration::execution_reaching`], [`Exploration::trace_to`], the
/// failure/deadlock witnesses, and the budget-exhaustion trace.
fn shortest_steps(
    interner: &Interner,
    edges: &[Edge],
    initial: &[usize],
    target: usize,
) -> Option<Vec<Step>> {
    let mut adjacency: HashMap<usize, Vec<&Edge>> = HashMap::new();
    for e in edges {
        adjacency.entry(e.from).or_default().push(e);
    }
    let mut incoming: HashMap<usize, &Edge> = HashMap::new();
    let mut queue: VecDeque<usize> = initial.iter().copied().collect();
    let mut seen: HashSet<usize> = initial.iter().copied().collect();
    while let Some(id) = queue.pop_front() {
        if id == target {
            break;
        }
        for e in adjacency.get(&id).into_iter().flatten() {
            if seen.insert(e.to) {
                incoming.insert(e.to, e);
                queue.push_back(e.to);
            }
        }
    }
    if !seen.contains(&target) {
        return None;
    }
    let mut steps = Vec::new();
    let mut cursor = target;
    while let Some(e) = incoming.get(&cursor) {
        steps.push(Step {
            before: interner.resolve_config(interner.config_id(e.from)),
            fired: interner.pa(e.fired).clone(),
            after: interner.resolve_config(interner.config_id(e.to)),
        });
        cursor = e.from;
    }
    steps.reverse();
    Some(steps)
}

/// A **witness**: a concrete firing sequence from an initial configuration
/// to a configuration of interest — a gate failure, a deadlock, a budget
/// exhaustion point, or the configuration that contributed a store to a
/// violated premise.
///
/// Structurally identical to [`Execution`]; the separate type marks the
/// *role* (counterexample evidence rather than arbitrary behaviour) and
/// carries the compact one-line `Display` used in error messages. Full
/// Fig. 2-style renderings go through [`crate::render::render_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The steps, in firing order.
    pub steps: Vec<Step>,
}

/// Maximum firings shown by [`Trace`]'s compact `Display`.
const TRACE_DISPLAY_CAP: usize = 12;

impl Trace {
    /// The fired pending asyncs, in order.
    pub fn firings(&self) -> impl Iterator<Item = &PendingAsync> {
        self.steps.iter().map(|s| &s.fired)
    }

    /// The configuration the trace ends in (`None` for the empty trace,
    /// whose target is an initial configuration).
    #[must_use]
    pub fn last(&self) -> Option<&Config> {
        self.steps.last().map(|s| &s.after)
    }

    /// Number of firings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the trace has no firings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl From<Execution> for Trace {
    fn from(e: Execution) -> Self {
        Trace { steps: e.steps }
    }
}

impl From<Trace> for Execution {
    fn from(t: Trace) -> Self {
        Execution { steps: t.steps }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "(initial configuration)");
        }
        for (i, step) in self.steps.iter().take(TRACE_DISPLAY_CAP).enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{}", step.fired)?;
        }
        if self.steps.len() > TRACE_DISPLAY_CAP {
            write!(f, " … (+{} more)", self.steps.len() - TRACE_DISPLAY_CAP)?;
        }
        Ok(())
    }
}

/// A gate violation paired with its concrete witness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureWitness {
    /// Firing sequence from an initial configuration to the configuration
    /// at which the gate is violated.
    pub trace: Trace,
    /// The pending async whose gate fails after the trace.
    pub fired: PendingAsync,
    /// The gate's failure message.
    pub reason: String,
}

impl fmt::Display for FailureWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "after {}, executing {} fails: {}",
            self.trace, self.fired, self.reason
        )
    }
}

/// The result of exhaustively exploring a program: the reachable
/// configuration graph plus all gate violations encountered.
///
/// Configurations are kept both interned (for O(1) membership probes) and
/// materialized (so `configs()` can hand out `&Config` without rebuilding).
#[derive(Debug)]
pub struct Exploration {
    interner: Interner,
    configs: Vec<Config>,
    initial: Vec<usize>,
    edges: Vec<Edge>,
    failures: Vec<Failure>,
    deadlocks: Vec<usize>,
    pruned: u64,
    orbit_collapses: u64,
}

impl Exploration {
    fn resolve_pa(&self, id: PaId) -> PendingAsync {
        self.interner.pa(id).clone()
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Number of transitions in the explored graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all reachable configurations.
    pub fn configs(&self) -> impl Iterator<Item = &Config> {
        self.configs.iter()
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found.
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|f| {
                format!(
                    "executing {} from {} fails: {}",
                    self.interner.pa(f.fired),
                    self.configs[f.config],
                    f.reason
                )
            })
            .collect()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure — **deadlocks**: the program can neither proceed nor
    /// terminate from them. (A blocked pending async is not by itself a
    /// deadlock; some other pending async may still run.)
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter().map(|&id| &self.configs[id])
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.configs
            .iter()
            .filter(|c| c.is_terminal())
            .map(|c| &c.globals)
    }

    /// All steps `(before, fired, after)` of the explored graph.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        self.edges.iter().map(|e| Step {
            before: self.configs[e.from].clone(),
            fired: self.resolve_pa(e.fired),
            after: self.configs[e.to].clone(),
        })
    }

    /// Reconstructs one shortest execution from an initial configuration to
    /// `target`, or `None` when `target` is unreachable.
    #[must_use]
    pub fn execution_reaching(&self, target: &Config) -> Option<Execution> {
        let target_id = self.interner.find_config(target)?.index();
        let steps = shortest_steps(&self.interner, &self.edges, &self.initial, target_id)?;
        Some(Execution { steps })
    }

    /// Reconstructs one shortest witness trace from an initial configuration
    /// to `target`, or `None` when `target` is unreachable.
    #[must_use]
    pub fn trace_to(&self, target: &Config) -> Option<Trace> {
        self.execution_reaching(target).map(Trace::from)
    }

    /// All gate violations, each with a concrete firing sequence reaching
    /// the configuration at which the gate fails.
    #[must_use]
    pub fn failure_witnesses(&self) -> Vec<FailureWitness> {
        self.failures
            .iter()
            .filter_map(|fail| {
                let steps =
                    shortest_steps(&self.interner, &self.edges, &self.initial, fail.config)?;
                Some(FailureWitness {
                    trace: Trace { steps },
                    fired: self.resolve_pa(fail.fired),
                    reason: fail.reason.clone(),
                })
            })
            .collect()
    }

    /// A concrete firing sequence reaching each deadlocked configuration.
    #[must_use]
    pub fn deadlock_witnesses(&self) -> Vec<Trace> {
        self.deadlocks
            .iter()
            .filter_map(|&id| {
                let steps = shortest_steps(&self.interner, &self.edges, &self.initial, id)?;
                Some(Trace { steps })
            })
            .collect()
    }

    /// Configuration-dedup statistics of the interner that backed this
    /// exploration (hits = duplicate configurations not re-explored).
    #[must_use]
    pub fn intern_stats(&self) -> inseq_obs::HitMissSnapshot {
        self.interner.intern_stats()
    }

    /// Pending asyncs left unexpanded by partial-order reduction (0 for
    /// unreduced explorations).
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Successors whose orbit representative differed from the raw
    /// successor under the symmetry quotient (0 without symmetry).
    #[must_use]
    pub fn orbit_collapses(&self) -> u64 {
        self.orbit_collapses
    }

    /// Enumerates terminating executions as step sequences, up to `limit`
    /// executions. Useful for the Fig. 2 rewriting demonstration; the number
    /// of interleavings explodes, so a limit is mandatory.
    #[must_use]
    pub fn terminating_executions(&self, limit: usize) -> Vec<Execution> {
        let mut out = Vec::new();
        let mut adjacency: HashMap<usize, Vec<&Edge>> = HashMap::new();
        for e in &self.edges {
            adjacency.entry(e.from).or_default().push(e);
        }
        for &start in &self.initial {
            let mut stack: Vec<(usize, Vec<Step>)> = vec![(start, Vec::new())];
            while let Some((id, path)) = stack.pop() {
                if out.len() >= limit {
                    return out;
                }
                let config = &self.configs[id];
                if config.is_terminal() {
                    out.push(Execution { steps: path });
                    continue;
                }
                // Cycles cannot occur on a terminating path twice with the
                // same config because each step consumes a PA or changes
                // state; still, guard against revisiting within one path.
                if let Some(edges) = adjacency.get(&id) {
                    for e in edges {
                        if path.len() >= self.configs.len() * 4 {
                            continue;
                        }
                        let mut next = path.clone();
                        next.push(Step {
                            before: self.configs[e.from].clone(),
                            fired: self.resolve_pa(e.fired),
                            after: self.configs[e.to].clone(),
                        });
                        stack.push((e.to, next));
                    }
                }
            }
        }
        out
    }
}

/// A finite execution: a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Execution {
    /// The first configuration of the execution.
    #[must_use]
    pub fn first(&self) -> Option<&Config> {
        self.steps.first().map(|s| &s.before)
    }

    /// The last configuration of the execution.
    #[must_use]
    pub fn last(&self) -> Option<&Config> {
        self.steps.last().map(|s| &s.after)
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the execution has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The summary of a program from one initialized configuration: whether it is
/// failure-free (`Good`) and the set of terminating global stores (`Trans`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// `true` iff no failing execution exists (`g·ℓ ∈ Good(P)`).
    pub good: bool,
    /// The final stores of terminating executions (`Trans(P)` restricted to
    /// the initial store).
    pub terminal: std::collections::BTreeSet<GlobalStore>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{counter_program, failing_program};
    use crate::value::Value;

    #[test]
    fn counter_reaches_two() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(!exp.has_failure());
        let terminals: Vec<_> = exp.terminal_stores().collect();
        assert!(!terminals.is_empty());
        for t in terminals {
            assert_eq!(t.get(0), &Value::Int(2));
        }
    }

    #[test]
    fn summary_of_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let s = Explorer::new(&p).summarize(init).unwrap();
        assert!(s.good);
        assert_eq!(s.terminal.len(), 1);
    }

    #[test]
    fn failing_program_is_detected() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(exp.has_failure());
        let reports = exp.failure_reports();
        assert!(reports.iter().any(|r| r.contains("assert false")));
    }

    #[test]
    fn budget_is_enforced() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = Explorer::new(&p)
            .with_budget(1)
            .explore([init])
            .unwrap_err();
        let ExploreError::BudgetExceeded {
            limit: 1,
            visited,
            trace: Some(trace),
        } = err
        else {
            panic!("expected a budget error with a witness, got {err:?}");
        };
        assert!(visited > 1);
        // The trace ends in the configuration whose discovery tripped the
        // budget, and each firing is legal in its pre-configuration.
        assert!(!trace.is_empty());
        assert_chains(&p, &trace.steps);
    }

    /// Replays `steps` against the program: endpoints chain, every fired
    /// pending async is present in its pre-configuration, and the action's
    /// semantics admit the recorded post-configuration.
    fn assert_chains(p: &crate::program::Program, steps: &[Step]) {
        for w in steps.windows(2) {
            assert_eq!(w[0].after, w[1].before, "steps must chain");
        }
        for s in steps {
            assert!(
                s.before.pending.count(&s.fired) > 0,
                "{} not pending in {}",
                s.fired,
                s.before
            );
            let outcome = p.eval_pa(&s.before.globals, &s.fired).unwrap();
            let ActionOutcome::Transitions(ts) = outcome else {
                panic!("fired pending async fails in its pre-configuration");
            };
            let replayed = ts.iter().any(|t| {
                let mut bag = s.before.pending.clone();
                bag.remove_one(&s.fired);
                for (pa, n) in t.created.iter_counts() {
                    bag.insert_n(pa.clone(), n);
                }
                t.globals == s.after.globals && bag == s.after.pending
            });
            assert!(replayed, "no transition of {} replays the step", s.fired);
        }
    }

    #[test]
    fn failure_witness_replays_to_failing_config() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init.clone()]).unwrap();
        let witnesses = exp.failure_witnesses();
        assert_eq!(witnesses.len(), exp.failure_reports().len());
        for w in &witnesses {
            assert_chains(&p, &w.trace.steps);
            let end = w.trace.last().unwrap_or(&init);
            // The violated pending async really is schedulable at the end of
            // the trace, and really fails there.
            assert!(end.pending.count(&w.fired) > 0);
            let outcome = p.eval_pa(&end.globals, &w.fired).unwrap();
            assert!(matches!(outcome, ActionOutcome::Failure { .. }));
            assert!(w.to_string().contains("fails"));
        }
    }

    #[test]
    fn trace_to_reaches_requested_config() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init.clone()]).unwrap();
        // Pick the lexicographically largest reachable config (some
        // non-initial terminal) and reconstruct a path to it.
        let target = exp.configs().max().unwrap().clone();
        let trace = exp.trace_to(&target).expect("reachable");
        assert_chains(&p, &trace.steps);
        assert_eq!(trace.last().unwrap_or(&init), &target);
        // Unreachable configurations yield no trace.
        let ghost = Config::new(
            GlobalStore::new(vec![crate::value::Value::Int(99)]),
            crate::multiset::Multiset::new(),
        );
        assert!(exp.trace_to(&ghost).is_none());
    }

    #[test]
    fn deadlock_witnesses_end_in_deadlocked_configs() {
        use crate::action::{NativeAction, PendingAsync};
        use crate::program::{GlobalSchema, Program};
        let mut b = Program::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![crate::action::Transition::new(
                    g.clone(),
                    crate::multiset::Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let witnesses = exp.deadlock_witnesses();
        assert_eq!(witnesses.len(), 1);
        let deadlocked: Vec<_> = exp.deadlocked_configs().collect();
        assert_eq!(witnesses[0].last().unwrap(), deadlocked[0]);
        assert!(witnesses[0].to_string().contains("Main()"));
    }

    #[test]
    fn intern_stats_reflect_dedup() {
        use crate::action::{NativeAction, PendingAsync, Transition};
        use crate::multiset::Multiset;
        use crate::program::{GlobalSchema, Program};
        use crate::store::GlobalStore;
        // Main spawns two commuting writers A and B; both interleavings meet
        // again in the same final configuration, so the second arrival is a
        // dedup hit.
        let write = |slot: usize| {
            move |g: &GlobalStore, _: &[Value]| {
                let mut g = g.clone();
                g.set(slot, Value::Int(1));
                ActionOutcome::Transitions(vec![Transition::new(g, Multiset::new())])
            }
        };
        let mut b = Program::builder(GlobalSchema::new(["a", "b"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                let mut created = Multiset::new();
                created.insert(PendingAsync::new("A", vec![]));
                created.insert(PendingAsync::new("B", vec![]));
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
            }),
        );
        b.action("A", NativeAction::new("A", 0, write(0)));
        b.action("B", NativeAction::new("B", 0, write(1)));
        let p = b.build().unwrap();
        let init = p
            .initial_config_with(GlobalStore::new(vec![Value::Int(0), Value::Int(0)]), vec![])
            .unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let stats = exp.intern_stats();
        // Every distinct config is one miss; the diamond's re-convergence is
        // at least one hit.
        assert_eq!(stats.misses as usize, exp.config_count());
        assert!(stats.hits > 0);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn deadlocks_are_detected() {
        use crate::action::{NativeAction, PendingAsync};
        use crate::program::{GlobalSchema, Program};
        // Main spawns a task that blocks forever.
        let mut b = Program::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![crate::action::Transition::new(
                    g.clone(),
                    crate::multiset::Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(exp.has_deadlock());
        assert_eq!(exp.deadlocked_configs().count(), 1);
        // The counter program has no deadlocks.
        let p = crate::demo::counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(!exp.has_deadlock());
    }

    #[test]
    fn terminating_executions_have_consistent_endpoints() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init.clone()]).unwrap();
        let execs = exp.terminating_executions(16);
        assert!(!execs.is_empty());
        for e in &execs {
            assert_eq!(e.first().unwrap(), &init);
            assert!(e.last().unwrap().is_terminal());
            for w in e.steps.windows(2) {
                assert_eq!(w[0].after, w[1].before, "steps must chain");
            }
        }
    }
}
