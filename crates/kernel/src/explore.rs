//! Exhaustive small-step exploration of asynchronous programs.
//!
//! This module realises the transition relation of §3: in configuration
//! `(g, Ω)` any pending async may be scheduled; if its gate is violated the
//! program moves to the failure configuration, otherwise each enabled
//! transition updates the globals and adds the created pending asyncs to `Ω`.
//!
//! The [`Explorer`] enumerates *all* reachable configurations, which is the
//! explicit-state substitute for the SMT-backed reasoning of the paper's
//! CIVL implementation (see DESIGN.md §2 for the substitution argument).
//!
//! Exploration runs over *interned* state (see [`crate::intern`]): the
//! visited set is the configuration arena itself, successor stores are
//! interned through the firing action's write footprint so unchanged slots
//! are shared with the parent, and successor pending bags are small-diff
//! rebuilds of the parent's interned entry vector. Duplicate detection — the
//! hot operation of explicit-state search — therefore hashes two `u32` ids
//! instead of a full configuration tree.

use std::collections::HashMap;

use crate::action::{ActionName, ActionOutcome, PendingAsync};
use crate::config::{Config, Step};
use crate::error::ExploreError;
use crate::intern::{Interner, PaId};
use crate::program::Program;
use crate::store::GlobalStore;

/// Default bound on the number of distinct configurations explored.
pub const DEFAULT_CONFIG_BUDGET: usize = 2_000_000;

/// An exhaustive breadth-first explorer for a [`Program`].
#[derive(Debug)]
pub struct Explorer<'p> {
    program: &'p Program,
    budget: usize,
}

impl<'p> Explorer<'p> {
    /// Creates an explorer with the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        Explorer {
            program,
            budget: DEFAULT_CONFIG_BUDGET,
        }
    }

    /// Sets the maximum number of distinct configurations to visit before
    /// giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Explores all configurations reachable from the given initial
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the state space exceeds
    /// the budget and [`ExploreError::Kernel`] when a pending async refers to
    /// an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<Exploration, ExploreError> {
        let mut interner = Interner::new();
        // `(store, bag)` parts per config id, so dequeuing a configuration
        // is two array reads instead of a deep clone.
        let mut parts = Vec::new();
        let mut initial_ids = Vec::new();
        let mut edges = Vec::new();
        let mut failures = Vec::new();
        let mut deadlocks = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        for config in initial {
            let (id, fresh) = interner.intern_config(&config);
            if fresh {
                parts.push(interner.config_parts(id));
            }
            initial_ids.push(id.index());
            frontier.push(id.index());
        }
        // Write footprints per action, fetched once so the scheduling loop
        // can intern successor stores through the footprint's write set.
        let footprints: HashMap<ActionName, Vec<usize>> = self
            .program
            .actions()
            .filter_map(|(name, a)| a.footprint().map(|f| (name.clone(), f.writes)))
            .collect();
        // Reused across configurations: the distinct pending asyncs of the
        // configuration under expansion. Bag entries are canonically sorted
        // in `Multiset` iteration order, so firing order (and hence edge and
        // discovery order) matches the previous tree-walking explorer.
        let mut pa_buf: Vec<PaId> = Vec::new();
        let mut cursor = 0;
        while cursor < frontier.len() {
            let id = frontier[cursor];
            cursor += 1;
            let (sid, bagid) = parts[id];
            pa_buf.clear();
            pa_buf.extend(interner.bag_entries(bagid).iter().map(|&(p, _)| p));
            let mut progressed = pa_buf.is_empty();
            for &paid in &pa_buf {
                let outcome = {
                    let globals = interner.store(sid);
                    let pa = interner.pa(paid);
                    self.program.eval_pa(globals, pa)?
                };
                match outcome {
                    ActionOutcome::Failure { reason } => {
                        progressed = true;
                        failures.push(Failure {
                            config: id,
                            fired: paid,
                            reason,
                        });
                    }
                    ActionOutcome::Transitions(transitions) => {
                        if !transitions.is_empty() {
                            progressed = true;
                        }
                        let writes = footprints
                            .get(&interner.pa(paid).action)
                            .map(Vec::as_slice);
                        for t in transitions {
                            let next_sid = interner.intern_store_diff(sid, &t.globals, writes);
                            let next_bag = interner.bag_after(bagid, paid, &t.created);
                            let (next_id, fresh) = interner.intern_config_parts(next_sid, next_bag);
                            edges.push(Edge {
                                from: id,
                                fired: paid,
                                to: next_id.index(),
                            });
                            if fresh {
                                parts.push((next_sid, next_bag));
                                if interner.config_count() > self.budget {
                                    return Err(ExploreError::BudgetExceeded {
                                        limit: self.budget,
                                        visited: interner.config_count(),
                                    });
                                }
                                frontier.push(next_id.index());
                            }
                        }
                    }
                }
            }
            if !progressed {
                deadlocks.push(id);
            }
        }
        let configs = interner
            .config_ids()
            .map(|cid| interner.resolve_config(cid))
            .collect();
        Ok(Exploration {
            interner,
            configs,
            initial: initial_ids,
            edges,
            failures,
            deadlocks,
        })
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration.
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        let exp = self.explore([initial])?;
        Ok(Summary {
            good: !exp.has_failure(),
            terminal: exp.terminal_stores().cloned().collect(),
        })
    }
}

/// An edge of the explored configuration graph. The fired pending async is
/// stored by interned id; resolve through the exploration's interner.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Edge {
    from: usize,
    fired: PaId,
    to: usize,
}

/// A recorded gate violation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Failure {
    config: usize,
    fired: PaId,
    reason: String,
}

/// The result of exhaustively exploring a program: the reachable
/// configuration graph plus all gate violations encountered.
///
/// Configurations are kept both interned (for O(1) membership probes) and
/// materialized (so `configs()` can hand out `&Config` without rebuilding).
#[derive(Debug)]
pub struct Exploration {
    interner: Interner,
    configs: Vec<Config>,
    initial: Vec<usize>,
    edges: Vec<Edge>,
    failures: Vec<Failure>,
    deadlocks: Vec<usize>,
}

impl Exploration {
    fn resolve_pa(&self, id: PaId) -> PendingAsync {
        self.interner.pa(id).clone()
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Number of transitions in the explored graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all reachable configurations.
    pub fn configs(&self) -> impl Iterator<Item = &Config> {
        self.configs.iter()
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found.
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|f| {
                format!(
                    "executing {} from {} fails: {}",
                    self.interner.pa(f.fired),
                    self.configs[f.config],
                    f.reason
                )
            })
            .collect()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure — **deadlocks**: the program can neither proceed nor
    /// terminate from them. (A blocked pending async is not by itself a
    /// deadlock; some other pending async may still run.)
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter().map(|&id| &self.configs[id])
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.configs
            .iter()
            .filter(|c| c.is_terminal())
            .map(|c| &c.globals)
    }

    /// All steps `(before, fired, after)` of the explored graph.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        self.edges.iter().map(|e| Step {
            before: self.configs[e.from].clone(),
            fired: self.resolve_pa(e.fired),
            after: self.configs[e.to].clone(),
        })
    }

    /// Reconstructs one shortest execution from an initial configuration to
    /// `target`, or `None` when `target` is unreachable.
    #[must_use]
    pub fn execution_reaching(&self, target: &Config) -> Option<Execution> {
        let target_id = self.interner.find_config(target)?.index();
        // BFS over the recorded edges, remembering the incoming edge.
        let mut incoming: HashMap<usize, &Edge> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = self.initial.iter().copied().collect();
        let mut seen: std::collections::HashSet<usize> = self.initial.iter().copied().collect();
        let mut adjacency: HashMap<usize, Vec<&Edge>> = HashMap::new();
        for e in &self.edges {
            adjacency.entry(e.from).or_default().push(e);
        }
        while let Some(id) = queue.pop_front() {
            if id == target_id {
                break;
            }
            for e in adjacency.get(&id).into_iter().flatten() {
                if seen.insert(e.to) {
                    incoming.insert(e.to, e);
                    queue.push_back(e.to);
                }
            }
        }
        if !seen.contains(&target_id) {
            return None;
        }
        let mut steps = Vec::new();
        let mut cursor = target_id;
        while let Some(e) = incoming.get(&cursor) {
            steps.push(Step {
                before: self.configs[e.from].clone(),
                fired: self.resolve_pa(e.fired),
                after: self.configs[e.to].clone(),
            });
            cursor = e.from;
        }
        steps.reverse();
        Some(Execution { steps })
    }

    /// Enumerates terminating executions as step sequences, up to `limit`
    /// executions. Useful for the Fig. 2 rewriting demonstration; the number
    /// of interleavings explodes, so a limit is mandatory.
    #[must_use]
    pub fn terminating_executions(&self, limit: usize) -> Vec<Execution> {
        let mut out = Vec::new();
        let mut adjacency: HashMap<usize, Vec<&Edge>> = HashMap::new();
        for e in &self.edges {
            adjacency.entry(e.from).or_default().push(e);
        }
        for &start in &self.initial {
            let mut stack: Vec<(usize, Vec<Step>)> = vec![(start, Vec::new())];
            while let Some((id, path)) = stack.pop() {
                if out.len() >= limit {
                    return out;
                }
                let config = &self.configs[id];
                if config.is_terminal() {
                    out.push(Execution { steps: path });
                    continue;
                }
                // Cycles cannot occur on a terminating path twice with the
                // same config because each step consumes a PA or changes
                // state; still, guard against revisiting within one path.
                if let Some(edges) = adjacency.get(&id) {
                    for e in edges {
                        if path.len() >= self.configs.len() * 4 {
                            continue;
                        }
                        let mut next = path.clone();
                        next.push(Step {
                            before: self.configs[e.from].clone(),
                            fired: self.resolve_pa(e.fired),
                            after: self.configs[e.to].clone(),
                        });
                        stack.push((e.to, next));
                    }
                }
            }
        }
        out
    }
}

/// A finite execution: a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Execution {
    /// The first configuration of the execution.
    #[must_use]
    pub fn first(&self) -> Option<&Config> {
        self.steps.first().map(|s| &s.before)
    }

    /// The last configuration of the execution.
    #[must_use]
    pub fn last(&self) -> Option<&Config> {
        self.steps.last().map(|s| &s.after)
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the execution has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The summary of a program from one initialized configuration: whether it is
/// failure-free (`Good`) and the set of terminating global stores (`Trans`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// `true` iff no failing execution exists (`g·ℓ ∈ Good(P)`).
    pub good: bool,
    /// The final stores of terminating executions (`Trans(P)` restricted to
    /// the initial store).
    pub terminal: std::collections::BTreeSet<GlobalStore>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{counter_program, failing_program};
    use crate::value::Value;

    #[test]
    fn counter_reaches_two() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(!exp.has_failure());
        let terminals: Vec<_> = exp.terminal_stores().collect();
        assert!(!terminals.is_empty());
        for t in terminals {
            assert_eq!(t.get(0), &Value::Int(2));
        }
    }

    #[test]
    fn summary_of_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let s = Explorer::new(&p).summarize(init).unwrap();
        assert!(s.good);
        assert_eq!(s.terminal.len(), 1);
    }

    #[test]
    fn failing_program_is_detected() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(exp.has_failure());
        let reports = exp.failure_reports();
        assert!(reports.iter().any(|r| r.contains("assert false")));
    }

    #[test]
    fn budget_is_enforced() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = Explorer::new(&p).with_budget(1).explore([init]).unwrap_err();
        assert!(matches!(
            err,
            ExploreError::BudgetExceeded {
                limit: 1,
                visited
            } if visited > 1
        ));
    }

    #[test]
    fn deadlocks_are_detected() {
        use crate::action::{NativeAction, PendingAsync};
        use crate::program::{GlobalSchema, Program};
        // Main spawns a task that blocks forever.
        let mut b = Program::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![crate::action::Transition::new(
                    g.clone(),
                    crate::multiset::Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &crate::store::GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(exp.has_deadlock());
        assert_eq!(exp.deadlocked_configs().count(), 1);
        // The counter program has no deadlocks.
        let p = crate::demo::counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        assert!(!exp.has_deadlock());
    }

    #[test]
    fn terminating_executions_have_consistent_endpoints() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init.clone()]).unwrap();
        let execs = exp.terminating_executions(16);
        assert!(!execs.is_empty());
        for e in &execs {
            assert_eq!(e.first().unwrap(), &init);
            assert!(e.last().unwrap().is_terminal());
            for w in e.steps.windows(2) {
                assert_eq!(w[0].after, w[1].before, "steps must chain");
            }
        }
    }
}
