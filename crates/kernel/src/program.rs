//! Programs: finite maps from action names to gated atomic actions.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::action::{ActionName, ActionOutcome, ActionSemantics, PendingAsync};
use crate::config::Config;
use crate::error::KernelError;
use crate::store::GlobalStore;
use crate::value::Value;

/// The declaration of the global variables: an ordered list of names with an
/// index lookup. Shared (via `Arc`) between a program and all its stores'
/// pretty-printers.
#[derive(Debug, Clone, Default)]
pub struct GlobalSchema {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl GlobalSchema {
    /// Creates a schema from variable names, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if a name is declared twice.
    #[must_use]
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut schema = GlobalSchema::default();
        for name in names {
            let name = name.into();
            let idx = schema.names.len();
            let prev = schema.index.insert(name.clone(), idx);
            assert!(prev.is_none(), "duplicate global variable `{name}`");
            schema.names.push(name);
        }
        schema
    }

    /// Number of globals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no globals are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of the global with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The index of the global named `name`, if declared.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Iterates over the names in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// An asynchronous program: a finite mapping from action names to gated
/// atomic actions, with a dedicated `Main` entry action and a schema for the
/// global variables.
///
/// Programs are immutable; the refinement transformation `P[A ↦ a]` is the
/// functional update [`Program::with_action`].
#[derive(Debug, Clone)]
pub struct Program {
    schema: Arc<GlobalSchema>,
    actions: BTreeMap<ActionName, Arc<dyn ActionSemantics>>,
    main: ActionName,
}

impl Program {
    /// Starts building a program over the given global schema.
    #[must_use]
    pub fn builder(schema: GlobalSchema) -> ProgramBuilder {
        ProgramBuilder {
            schema: Arc::new(schema),
            actions: BTreeMap::new(),
            main: ActionName::new("Main"),
        }
    }

    /// The global variable schema.
    #[must_use]
    pub fn schema(&self) -> &Arc<GlobalSchema> {
        &self.schema
    }

    /// The entry action name (the paper's dedicated `Main`).
    #[must_use]
    pub fn main(&self) -> &ActionName {
        &self.main
    }

    /// Looks up an action by name.
    pub fn action(&self, name: &ActionName) -> Result<&Arc<dyn ActionSemantics>, KernelError> {
        self.actions
            .get(name)
            .ok_or_else(|| KernelError::UnknownAction(name.clone()))
    }

    /// Whether the program defines `name`.
    #[must_use]
    pub fn defines(&self, name: &ActionName) -> bool {
        self.actions.contains_key(name)
    }

    /// Iterates over `(name, action)` pairs in name order.
    pub fn actions(&self) -> impl Iterator<Item = (&ActionName, &Arc<dyn ActionSemantics>)> {
        self.actions.iter()
    }

    /// Action names in name order.
    pub fn action_names(&self) -> impl Iterator<Item = &ActionName> {
        self.actions.keys()
    }

    /// Runs every action's [`ActionSemantics::prepare`] hook, so one-time
    /// setup (e.g. compiling to bytecode) happens before hot loops instead of
    /// on first evaluation. Idempotent.
    pub fn prepare_actions(&self) {
        for action in self.actions.values() {
            action.prepare();
        }
    }

    /// Execution counters summed over all actions.
    #[must_use]
    pub fn exec_stats(&self) -> crate::action::ExecStats {
        self.actions
            .values()
            .fold(crate::action::ExecStats::default(), |acc, a| {
                acc.merged(a.exec_stats())
            })
    }

    /// The functional update `P[name ↦ action]` used by refinement steps
    /// (Proposition 3.3) and by the IS transformation itself.
    #[must_use]
    pub fn with_action(
        &self,
        name: impl Into<ActionName>,
        action: Arc<dyn ActionSemantics>,
    ) -> Self {
        let mut next = self.clone();
        next.actions.insert(name.into(), action);
        next
    }

    /// Removes an action (used when eliminated actions disappear from the
    /// pool after an IS application, §5.3).
    #[must_use]
    pub fn without_action(&self, name: &ActionName) -> Self {
        let mut next = self.clone();
        next.actions.remove(name);
        next
    }

    /// Evaluates one pending async against this program.
    pub fn eval_pa(
        &self,
        globals: &GlobalStore,
        pa: &PendingAsync,
    ) -> Result<ActionOutcome, KernelError> {
        let action = self.action(&pa.action)?;
        if action.arity() != pa.args.len() {
            return Err(KernelError::ArityMismatch {
                action: pa.action.clone(),
                expected: action.arity(),
                found: pa.args.len(),
            });
        }
        Ok(action.eval(globals, &pa.args))
    }

    /// Builds the initialized configuration `(g, {(ℓ, Main)})` for the given
    /// `Main` arguments, with globals taken from `initial_globals`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::SchemaMismatch`] when the store length differs
    /// from the schema and [`KernelError::ArityMismatch`] when the argument
    /// count differs from `Main`'s arity.
    pub fn initial_config_with(
        &self,
        initial_globals: GlobalStore,
        main_args: Vec<Value>,
    ) -> Result<Config, KernelError> {
        if initial_globals.len() != self.schema.len() {
            return Err(KernelError::SchemaMismatch {
                expected: self.schema.len(),
                found: initial_globals.len(),
            });
        }
        let main = self.action(&self.main)?;
        if main.arity() != main_args.len() {
            return Err(KernelError::ArityMismatch {
                action: self.main.clone(),
                expected: main.arity(),
                found: main_args.len(),
            });
        }
        Ok(Config::initialized(
            initial_globals,
            PendingAsync::new(self.main.clone(), main_args),
        ))
    }

    /// Like [`initial_config_with`](Self::initial_config_with) but with all
    /// globals defaulting to [`Value::Unit`]; convenient when `Main`
    /// initialises every global itself.
    pub fn initial_config(&self, main_args: Vec<Value>) -> Result<Config, KernelError> {
        let store = GlobalStore::new(vec![Value::Unit; self.schema.len()]);
        self.initial_config_with(store, main_args)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program(main = {}, actions = [", self.main)?;
        for (i, name) in self.actions.keys().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "])")
    }
}

/// Builder for [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    schema: Arc<GlobalSchema>,
    actions: BTreeMap<ActionName, Arc<dyn ActionSemantics>>,
    main: ActionName,
}

impl ProgramBuilder {
    /// Registers an action under `name`.
    pub fn action(
        &mut self,
        name: impl Into<ActionName>,
        action: impl ActionSemantics + 'static,
    ) -> &mut Self {
        self.actions.insert(name.into(), Arc::new(action));
        self
    }

    /// Registers an already-shared action under `name`.
    pub fn action_arc(
        &mut self,
        name: impl Into<ActionName>,
        action: Arc<dyn ActionSemantics>,
    ) -> &mut Self {
        self.actions.insert(name.into(), action);
        self
    }

    /// Overrides the entry action name (defaults to `Main`).
    pub fn main(&mut self, name: impl Into<ActionName>) -> &mut Self {
        self.main = name.into();
        self
    }

    /// Finishes the program.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::MissingMain`] if the entry action is undefined
    /// and [`KernelError::UnknownAction`] never (construction validates only
    /// the entry; dangling PAs surface during exploration).
    pub fn build(&mut self) -> Result<Program, KernelError> {
        if !self.actions.contains_key(&self.main) {
            return Err(KernelError::MissingMain);
        }
        Ok(Program {
            schema: Arc::clone(&self.schema),
            actions: self.actions.clone(),
            main: self.main.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{NativeAction, Transition};

    fn skip_action() -> NativeAction {
        NativeAction::new("Skip", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
        })
    }

    #[test]
    fn schema_lookup() {
        let s = GlobalSchema::new(["x", "y"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("y"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.name(0), "x");
    }

    #[test]
    #[should_panic(expected = "duplicate global")]
    fn schema_rejects_duplicates() {
        let _ = GlobalSchema::new(["x", "x"]);
    }

    #[test]
    fn builder_requires_main() {
        let err = Program::builder(GlobalSchema::default())
            .build()
            .unwrap_err();
        assert_eq!(err, KernelError::MissingMain);
    }

    #[test]
    fn with_action_is_functional_update() {
        let p = {
            let mut b = Program::builder(GlobalSchema::default());
            b.action("Main", skip_action());
            b.build().unwrap()
        };
        let p2 = p.with_action("Other", Arc::new(skip_action()) as Arc<dyn ActionSemantics>);
        assert!(!p.defines(&"Other".into()));
        assert!(p2.defines(&"Other".into()));
        let p3 = p2.without_action(&"Other".into());
        assert!(!p3.defines(&"Other".into()));
    }

    #[test]
    fn initial_config_checks_schema_and_arity() {
        let p = {
            let mut b = Program::builder(GlobalSchema::new(["x"]));
            b.action("Main", skip_action());
            b.build().unwrap()
        };
        let err = p
            .initial_config_with(GlobalStore::new(vec![]), vec![])
            .unwrap_err();
        assert!(matches!(err, KernelError::SchemaMismatch { .. }));
        let err = p.initial_config(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, KernelError::ArityMismatch { .. }));
        let ok = p.initial_config(vec![]).unwrap();
        assert_eq!(ok.pending.len(), 1);
    }
}
