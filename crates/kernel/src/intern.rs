//! Hash-consed interning of exploration state.
//!
//! Explicit-state exploration spends its time asking one question — *have I
//! seen this configuration before?* — and answering it over tree-structured
//! data (`Value` trees inside a [`GlobalStore`], a `BTreeMap`-backed
//! [`Multiset`] of [`PendingAsync`]s) costs a deep hash plus a deep
//! comparison per candidate. The [`Interner`] replaces that with *hash
//! consing*: every distinct value, store, pending async, pending bag, and
//! configuration is placed in an append-only arena exactly once and named by
//! a dense `u32` id. Because insertion deduplicates structurally, the map
//! from id to object is injective, so **id equality is structural equality**
//! and comparing or hashing interned state is O(1).
//!
//! Layering (each level's key is a sequence of ids from the level below, so
//! injectivity lifts inductively):
//!
//! * [`ValueId`] — one arena entry per distinct [`Value`] tree (slot values
//!   of stores). Deduplicated by full-tree hash + equality, paid once per
//!   *distinct* value ever seen, not once per transition.
//! * [`StoreId`] — a [`GlobalStore`] keyed by its `Vec<ValueId>` slot
//!   vector. Successor stores are interned from their parent's slot vector
//!   plus the action's write set, so unchanged slots are never re-hashed —
//!   this is where structural sharing replaces the per-transition deep
//!   clone.
//! * [`PaId`] — one entry per distinct [`PendingAsync`].
//! * [`BagId`] — a pending multiset as a `Vec<(PaId, count)>` sorted by the
//!   *resolved* pending-async order, which keeps iteration order identical
//!   to `Multiset::distinct()` while successor bags are produced by a
//!   small-diff rebuild (copy parent entries, decrement the consumed async,
//!   merge the created ones) instead of cloning a `BTreeMap`.
//! * [`ConfigId`] — a configuration as the pair `(StoreId, BagId)`; the
//!   explorer's visited set is just this arena, and membership is a probe
//!   over two `u32`s.
//!
//! Arenas grow append-only and ids are never invalidated, so resolved
//! references (`&Value`, `&GlobalStore`, `&PendingAsync`) stay valid for the
//! interner's lifetime. Concurrency story: the interner is deliberately
//! *not* shared-mutable — the parallel engine gives each shard its own
//! interner and translates at migration by re-interning the (resolved)
//! configuration at the receiving shard, which preserves the sequential
//! explorer's results without any cross-thread id coordination (see
//! DESIGN.md).

use std::hash::Hasher;

use crate::action::PendingAsync;
use crate::config::Config;
use crate::hash::{fx_hash, FxHasher};
use crate::multiset::Multiset;
use crate::store::GlobalStore;
use crate::value::Value;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// The id as a dense array index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw dense id (crate-internal: the concurrent interner
            /// allocates and decodes ids across modules).
            #[allow(dead_code)] // not every id kind crosses modules
            pub(crate) fn raw(self) -> u32 {
                self.0
            }

            /// Wraps a raw dense id (crate-internal counterpart of
            /// [`raw`](Self::raw)).
            #[allow(dead_code)]
            pub(crate) fn from_raw(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// The id of an interned [`Value`].
    ValueId
);
id_type!(
    /// The id of an interned [`GlobalStore`].
    StoreId
);
id_type!(
    /// The id of an interned [`PendingAsync`].
    PaId
);
id_type!(
    /// The id of an interned argument list (used by evaluation memos).
    ArgsId
);
id_type!(
    /// The id of an interned pending-async multiset.
    BagId
);
id_type!(
    /// The id of an interned configuration `(g, Ω)`.
    ConfigId
);

/// An open-addressing table from precomputed hashes to arena ids: `(hash,
/// id + 1)` per slot, 0 marking empty. The arena owns the objects; the
/// table only resolves hash → candidate ids, with the caller supplying the
/// equality check (so a collision costs a comparison, never a wrong id).
/// Crate-visible: the concurrent interner reuses it as the per-shard dedup
/// index (one table per shard, each behind its own short lock).
#[derive(Debug, Clone)]
pub(crate) struct IdTable {
    slots: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl IdTable {
    const INITIAL_SLOTS: usize = 64;

    pub(crate) fn new() -> Self {
        IdTable {
            slots: vec![(0, 0); Self::INITIAL_SLOTS],
            mask: Self::INITIAL_SLOTS - 1,
            len: 0,
        }
    }

    pub(crate) fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut slot = (hash as usize) & self.mask;
        loop {
            let (h, idx1) = self.slots[slot];
            if idx1 == 0 {
                return None;
            }
            if h == hash && eq(idx1 - 1) {
                return Some(idx1 - 1);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts a fresh id (the caller has verified absence via [`find`]).
    pub(crate) fn insert(&mut self, hash: u64, id: u32) {
        let mut slot = (hash as usize) & self.mask;
        while self.slots[slot].1 != 0 {
            slot = (slot + 1) & self.mask;
        }
        self.slots[slot] = (hash, id + 1);
        self.len += 1;
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); cap]);
        self.mask = cap - 1;
        for (h, idx1) in old {
            if idx1 != 0 {
                let mut slot = (h as usize) & self.mask;
                while self.slots[slot].1 != 0 {
                    slot = (slot + 1) & self.mask;
                }
                self.slots[slot] = (h, idx1);
            }
        }
    }
}

pub(crate) fn hash_value_ids(ids: &[ValueId]) -> u64 {
    let mut h = FxHasher::default();
    for id in ids {
        h.write_u32(id.0);
    }
    h.finish()
}

pub(crate) fn hash_bag_entries(entries: &[(PaId, u32)]) -> u64 {
    let mut h = FxHasher::default();
    for (p, c) in entries {
        h.write_u32(p.0);
        h.write_u32(*c);
    }
    h.finish()
}

pub(crate) fn hash_config_parts(store: StoreId, bag: BagId) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(store.0);
    h.write_u32(bag.0);
    h.finish()
}

fn next_id(len: usize, what: &str) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| panic!("{what} arena exceeds u32 capacity"))
}

/// How [`Interner::finish_store`] materializes a fresh store.
enum StoreMiss<'a> {
    /// Clone the given store.
    Clone(&'a GlobalStore),
    /// Clone the parent store and apply the write-delta.
    Overlay(StoreId, &'a [(usize, Value)]),
}

/// The append-only, hash-consed arenas (see the module docs for the id
/// scheme and the sharing argument).
///
/// # Struct-of-arrays id storage
///
/// The hot-loop data — store slot-id vectors and bag entry vectors — is kept
/// in *flat* arrays rather than one heap allocation per store/bag: store
/// slot ids live in a single dense `Vec<ValueId>` and bag entries in one
/// `Vec<(PaId, u32)>`, each addressed through per-object `(offset, len)`
/// spans. Walking a store's slot ids or a bag's entries is then a bounds
/// check into a dense array the prefetcher already has, instead of a pointer
/// chase to a separate allocation per object — which is what the explorer's
/// successor loop does for every transition.
#[derive(Debug, Clone)]
pub struct Interner {
    values: Vec<Value>,
    value_table: IdTable,
    stores: Vec<GlobalStore>,
    /// All interned stores' slot ids, flattened; spans index it.
    store_keys: Vec<ValueId>,
    /// Per-store `(offset, len)` into `store_keys`.
    store_spans: Vec<(u32, u32)>,
    store_table: IdTable,
    pas: Vec<PendingAsync>,
    pa_table: IdTable,
    args_lists: Vec<Vec<Value>>,
    args_table: IdTable,
    /// All interned bags' canonical entries, flattened; spans index it.
    bag_data: Vec<(PaId, u32)>,
    /// Per-bag `(offset, len)` into `bag_data`.
    bag_spans: Vec<(u32, u32)>,
    bag_table: IdTable,
    configs: Vec<(StoreId, BagId)>,
    config_table: IdTable,
    /// Reusable slot-vector buffer for store interning.
    scratch_slots: Vec<ValueId>,
    /// Reusable entry buffer for bag interning.
    scratch_bag: Vec<(PaId, u32)>,
    /// Configuration interning attempts that found an existing id (a
    /// duplicate configuration was deduplicated instead of re-explored).
    config_hits: u64,
    /// Configuration interning attempts that allocated a fresh id.
    config_misses: u64,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner {
            values: Vec::new(),
            value_table: IdTable::new(),
            stores: Vec::new(),
            store_keys: Vec::new(),
            store_spans: Vec::new(),
            store_table: IdTable::new(),
            pas: Vec::new(),
            pa_table: IdTable::new(),
            args_lists: Vec::new(),
            args_table: IdTable::new(),
            bag_data: Vec::new(),
            bag_spans: Vec::new(),
            bag_table: IdTable::new(),
            configs: Vec::new(),
            config_table: IdTable::new(),
            scratch_slots: Vec::new(),
            scratch_bag: Vec::new(),
            config_hits: 0,
            config_misses: 0,
        }
    }

    // ----- values -----------------------------------------------------

    /// Interns a value; the tree is cloned only the first time it is seen.
    pub fn intern_value(&mut self, v: &Value) -> ValueId {
        let hash = fx_hash(v);
        let values = &self.values;
        if let Some(id) = self.value_table.find(hash, |id| values[id as usize] == *v) {
            return ValueId(id);
        }
        let id = next_id(self.values.len(), "value");
        self.values.push(v.clone());
        self.value_table.insert(hash, id);
        ValueId(id)
    }

    /// Read-only probe: the id of `v` if it has been interned.
    #[must_use]
    pub fn find_value(&self, v: &Value) -> Option<ValueId> {
        let values = &self.values;
        self.value_table
            .find(fx_hash(v), |id| values[id as usize] == *v)
            .map(ValueId)
    }

    /// Resolves an interned value.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of distinct interned values.
    #[must_use]
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    // ----- stores -----------------------------------------------------

    /// Interns a global store by interning every slot value.
    pub fn intern_store(&mut self, store: &GlobalStore) -> StoreId {
        self.scratch_slots.clear();
        for v in store.iter() {
            let id = self.intern_value(v);
            self.scratch_slots.push(id);
        }
        self.finish_store(StoreMiss::Clone(store))
    }

    /// Interns the successor of `parent` whose post-state is `new`,
    /// re-examining only the slots in `writes` (the action's footprint
    /// contract guarantees all other slots are unchanged); `None` means the
    /// action is opaque and every slot is compared. Unchanged slots reuse
    /// the parent's value ids without hashing anything.
    pub fn intern_store_diff(
        &mut self,
        parent: StoreId,
        new: &GlobalStore,
        writes: Option<&[usize]>,
    ) -> StoreId {
        {
            let (off, len) = self.store_spans[parent.index()];
            let (scratch, keys) = (&mut self.scratch_slots, &self.store_keys);
            scratch.clear();
            scratch.extend_from_slice(&keys[off as usize..(off + len) as usize]);
        }
        match writes {
            Some(ws) => {
                for &i in ws {
                    self.update_slot(i, new.get(i));
                }
            }
            None => {
                for (i, v) in new.iter().enumerate() {
                    self.update_slot(i, v);
                }
            }
        }
        self.finish_store(StoreMiss::Clone(new))
    }

    /// Like [`intern_store_diff`](Self::intern_store_diff) for a successor
    /// described as parent plus a write-delta (the memoized-evaluation
    /// path); the post-store is materialized only if it turns out fresh.
    pub fn intern_store_writes(&mut self, parent: StoreId, writes: &[(usize, Value)]) -> StoreId {
        {
            let (off, len) = self.store_spans[parent.index()];
            let (scratch, keys) = (&mut self.scratch_slots, &self.store_keys);
            scratch.clear();
            scratch.extend_from_slice(&keys[off as usize..(off + len) as usize]);
        }
        for (i, v) in writes {
            self.update_slot(*i, v);
        }
        self.finish_store(StoreMiss::Overlay(parent, writes))
    }

    fn update_slot(&mut self, i: usize, v: &Value) {
        let cur = self.scratch_slots[i];
        if self.values[cur.index()] == *v {
            return;
        }
        let id = self.intern_value(v);
        self.scratch_slots[i] = id;
    }

    fn finish_store(&mut self, miss: StoreMiss<'_>) -> StoreId {
        let hash = hash_value_ids(&self.scratch_slots);
        {
            let (spans, keys, scratch) = (&self.store_spans, &self.store_keys, &self.scratch_slots);
            if let Some(id) = self.store_table.find(hash, |id| {
                let (off, len) = spans[id as usize];
                keys[off as usize..(off + len) as usize] == **scratch
            }) {
                return StoreId(id);
            }
        }
        let store = match miss {
            StoreMiss::Clone(g) => g.clone(),
            StoreMiss::Overlay(parent, writes) => {
                let mut g = self.stores[parent.index()].clone();
                for (i, v) in writes {
                    g.set(*i, v.clone());
                }
                g
            }
        };
        let id = next_id(self.stores.len(), "store");
        let off = u32::try_from(self.store_keys.len()).expect("store arena exceeds u32 capacity");
        let len = u32::try_from(self.scratch_slots.len()).expect("store exceeds u32 slots");
        self.stores.push(store);
        self.store_keys.extend_from_slice(&self.scratch_slots);
        self.store_spans.push((off, len));
        self.store_table.insert(hash, id);
        StoreId(id)
    }

    /// Read-only probe: the id of `store` if it has been interned.
    #[must_use]
    pub fn find_store(&self, store: &GlobalStore) -> Option<StoreId> {
        let mut key = Vec::with_capacity(store.len());
        for v in store.iter() {
            key.push(self.find_value(v)?);
        }
        let (spans, keys) = (&self.store_spans, &self.store_keys);
        self.store_table
            .find(hash_value_ids(&key), |id| {
                let (off, len) = spans[id as usize];
                keys[off as usize..(off + len) as usize] == key[..]
            })
            .map(StoreId)
    }

    /// Resolves an interned store.
    #[must_use]
    pub fn store(&self, id: StoreId) -> &GlobalStore {
        &self.stores[id.index()]
    }

    /// The slot-value ids of an interned store, in schema order — a slice of
    /// the flat struct-of-arrays key storage.
    #[must_use]
    pub fn store_slots(&self, id: StoreId) -> &[ValueId] {
        let (off, len) = self.store_spans[id.index()];
        &self.store_keys[off as usize..(off + len) as usize]
    }

    /// Number of distinct interned stores.
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    // ----- pending asyncs ---------------------------------------------

    /// Interns a pending async.
    pub fn intern_pa(&mut self, pa: &PendingAsync) -> PaId {
        let hash = fx_hash(pa);
        let pas = &self.pas;
        if let Some(id) = self.pa_table.find(hash, |id| pas[id as usize] == *pa) {
            return PaId(id);
        }
        let id = next_id(self.pas.len(), "pending-async");
        self.pas.push(pa.clone());
        self.pa_table.insert(hash, id);
        PaId(id)
    }

    /// Read-only probe: the id of `pa` if it has been interned.
    #[must_use]
    pub fn find_pa(&self, pa: &PendingAsync) -> Option<PaId> {
        let pas = &self.pas;
        self.pa_table
            .find(fx_hash(pa), |id| pas[id as usize] == *pa)
            .map(PaId)
    }

    /// Resolves an interned pending async.
    #[must_use]
    pub fn pa(&self, id: PaId) -> &PendingAsync {
        &self.pas[id.index()]
    }

    /// Number of distinct interned pending asyncs.
    #[must_use]
    pub fn pa_count(&self) -> usize {
        self.pas.len()
    }

    // ----- argument lists ---------------------------------------------

    /// Interns an argument list (the `ℓ` of an evaluation memo key).
    pub fn intern_args(&mut self, args: &[Value]) -> ArgsId {
        let hash = fx_hash(args);
        let lists = &self.args_lists;
        if let Some(id) = self.args_table.find(hash, |id| lists[id as usize] == args) {
            return ArgsId(id);
        }
        let id = next_id(self.args_lists.len(), "argument-list");
        self.args_lists.push(args.to_vec());
        self.args_table.insert(hash, id);
        ArgsId(id)
    }

    /// Resolves an interned argument list.
    #[must_use]
    pub fn args(&self, id: ArgsId) -> &[Value] {
        &self.args_lists[id.index()]
    }

    // ----- pending bags -----------------------------------------------

    /// Interns a pending multiset as canonical `(PaId, count)` entries.
    pub fn intern_bag(&mut self, bag: &Multiset<PendingAsync>) -> BagId {
        self.scratch_bag.clear();
        for (pa, count) in bag.iter_counts() {
            let id = self.intern_pa(pa);
            self.scratch_bag
                .push((id, u32::try_from(count).expect("count exceeds u32")));
        }
        self.finish_bag()
    }

    /// Interns the successor bag `parent ∖ {consumed} ⊎ created` by a
    /// small-diff rebuild of the parent's entry vector — no `BTreeMap` is
    /// cloned and untouched entries keep their interned ids.
    ///
    /// # Panics
    ///
    /// Panics if `consumed` does not occur in `parent` (an explorer bug).
    pub fn bag_after(
        &mut self,
        parent: BagId,
        consumed: PaId,
        created: &Multiset<PendingAsync>,
    ) -> BagId {
        {
            let (off, len) = self.bag_spans[parent.index()];
            let (scratch, bags) = (&mut self.scratch_bag, &self.bag_data);
            scratch.clear();
            scratch.extend_from_slice(&bags[off as usize..(off + len) as usize]);
            let pos = scratch
                .iter()
                .position(|&(p, _)| p == consumed)
                .expect("consumed pending async must occur in the parent bag");
            if scratch[pos].1 > 1 {
                scratch[pos].1 -= 1;
            } else {
                scratch.remove(pos);
            }
        }
        for (pa, count) in created.iter_counts() {
            let pid = self.intern_pa(pa);
            let (scratch, pas) = (&mut self.scratch_bag, &self.pas);
            // Entries are kept sorted by the resolved pending-async order
            // (the same order `Multiset` iterates in).
            match scratch.binary_search_by(|&(p, _)| pas[p.index()].cmp(pa)) {
                Ok(pos) => scratch[pos].1 += u32::try_from(count).expect("count exceeds u32"),
                Err(pos) => {
                    scratch.insert(pos, (pid, u32::try_from(count).expect("count exceeds u32")));
                }
            }
        }
        self.finish_bag()
    }

    fn finish_bag(&mut self) -> BagId {
        let hash = hash_bag_entries(&self.scratch_bag);
        {
            let (spans, bags, scratch) = (&self.bag_spans, &self.bag_data, &self.scratch_bag);
            if let Some(id) = self.bag_table.find(hash, |id| {
                let (off, len) = spans[id as usize];
                bags[off as usize..(off + len) as usize] == **scratch
            }) {
                return BagId(id);
            }
        }
        let id = next_id(self.bag_spans.len(), "bag");
        let off = u32::try_from(self.bag_data.len()).expect("bag arena exceeds u32 capacity");
        let len = u32::try_from(self.scratch_bag.len()).expect("bag exceeds u32 entries");
        self.bag_data.extend_from_slice(&self.scratch_bag);
        self.bag_spans.push((off, len));
        self.bag_table.insert(hash, id);
        BagId(id)
    }

    /// Read-only probe: the id of `bag` if it has been interned.
    #[must_use]
    pub fn find_bag(&self, bag: &Multiset<PendingAsync>) -> Option<BagId> {
        let mut entries = Vec::with_capacity(bag.distinct_len());
        for (pa, count) in bag.iter_counts() {
            entries.push((self.find_pa(pa)?, u32::try_from(count).ok()?));
        }
        let (spans, bags) = (&self.bag_spans, &self.bag_data);
        self.bag_table
            .find(hash_bag_entries(&entries), |id| {
                let (off, len) = spans[id as usize];
                bags[off as usize..(off + len) as usize] == entries[..]
            })
            .map(BagId)
    }

    /// The canonical `(PaId, count)` entries of an interned bag, sorted by
    /// the resolved pending-async order — a slice of the flat
    /// struct-of-arrays entry storage.
    #[must_use]
    pub fn bag_entries(&self, id: BagId) -> &[(PaId, u32)] {
        let (off, len) = self.bag_spans[id.index()];
        &self.bag_data[off as usize..(off + len) as usize]
    }

    /// Rebuilds the [`Multiset`] an interned bag denotes.
    #[must_use]
    pub fn resolve_bag(&self, id: BagId) -> Multiset<PendingAsync> {
        let mut out = Multiset::new();
        for &(p, c) in self.bag_entries(id) {
            out.insert_n(self.pas[p.index()].clone(), c as usize);
        }
        out
    }

    /// Number of distinct interned bags.
    #[must_use]
    pub fn bag_count(&self) -> usize {
        self.bag_spans.len()
    }

    // ----- configurations ---------------------------------------------

    /// Interns a configuration from already-interned parts; returns the id
    /// and whether it was fresh.
    pub fn intern_config_parts(&mut self, store: StoreId, bag: BagId) -> (ConfigId, bool) {
        let hash = hash_config_parts(store, bag);
        let configs = &self.configs;
        if let Some(id) = self
            .config_table
            .find(hash, |id| configs[id as usize] == (store, bag))
        {
            self.config_hits += 1;
            return (ConfigId(id), false);
        }
        self.config_misses += 1;
        let id = next_id(self.configs.len(), "config");
        self.configs.push((store, bag));
        self.config_table.insert(hash, id);
        (ConfigId(id), true)
    }

    /// Interns a configuration; returns the id and whether it was fresh.
    pub fn intern_config(&mut self, config: &Config) -> (ConfigId, bool) {
        let store = self.intern_store(&config.globals);
        let bag = self.intern_bag(&config.pending);
        self.intern_config_parts(store, bag)
    }

    /// Read-only probe: the id of `config` if it has been interned.
    #[must_use]
    pub fn find_config(&self, config: &Config) -> Option<ConfigId> {
        let store = self.find_store(&config.globals)?;
        let bag = self.find_bag(&config.pending)?;
        let configs = &self.configs;
        self.config_table
            .find(hash_config_parts(store, bag), |id| {
                configs[id as usize] == (store, bag)
            })
            .map(ConfigId)
    }

    /// The `(store, bag)` parts of an interned configuration.
    #[must_use]
    pub fn config_parts(&self, id: ConfigId) -> (StoreId, BagId) {
        self.configs[id.index()]
    }

    /// Rebuilds the [`Config`] an interned configuration denotes.
    #[must_use]
    pub fn resolve_config(&self, id: ConfigId) -> Config {
        let (store, bag) = self.config_parts(id);
        Config::new(self.stores[store.index()].clone(), self.resolve_bag(bag))
    }

    /// Number of distinct interned configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// The configuration ids in interning order (dense `0..config_count()`).
    pub fn config_ids(&self) -> impl Iterator<Item = ConfigId> + '_ {
        (0..self.configs.len()).map(|i| ConfigId(i as u32))
    }

    /// The id of the `index`-th interned configuration.
    ///
    /// # Panics
    ///
    /// Panics when `index >= config_count()`.
    #[must_use]
    pub fn config_id(&self, index: usize) -> ConfigId {
        assert!(index < self.configs.len(), "config index out of range");
        ConfigId(index as u32)
    }

    /// Configuration dedup effectiveness: how many `intern_config*` calls
    /// found an existing id (hits) vs. allocated a fresh one (misses).
    ///
    /// Observability data only — never consulted by the interner itself.
    #[must_use]
    pub fn intern_stats(&self) -> inseq_obs::HitMissSnapshot {
        inseq_obs::HitMissSnapshot::new(self.config_hits, self.config_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PendingAsync;

    fn store(vals: Vec<Value>) -> GlobalStore {
        GlobalStore::new(vals)
    }

    #[test]
    fn value_ids_are_canonical() {
        let mut i = Interner::new();
        let a = i.intern_value(&Value::Int(7));
        let b = i.intern_value(&Value::Int(7));
        let c = i.intern_value(&Value::Int(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.value(a), &Value::Int(7));
        assert_eq!(i.value_count(), 2);
        assert_eq!(i.find_value(&Value::Int(8)), Some(c));
        assert_eq!(i.find_value(&Value::Int(9)), None);
    }

    #[test]
    fn store_ids_are_canonical_and_diff_reuses_slots() {
        let mut i = Interner::new();
        let g1 = store(vec![Value::Int(1), Value::Int(2)]);
        let s1 = i.intern_store(&g1);
        assert_eq!(i.intern_store(&g1), s1);
        // A successor writing slot 1 shares slot 0's value id.
        let g2 = store(vec![Value::Int(1), Value::Int(3)]);
        let s2 = i.intern_store_diff(s1, &g2, Some(&[1]));
        assert_ne!(s1, s2);
        assert_eq!(i.store(s2), &g2);
        assert_eq!(i.store_slots(s1)[0], i.store_slots(s2)[0]);
        // An unchanged "successor" resolves to the parent id.
        let s3 = i.intern_store_diff(s1, &g1, Some(&[]));
        assert_eq!(s3, s1);
        // Write-delta interning materializes the same store.
        let s4 = i.intern_store_writes(s1, &[(1, Value::Int(3))]);
        assert_eq!(s4, s2);
    }

    #[test]
    fn bag_after_matches_multiset_semantics() {
        let mut i = Interner::new();
        let a = PendingAsync::new("A", vec![Value::Int(1)]);
        let b = PendingAsync::new("B", vec![]);
        let c = PendingAsync::new("C", vec![]);
        let bag: Multiset<PendingAsync> = [a.clone(), a.clone(), b.clone()].into_iter().collect();
        let bid = i.intern_bag(&bag);
        assert_eq!(i.resolve_bag(bid), bag);
        let pa_a = i.intern_pa(&a);
        let created: Multiset<PendingAsync> = [c.clone(), b.clone()].into_iter().collect();
        let next = i.bag_after(bid, pa_a, &created);
        let expected = bag.without(&a).unwrap().union(&created);
        assert_eq!(i.resolve_bag(next), expected);
        // Interning the expected multiset directly yields the same id.
        assert_eq!(i.intern_bag(&expected), next);
        // Entries stay sorted in multiset iteration order.
        let resolved: Vec<_> = i
            .bag_entries(next)
            .iter()
            .map(|&(p, _)| i.pa(p).clone())
            .collect();
        let direct: Vec<_> = expected.distinct().cloned().collect();
        assert_eq!(resolved, direct);
    }

    #[test]
    fn config_ids_dedup_and_probe() {
        let mut i = Interner::new();
        let g = store(vec![Value::Int(1)]);
        let bag = Multiset::singleton(PendingAsync::new("A", vec![]));
        let c1 = Config::new(g.clone(), bag.clone());
        let (id1, fresh1) = i.intern_config(&c1);
        assert!(fresh1);
        let (id2, fresh2) = i.intern_config(&c1);
        assert!(!fresh2);
        assert_eq!(id1, id2);
        assert_eq!(i.resolve_config(id1), c1);
        assert_eq!(i.find_config(&c1), Some(id1));
        let other = Config::new(g, Multiset::new());
        assert_eq!(i.find_config(&other), None);
    }

    #[test]
    fn tables_survive_growth() {
        let mut i = Interner::new();
        let ids: Vec<ValueId> = (0..1000).map(|n| i.intern_value(&Value::Int(n))).collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.find_value(&Value::Int(n as i64)), Some(*id));
        }
        assert_eq!(i.value_count(), 1000);
    }

    #[test]
    fn args_lists_are_canonical() {
        let mut i = Interner::new();
        let a = i.intern_args(&[Value::Int(1), Value::Bool(true)]);
        let b = i.intern_args(&[Value::Int(1), Value::Bool(true)]);
        let c = i.intern_args(&[Value::Int(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.args(a), &[Value::Int(1), Value::Bool(true)]);
    }
}
