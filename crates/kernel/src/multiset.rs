//! Finite multisets (bags), used both for message channels and for the
//! pending-async component `Ω` of configurations.

use std::collections::BTreeMap;
use std::fmt;

/// A finite multiset over a totally ordered element type.
///
/// The representation maps each element to its (strictly positive)
/// multiplicity, so two multisets compare equal exactly when they contain the
/// same elements the same number of times — the canonicity needed for
/// explicit-state deduplication of configurations.
///
/// # Example
///
/// ```
/// use inseq_kernel::Multiset;
///
/// let mut bag: Multiset<i32> = [1, 2, 2].into_iter().collect();
/// assert_eq!(bag.len(), 3);
/// assert_eq!(bag.count(&2), 2);
/// bag.remove_one(&2);
/// assert_eq!(bag.count(&2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
    len: usize,
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
            len: 0,
        }
    }

    /// Creates a multiset containing a single element.
    #[must_use]
    pub fn singleton(item: T) -> Self {
        let mut ms = Multiset::new();
        ms.insert(item);
        ms
    }

    /// Total number of elements, counting multiplicity.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the multiset contains no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements.
    #[must_use]
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of `item` (zero when absent).
    #[must_use]
    pub fn count(&self, item: &T) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Whether `item` occurs at least once.
    #[must_use]
    pub fn contains(&self, item: &T) -> bool {
        self.counts.contains_key(item)
    }

    /// Inserts one occurrence of `item`.
    pub fn insert(&mut self, item: T) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.len += 1;
    }

    /// Inserts `n` occurrences of `item` with a single map lookup. A no-op
    /// when `n` is zero (multiplicities stay strictly positive).
    pub fn insert_n(&mut self, item: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += n;
        self.len += n;
    }

    /// Removes one occurrence of `item`; returns `true` if it was present.
    pub fn remove_one(&mut self, item: &T) -> bool {
        // One lookup covers both the decrement and the delete: take the
        // entry out, and re-insert (reusing the owned key) only when
        // occurrences remain.
        match self.counts.remove_entry(item) {
            Some((key, c)) => {
                if c > 1 {
                    self.counts.insert(key, c - 1);
                }
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Multiset union `self ⊎ other` (multiplicities add).
    #[must_use]
    pub fn union(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        out.extend(other.iter().cloned());
        out
    }

    /// `self` with one occurrence of `item` added (the paper's `(ℓ,A) ⊎ Ω`).
    #[must_use]
    pub fn with(&self, item: T) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        out.insert(item);
        out
    }

    /// `self` with one occurrence of `item` removed, or `None` if absent.
    #[must_use]
    pub fn without(&self, item: &T) -> Option<Self>
    where
        T: Clone,
    {
        let mut out = self.clone();
        if out.remove_one(item) {
            Some(out)
        } else {
            None
        }
    }

    /// Multiset difference: removes `other`'s occurrences where present.
    ///
    /// Returns `None` when `other ⊄ self` as multisets.
    #[must_use]
    pub fn checked_sub(&self, other: &Self) -> Option<Self>
    where
        T: Clone,
    {
        let mut out = self.clone();
        for item in other.iter() {
            if !out.remove_one(item) {
                return None;
            }
        }
        Some(out)
    }

    /// Whether every occurrence in `other` also occurs in `self`.
    #[must_use]
    pub fn includes(&self, other: &Self) -> bool {
        other.counts.iter().all(|(item, &c)| self.count(item) >= c)
    }

    /// Iterates over elements, repeating each according to its multiplicity.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.counts
            .iter()
            .flat_map(|(item, &c)| std::iter::repeat_n(item, c))
    }

    /// Iterates over `(element, multiplicity)` pairs.
    pub fn iter_counts(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(item, &c)| (item, c))
    }

    /// Iterates over the distinct elements.
    pub fn distinct(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Retains only elements satisfying the predicate.
    #[must_use]
    pub fn filter(&self, mut pred: impl FnMut(&T) -> bool) -> Self
    where
        T: Clone,
    {
        self.iter().filter(|t| pred(t)).cloned().collect()
    }
}

impl<T: Ord> Default for Multiset<T> {
    fn default() -> Self {
        Multiset::new()
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut ms = Multiset::new();
        ms.extend(iter);
        ms
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl<T: Ord + fmt::Display> fmt::Display for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{|")?;
        let mut first = true;
        for (item, c) in self.iter_counts() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "{item}")?;
            } else {
                write!(f, "{item} x{c}")?;
            }
        }
        write!(f, "|}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_count() {
        let mut ms = Multiset::new();
        ms.insert("a");
        ms.insert("a");
        ms.insert("b");
        assert_eq!(ms.len(), 3);
        assert_eq!(ms.distinct_len(), 2);
        assert_eq!(ms.count(&"a"), 2);
        assert_eq!(ms.count(&"c"), 0);
    }

    #[test]
    fn insert_n_adds_multiplicity_at_once() {
        let mut ms = Multiset::new();
        ms.insert_n('a', 3);
        ms.insert_n('a', 0);
        ms.insert_n('b', 1);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms.count(&'a'), 3);
        assert_eq!(ms.distinct_len(), 2);
    }

    #[test]
    fn remove_one_decrements_then_deletes() {
        let mut ms: Multiset<u8> = [5, 5].into_iter().collect();
        assert!(ms.remove_one(&5));
        assert_eq!(ms.count(&5), 1);
        assert!(ms.remove_one(&5));
        assert!(!ms.contains(&5));
        assert!(!ms.remove_one(&5));
        assert!(ms.is_empty());
    }

    #[test]
    fn union_adds_multiplicities() {
        let a: Multiset<u8> = [1, 2].into_iter().collect();
        let b: Multiset<u8> = [2, 3].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.count(&1), 1);
        assert_eq!(u.count(&2), 2);
        assert_eq!(u.count(&3), 1);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn checked_sub_and_includes() {
        let a: Multiset<u8> = [1, 2, 2, 3].into_iter().collect();
        let b: Multiset<u8> = [2, 3].into_iter().collect();
        assert!(a.includes(&b));
        let d = a.checked_sub(&b).unwrap();
        assert_eq!(d, [1, 2].into_iter().collect());
        assert!(b.checked_sub(&a).is_none());
        assert!(!b.includes(&a));
    }

    #[test]
    fn with_and_without_are_functional() {
        let a: Multiset<u8> = [9].into_iter().collect();
        let b = a.with(9);
        assert_eq!(a.count(&9), 1, "with must not mutate the receiver");
        assert_eq!(b.count(&9), 2);
        let c = b.without(&9).unwrap();
        assert_eq!(c, a);
        assert!(a.without(&7).is_none());
    }

    #[test]
    fn iteration_respects_multiplicity() {
        let ms: Multiset<u8> = [4, 4, 4, 1].into_iter().collect();
        let items: Vec<u8> = ms.iter().copied().collect();
        assert_eq!(items, vec![1, 4, 4, 4]);
    }

    #[test]
    fn equality_is_canonical() {
        let a: Multiset<u8> = [1, 2, 2].into_iter().collect();
        let mut b = Multiset::new();
        b.insert(2);
        b.insert(1);
        b.insert(2);
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_multiplicity() {
        let ms: Multiset<u8> = [7, 7].into_iter().collect();
        assert_eq!(ms.to_string(), "{|7 x2|}");
    }
}
