//! Rendering executions in the style of the paper's Fig. 2: each
//! configuration as a "cloud" of pending asyncs, each transition labelled by
//! the pending async that fired.
//!
//! ```text
//! {Main()}
//!   --Main()-->
//! {Broadcast(1), Broadcast(2), Collect(1), Collect(2)}
//!   --Broadcast(1)-->
//! …
//! ```

use std::fmt::Write as _;

use crate::config::{Config, Step};
use crate::explore::{Execution, Trace};
use crate::program::GlobalSchema;

/// Options for [`render_execution`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderOptions {
    /// Also print the global store of every configuration.
    pub show_stores: bool,
}

/// Renders a configuration as a Fig. 2-style cloud of pending asyncs.
#[must_use]
pub fn render_config(config: &Config, schema: &GlobalSchema, options: RenderOptions) -> String {
    let mut out = String::new();
    out.push('{');
    for (i, pa) in config.pending.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{pa}");
    }
    out.push('}');
    if options.show_stores {
        let _ = write!(out, "  @ {}", config.globals.display_with(schema));
    }
    out
}

/// Renders a whole execution, one configuration per line, with the fired
/// pending asyncs as arrow labels between them.
#[must_use]
pub fn render_execution(exec: &Execution, schema: &GlobalSchema, options: RenderOptions) -> String {
    render_steps(&exec.steps, schema, options)
}

/// Renders a witness trace in the same Fig. 2 style as
/// [`render_execution`] — the full firing sequence, not the capped one-line
/// form of `Trace`'s `Display`.
#[must_use]
pub fn render_trace(trace: &Trace, schema: &GlobalSchema, options: RenderOptions) -> String {
    render_steps(&trace.steps, schema, options)
}

fn render_steps(steps: &[Step], schema: &GlobalSchema, options: RenderOptions) -> String {
    let mut out = String::new();
    let Some(first) = steps.first() else {
        return "(empty execution)".into();
    };
    let _ = writeln!(out, "{}", render_config(&first.before, schema, options));
    for step in steps {
        let _ = writeln!(out, "  --{}-->", step.fired);
        let _ = writeln!(out, "{}", render_config(&step.after, schema, options));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::counter_program;
    use crate::explore::Explorer;

    #[test]
    fn renders_clouds_and_arrows() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let exec = exp.terminating_executions(1).remove(0);
        let text = render_execution(&exec, p.schema(), RenderOptions::default());
        assert!(text.starts_with("{Main()}"));
        assert!(text.contains("--Main()-->"));
        assert!(text.contains("Inc()"));
        assert!(
            text.trim_end().ends_with("{}"),
            "ends in the empty cloud: {text}"
        );
    }

    #[test]
    fn store_display_is_optional() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let exec = exp.terminating_executions(1).remove(0);
        let text = render_execution(&exec, p.schema(), RenderOptions { show_stores: true });
        assert!(text.contains("counter ="));
    }

    #[test]
    fn trace_renders_like_its_execution() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let exec = exp.terminating_executions(1).remove(0);
        let trace: crate::explore::Trace = exec.clone().into();
        assert_eq!(
            render_trace(&trace, p.schema(), RenderOptions::default()),
            render_execution(&exec, p.schema(), RenderOptions::default())
        );
    }

    #[test]
    fn empty_execution_is_handled() {
        let p = counter_program();
        let text = render_execution(
            &Execution { steps: vec![] },
            p.schema(),
            RenderOptions::default(),
        );
        assert_eq!(text, "(empty execution)");
    }
}
