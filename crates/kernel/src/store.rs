//! Global stores: valuations of the program's global variables.

use std::fmt;
use std::sync::Arc;

use crate::program::GlobalSchema;
use crate::value::Value;

/// A valuation of the global variables `V_G`.
///
/// Storage is positional — index `i` holds the value of the `i`-th variable
/// declared in the program's [`GlobalSchema`]. The schema (name ↔ index
/// mapping) lives on the [`Program`](crate::Program) so stores stay compact.
///
/// Slots are `Arc`-shared: stores are cloned on every transition during
/// exploration and on every evaluation branch, and almost every clone leaves
/// most slots untouched, so cloning bumps one refcount per slot instead of
/// deep-copying every value. Updates replace the slot's `Arc` (values are
/// immutable once stored). Equality, ordering, and hashing all delegate to
/// the pointed-to `Value`s, so observable semantics — including hash-consed
/// config identity — are exactly those of a `Vec<Value>` store, with the
/// bonus that comparisons of slots sharing an allocation are O(1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalStore {
    values: Vec<Arc<Value>>,
}

impl GlobalStore {
    /// Creates a store from the values of all globals, in schema order.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        GlobalStore {
            values: values.into_iter().map(Arc::new).collect(),
        }
    }

    /// Number of global variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the program has no globals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of the global with schema index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the schema.
    #[must_use]
    pub fn get(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Functional update of the global with schema index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the schema.
    #[must_use]
    pub fn with(&self, index: usize, value: Value) -> Self {
        let mut next = self.clone();
        next.values[index] = Arc::new(value);
        next
    }

    /// In-place update of the global with schema index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the schema.
    pub fn set(&mut self, index: usize, value: Value) {
        self.values[index] = Arc::new(value);
    }

    /// Iterates over the values in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter().map(Arc::as_ref)
    }

    /// Renders the store with variable names taken from `schema`.
    #[must_use]
    pub fn display_with<'a>(&'a self, schema: &'a GlobalSchema) -> DisplayStore<'a> {
        DisplayStore {
            store: self,
            schema,
        }
    }
}

impl fmt::Display for GlobalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// Helper returned by [`GlobalStore::display_with`] that prints `name = value`
/// pairs using the program's schema.
#[derive(Debug)]
pub struct DisplayStore<'a> {
    store: &'a GlobalStore,
    schema: &'a GlobalSchema,
}

impl fmt::Display for DisplayStore<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.store.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {v}", self.schema.name(i))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_with() {
        let s = GlobalStore::new(vec![Value::Int(1), Value::Bool(false)]);
        assert_eq!(s.get(0), &Value::Int(1));
        let s2 = s.with(1, Value::Bool(true));
        assert_eq!(s.get(1), &Value::Bool(false), "with must be functional");
        assert_eq!(s2.get(1), &Value::Bool(true));
    }

    #[test]
    fn display_is_positional() {
        let s = GlobalStore::new(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(s.to_string(), "<1, 2>");
    }

    #[test]
    fn ordering_supports_dedup() {
        let a = GlobalStore::new(vec![Value::Int(1)]);
        let b = GlobalStore::new(vec![Value::Int(2)]);
        assert!(a < b);
    }
}
