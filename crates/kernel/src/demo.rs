//! Tiny built-in demo programs used in doctests and kernel unit tests.
//!
//! Realistic protocol programs live in the `inseq-protocols` crate; the
//! programs here exist so the kernel crate can document and test itself
//! without depending on the DSL.

use crate::action::{ActionOutcome, NativeAction, PendingAsync, Transition};
use crate::multiset::Multiset;
use crate::program::{GlobalSchema, Program};
use crate::store::GlobalStore;
use crate::value::Value;

/// A program whose `Main` initialises a counter to 0 and spawns two `Inc`
/// tasks, each incrementing the counter atomically. Every interleaving
/// terminates with the counter at 2.
#[must_use]
pub fn counter_program() -> Program {
    let mut b = Program::builder(GlobalSchema::new(["counter"]));
    b.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            let next = g.with(0, Value::Int(0));
            let mut created = Multiset::new();
            created.insert(PendingAsync::new("Inc", vec![]));
            created.insert(PendingAsync::new("Inc", vec![]));
            ActionOutcome::Transitions(vec![Transition::new(next, created)])
        }),
    );
    b.action(
        "Inc",
        NativeAction::new("Inc", 0, |g: &GlobalStore, _: &[Value]| {
            let next = g.with(0, Value::Int(g.get(0).as_int() + 1));
            ActionOutcome::Transitions(vec![Transition::pure(next)])
        }),
    );
    b.build().expect("demo program is well-formed")
}

/// A program that can fail: `Main` spawns a `Fail` task whose gate is
/// `false` everywhere.
#[must_use]
pub fn failing_program() -> Program {
    let mut b = Program::builder(GlobalSchema::default());
    b.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::new(
                g.clone(),
                Multiset::singleton(PendingAsync::new("Fail", vec![])),
            )])
        }),
    );
    b.action(
        "Fail",
        NativeAction::new("Fail", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::Failure {
                reason: "assert false".into(),
            }
        }),
    );
    b.build().expect("demo program is well-formed")
}

/// The pathological program of §4 ("Cooperation is necessary"): `Main`
/// spawns `Rec` and `Fail`; `Rec` respawns itself forever; `Fail` has gate
/// `false`. Used to test that the cooperation condition (CO) rejects the
/// unsound IS application described in the paper.
#[must_use]
pub fn cooperation_counterexample() -> Program {
    let mut b = Program::builder(GlobalSchema::default());
    b.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            let mut created = Multiset::new();
            created.insert(PendingAsync::new("Rec", vec![]));
            created.insert(PendingAsync::new("Fail", vec![]));
            ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
        }),
    );
    b.action(
        "Rec",
        NativeAction::new("Rec", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::new(
                g.clone(),
                Multiset::singleton(PendingAsync::new("Rec", vec![])),
            )])
        }),
    );
    b.action(
        "Fail",
        NativeAction::new("Fail", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::Failure {
                reason: "assert false".into(),
            }
        }),
    );
    b.build().expect("demo program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn cooperation_counterexample_fails_in_two_steps() {
        let p = cooperation_counterexample();
        let init = p.initial_config(vec![]).unwrap();
        // Rec respawns itself, so bound the exploration; failures are found
        // long before the budget.
        let exp = Explorer::new(&p).with_budget(100).explore([init]);
        // Either we see the failure within budget or the budget trips; with
        // budget 100 the failure is definitely found (it is 2 steps away).
        let exp = exp.unwrap();
        assert!(exp.has_failure());
    }
}
