//! Configurations `(g, Ω)` and execution steps.

use std::fmt;

use crate::action::PendingAsync;
use crate::multiset::Multiset;
use crate::store::GlobalStore;

/// A non-failure configuration: a global store paired with the multiset of
/// pending asyncs awaiting execution.
///
/// The unique failure configuration `⊥` is not represented as a `Config`;
/// explorations record failures separately (see
/// [`Exploration`](crate::Exploration)).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    /// The global store `g`.
    pub globals: GlobalStore,
    /// The pending asyncs `Ω`.
    pub pending: Multiset<PendingAsync>,
}

impl Config {
    /// Creates a configuration.
    #[must_use]
    pub fn new(globals: GlobalStore, pending: Multiset<PendingAsync>) -> Self {
        Config { globals, pending }
    }

    /// The *initialized* configuration `(g, {(ℓ, Main)})` for a given entry
    /// pending async.
    #[must_use]
    pub fn initialized(globals: GlobalStore, entry: PendingAsync) -> Self {
        Config {
            globals,
            pending: Multiset::singleton(entry),
        }
    }

    /// Whether the configuration is *terminating*: no pending asyncs remain.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.pending.is_empty()
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.globals, self.pending)
    }
}

/// One step of an execution: the configuration before the step, the pending
/// async that executed (the paper's underlined PA), and the configuration
/// after.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Step {
    /// Configuration before the step.
    pub before: Config,
    /// The pending async scheduled in this step.
    pub fired: PendingAsync,
    /// Configuration after the step.
    pub after: Config,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.before, self.fired, self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn initialized_has_single_pa() {
        let c = Config::initialized(
            GlobalStore::new(vec![Value::Int(0)]),
            PendingAsync::new("Main", vec![]),
        );
        assert_eq!(c.pending.len(), 1);
        assert!(!c.is_terminal());
    }

    #[test]
    fn terminal_means_no_pas() {
        let c = Config::new(GlobalStore::default(), Multiset::new());
        assert!(c.is_terminal());
    }

    #[test]
    fn display_shows_pas() {
        let c = Config::initialized(GlobalStore::new(vec![]), PendingAsync::new("Main", vec![]));
        assert_eq!(c.to_string(), "(<>, {|Main()|})");
    }
}
