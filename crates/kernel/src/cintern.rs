//! A concurrent hash-consing interner: lock-free reads over segmented
//! arenas, sharded short-lock dedup, and an embedded atomic parent-edge
//! log.
//!
//! [`ConcurrentInterner`] gives the parallel explorer the same id scheme as
//! the sequential [`Interner`](crate::Interner) — dense `u32` ids per
//! arena, id equality = structural equality — without a global mutex:
//!
//! * **Segmented arenas, lock-free reads.** Each arena is a [`SegVec`]: a
//!   spine of lazily allocated segments with doubling capacities. Entries
//!   are never moved once written (segments are fixed-size, the spine holds
//!   them behind `OnceLock`s), so a resolved reference (`&Value`,
//!   `&GlobalStore`, a slot-id slice) stays valid for the interner's
//!   lifetime and resolving an id takes no lock at all: two array indexings
//!   plus an acquire load. This deletes the parallel explorer's phase-1
//!   snapshot lock.
//! * **Sharded dedup.** Each arena's hash → id index is split into
//!   [`NUM_SHARDS`] shards by the value's hash (high bits, so the shard
//!   choice is independent of the open-addressing probe, which uses the low
//!   bits). A shard is an [`IdTable`] behind its own mutex, held only for
//!   the probe-and-insert; inserts of *distinct* values in different shards
//!   proceed fully in parallel, and two racing inserts of the *same* value
//!   serialize on the same shard, so no value can receive two ids.
//! * **Id stability.** A fresh id is the arena's `fetch_add` ticket; the
//!   entry is published into its segment slot *before* the id is published
//!   into the shard table or returned, so any thread that can name an id
//!   can resolve it. Ids are append-only and never invalidated.
//! * **Embedded parent-edge log.** Config-arena entries carry their parent
//!   edge as atomics (`(parent, fired)` packed into one `u64`, the recorded
//!   seed distance in a `u32`), written only under the config's owning
//!   shard lock. Walking a parent chain is lock-free: recorded distances
//!   strictly decrease along every current chain (a relaxation only ever
//!   lowers a target's distance and re-establishes `depth(child) >
//!   depth(parent)` at write time), so walks terminate at a seed. Keeping
//!   the edge inside the config entry — rather than in a side table —
//!   makes edge/id alignment automatic under concurrent interning.
//! * **Batched interning.** The `intern_*s` batch methods take a whole
//!   expansion's staged successors and lock each affected shard at most
//!   once per pass (items are grouped by shard first), which is how the
//!   explorer's phase 3 pays O(affected shards) lock acquisitions instead
//!   of O(successors).
//!
//! Contention is observable: lock acquisitions that had to wait (and for
//! how long), and per-shard insert counts, surface through
//! [`ConcurrentInterner::contention`] into the engine's `--stats` output.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::Instant;

use inseq_obs::ContentionSnapshot;

use crate::action::PendingAsync;
use crate::config::Config;
use crate::hash::fx_hash;
use crate::intern::{
    hash_bag_entries, hash_config_parts, BagId, ConfigId, IdTable, PaId, StoreId, ValueId,
};
use crate::multiset::Multiset;
use crate::store::GlobalStore;
use crate::value::Value;

/// Number of dedup shards per arena. A power of two; 64 keeps the chance of
/// two workers colliding on one shard low even at 16 workers while the
/// per-arena footprint (64 small tables) stays trivial.
pub const NUM_SHARDS: usize = 64;

/// Entries of the first (smallest) segment; segment `s` holds `BASE << s`.
const BASE_BITS: u32 = 10;
const BASE: usize = 1 << BASE_BITS;

/// Spine length: cumulative capacity `BASE * (2^SPINE - 1)` exceeds the
/// `u32` id space, so the spine never runs out before ids do.
const SPINE: usize = 23;

/// The parent-edge sentinel marking a seed (no predecessor).
const SEED_EDGE: u64 = u64::MAX;

/// Locates index `i` as `(segment, offset)` under doubling segment sizes:
/// segment `s` starts at flat index `BASE * (2^s - 1)` and holds
/// `BASE << s` entries.
fn locate(index: usize) -> (usize, usize) {
    let t = (index >> BASE_BITS) + 1;
    let seg = (usize::BITS - 1 - t.leading_zeros()) as usize;
    (seg, index - BASE * ((1 << seg) - 1))
}

/// An append-only vector with lock-free reads and pointer-stable entries.
///
/// The spine is a fixed array of `OnceLock` segments with doubling
/// capacities; a segment is allocated on first touch and never moved or
/// grown, so `&T` references returned by [`get`](SegVec::get) live as long
/// as the `SegVec`. [`push`](SegVec::push) reserves the next dense index
/// with a `fetch_add` and publishes the entry through the slot's
/// `OnceLock`; publication happens before the caller can hand the index to
/// anyone, so every nameable index resolves.
///
/// Concurrent pushes are safe from any number of threads; the dedup
/// discipline (at most one push per distinct value, guarded by the owning
/// shard lock) is the *caller's* job.
#[derive(Debug)]
struct SegVec<T> {
    len: AtomicUsize,
    spine: Vec<OnceLock<Box<[OnceLock<T>]>>>,
}

impl<T> SegVec<T> {
    fn new() -> Self {
        SegVec {
            len: AtomicUsize::new(0),
            spine: (0..SPINE).map(|_| OnceLock::new()).collect(),
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Appends an entry and returns its dense index as a raw id.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds the `u32` id space.
    fn push(&self, value: T) -> u32 {
        let i = self.len.fetch_add(1, Ordering::AcqRel);
        let id = u32::try_from(i).expect("arena exceeds u32 id space");
        let (seg, off) = locate(i);
        let segment = self.spine[seg].get_or_init(|| {
            (0..(BASE << seg))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        assert!(
            segment[off].set(value).is_ok(),
            "segment slot written twice"
        );
        id
    }

    /// Resolves a previously pushed index. Lock-free.
    ///
    /// # Panics
    ///
    /// Panics on an index that was never returned by [`push`](Self::push).
    fn get(&self, index: usize) -> &T {
        let (seg, off) = locate(index);
        self.spine[seg].get().expect("segment published")[off]
            .get()
            .expect("slot published")
    }
}

/// One store-arena entry: the materialized store plus its slot-id key (the
/// per-entry ownership replaces the sequential interner's flat
/// struct-of-arrays spans, which cannot grow append-only under concurrent
/// writers without a lock) and its [`store_hash`], kept so successor
/// interning can derive a child's hash from the parent's in O(writes).
#[derive(Debug)]
struct StoreEntry {
    store: GlobalStore,
    slots: Box<[ValueId]>,
    hash: u64,
}

/// Position-dependent mix of one store slot (a splitmix64 finalizer over
/// the `(slot, value-id)` pair). Each slot's contribution is independent of
/// every other slot's, which is what makes the XOR fold in [`store_hash`]
/// incrementally updatable.
#[inline]
fn slot_mix(slot: usize, vid: ValueId) -> u64 {
    let mut z = ((slot as u64) << 32) ^ u64::from(vid.raw());
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The store table's hash: an XOR fold of per-slot mixes. XOR makes the
/// hash *path-independent* — a successor's hash is its parent's with the
/// changed slots' old contributions XORed out and the new ones in, so the
/// same store always hashes identically no matter which `(parent, writes)`
/// diff produced it. That property is what lets [`intern_stores`]
/// (`ConcurrentInterner::intern_stores`) hash in O(writes) without ever
/// materializing the full slot key; dedup correctness still rests on the
/// full equality compare at probe time, never on the hash.
fn store_hash(slots: &[ValueId]) -> u64 {
    slots
        .iter()
        .enumerate()
        .fold(slots.len() as u64, |h, (i, &vid)| h ^ slot_mix(i, vid))
}

/// Does `cand` equal `parent` with `patches` applied? `patches` must hold
/// strictly ascending slot indices (the [`StoreReq`] contract); the walk
/// advances one patch cursor alongside the slot scan.
fn patched_eq(cand: &[ValueId], parent: &[ValueId], patches: &[(usize, ValueId)]) -> bool {
    if cand.len() != parent.len() {
        return false;
    }
    let mut patches = patches.iter().peekable();
    for (j, (&c, &p)) in cand.iter().zip(parent.iter()).enumerate() {
        let expect = match patches.peek() {
            Some(&&(slot, vid)) if slot == j => {
                patches.next();
                vid
            }
            _ => p,
        };
        if c != expect {
            return false;
        }
    }
    patches.next().is_none()
}

/// One config-arena entry: the `(store, bag)` identity plus the embedded
/// parent edge. `edge` packs `(parent << 32) | fired`; [`SEED_EDGE`] marks
/// a seed. Both atomics are written only under the config's owning shard
/// lock; readers never lock.
#[derive(Debug)]
struct ConfigEntry {
    store: StoreId,
    bag: BagId,
    edge: AtomicU64,
    depth: AtomicU32,
}

fn pack_edge(parent: ConfigId, fired: PaId) -> u64 {
    (u64::from(parent.raw()) << 32) | u64::from(fired.raw())
}

fn unpack_edge(edge: u64) -> Option<(ConfigId, PaId)> {
    if edge == SEED_EDGE {
        None
    } else {
        #[allow(clippy::cast_possible_truncation)] // intentional 32-bit split
        Some((
            ConfigId::from_raw((edge >> 32) as u32),
            PaId::from_raw(edge as u32),
        ))
    }
}

/// The shard an item hashes to. High bits, so it stays independent of the
/// [`IdTable`] probe sequence (low bits).
fn shard_of(hash: u64) -> usize {
    #[allow(clippy::cast_possible_truncation)] // 6-bit result
    {
        ((hash >> 57) as usize) & (NUM_SHARDS - 1)
    }
}

/// One arena's sharded dedup index.
#[derive(Debug)]
struct ShardedIndex {
    shards: Vec<Mutex<IdTable>>,
}

impl ShardedIndex {
    fn new() -> Self {
        ShardedIndex {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(IdTable::new()))
                .collect(),
        }
    }
}

/// A successor-store interning request for
/// [`ConcurrentInterner::intern_stores`]: the interned parent the candidate
/// diffs against, plus the changed slots both as interned ids (`patches`,
/// the dedup key) and as owned values (`writes`, the recipe to materialize
/// the store on a miss). The candidate's full slot key is never passed —
/// its hash derives incrementally from the parent's and equality on probe
/// compares through the parent, so a request costs O(writes), not
/// O(slots).
#[derive(Debug)]
pub struct StoreReq<'a> {
    /// The interned parent store the candidate diffs against.
    pub parent: StoreId,
    /// The slots where the candidate differs, as (index, interned
    /// post-value id) — strictly ascending indices, post-value distinct
    /// from the parent's at that slot.
    pub patches: &'a [(usize, ValueId)],
    /// The same changed slots as (index, owned post-value), applied to a
    /// parent clone when the candidate is fresh.
    pub writes: &'a [(usize, Value)],
}

/// A config-interning request for
/// [`ConcurrentInterner::intern_configs`]: the interned parts plus the
/// discovering edge (`None` for seeds).
#[derive(Debug, Clone, Copy)]
pub struct ConfigReq {
    /// The configuration's interned store.
    pub store: StoreId,
    /// The configuration's interned pending bag.
    pub bag: BagId,
    /// The discovering parent edge: predecessor and fired pending async.
    pub edge: Option<(ConfigId, PaId)>,
}

/// The concurrent hash-consing interner (see the module docs for the
/// design). All methods take `&self`; reads are lock-free, writes lock only
/// the owning dedup shard.
#[derive(Debug)]
pub struct ConcurrentInterner {
    values: SegVec<Value>,
    value_index: ShardedIndex,
    stores: SegVec<StoreEntry>,
    store_index: ShardedIndex,
    pas: SegVec<PendingAsync>,
    pa_index: ShardedIndex,
    bags: SegVec<Box<[(PaId, u32)]>>,
    bag_index: ShardedIndex,
    configs: SegVec<ConfigEntry>,
    config_index: ShardedIndex,
    /// Shard-lock acquisitions that found the lock held.
    lock_waits: AtomicU64,
    /// Total nanoseconds spent waiting on held shard locks.
    lock_wait_nanos: AtomicU64,
    /// Fresh-id inserts per shard index, summed over all five arenas.
    shard_inserts: Vec<AtomicU64>,
    /// `intern_config*` calls that found an existing id.
    config_hits: AtomicU64,
    /// `intern_config*` calls that allocated a fresh id.
    config_misses: AtomicU64,
}

impl Default for ConcurrentInterner {
    fn default() -> Self {
        ConcurrentInterner::new()
    }
}

impl ConcurrentInterner {
    /// Creates an empty concurrent interner.
    #[must_use]
    pub fn new() -> Self {
        ConcurrentInterner {
            values: SegVec::new(),
            value_index: ShardedIndex::new(),
            stores: SegVec::new(),
            store_index: ShardedIndex::new(),
            pas: SegVec::new(),
            pa_index: ShardedIndex::new(),
            bags: SegVec::new(),
            bag_index: ShardedIndex::new(),
            configs: SegVec::new(),
            config_index: ShardedIndex::new(),
            lock_waits: AtomicU64::new(0),
            lock_wait_nanos: AtomicU64::new(0),
            shard_inserts: (0..NUM_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            config_hits: AtomicU64::new(0),
            config_misses: AtomicU64::new(0),
        }
    }

    /// Locks one dedup shard, recording the wait if the lock was held. The
    /// fast path is a `try_lock` with no clock read at all; only actual
    /// contention pays for two `Instant` calls.
    fn lock<'a>(&self, index: &'a ShardedIndex, shard: usize) -> MutexGuard<'a, IdTable> {
        match index.shards[shard].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                let start = Instant::now();
                let guard = index.shards[shard].lock().expect("shard lock poisoned");
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                #[allow(clippy::cast_possible_truncation)] // < 584 years
                self.lock_wait_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                guard
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        }
    }

    fn note_insert(&self, shard: usize) {
        self.shard_inserts[shard].fetch_add(1, Ordering::Relaxed);
    }

    // ----- values -----------------------------------------------------

    /// Interns one value. Prefer [`intern_values`](Self::intern_values)
    /// when staging several.
    pub fn intern_value(&self, v: &Value) -> ValueId {
        let hash = fx_hash(v);
        let shard = shard_of(hash);
        let mut table = self.lock(&self.value_index, shard);
        self.intern_value_locked(&mut table, shard, hash, v)
    }

    fn intern_value_locked(
        &self,
        table: &mut IdTable,
        shard: usize,
        hash: u64,
        v: &Value,
    ) -> ValueId {
        if let Some(id) = table.find(hash, |id| self.values.get(id as usize) == v) {
            return ValueId::from_raw(id);
        }
        let id = self.values.push(v.clone());
        table.insert(hash, id);
        self.note_insert(shard);
        ValueId::from_raw(id)
    }

    /// Batch-interns values: groups by shard and locks each affected shard
    /// exactly once. `out` is overwritten with one id per input, aligned.
    pub fn intern_values(&self, items: &[&Value], out: &mut Vec<ValueId>) {
        out.clear();
        out.resize(items.len(), ValueId::from_raw(0));
        let mut order: Vec<(usize, usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let hash = fx_hash(*v);
                (shard_of(hash), i, hash)
            })
            .collect();
        order.sort_unstable_by_key(|&(shard, i, _)| (shard, i));
        let mut at = 0;
        while at < order.len() {
            let shard = order[at].0;
            let mut table = self.lock(&self.value_index, shard);
            while at < order.len() && order[at].0 == shard {
                let (_, i, hash) = order[at];
                out[i] = self.intern_value_locked(&mut table, shard, hash, items[i]);
                at += 1;
            }
        }
    }

    /// Read-only probe: the id of `v` if it has been interned.
    #[must_use]
    pub fn find_value(&self, v: &Value) -> Option<ValueId> {
        let hash = fx_hash(v);
        let table = self.lock(&self.value_index, shard_of(hash));
        table
            .find(hash, |id| self.values.get(id as usize) == v)
            .map(ValueId::from_raw)
    }

    /// Resolves an interned value. Lock-free.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &Value {
        self.values.get(id.index())
    }

    /// Number of distinct interned values.
    #[must_use]
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    // ----- pending asyncs ---------------------------------------------

    /// Interns one pending async. Prefer [`intern_pas`](Self::intern_pas)
    /// when staging several.
    pub fn intern_pa(&self, pa: &PendingAsync) -> PaId {
        let hash = fx_hash(pa);
        let shard = shard_of(hash);
        let mut table = self.lock(&self.pa_index, shard);
        self.intern_pa_locked(&mut table, shard, hash, pa)
    }

    fn intern_pa_locked(
        &self,
        table: &mut IdTable,
        shard: usize,
        hash: u64,
        pa: &PendingAsync,
    ) -> PaId {
        if let Some(id) = table.find(hash, |id| self.pas.get(id as usize) == pa) {
            return PaId::from_raw(id);
        }
        let id = self.pas.push(pa.clone());
        table.insert(hash, id);
        self.note_insert(shard);
        PaId::from_raw(id)
    }

    /// Batch-interns pending asyncs: one lock per affected shard; `out` is
    /// overwritten with one id per input, aligned.
    pub fn intern_pas(&self, items: &[&PendingAsync], out: &mut Vec<PaId>) {
        out.clear();
        out.resize(items.len(), PaId::from_raw(0));
        let mut order: Vec<(usize, usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, pa)| {
                let hash = fx_hash(*pa);
                (shard_of(hash), i, hash)
            })
            .collect();
        order.sort_unstable_by_key(|&(shard, i, _)| (shard, i));
        let mut at = 0;
        while at < order.len() {
            let shard = order[at].0;
            let mut table = self.lock(&self.pa_index, shard);
            while at < order.len() && order[at].0 == shard {
                let (_, i, hash) = order[at];
                out[i] = self.intern_pa_locked(&mut table, shard, hash, items[i]);
                at += 1;
            }
        }
    }

    /// Read-only probe: the id of `pa` if it has been interned.
    #[must_use]
    pub fn find_pa(&self, pa: &PendingAsync) -> Option<PaId> {
        let hash = fx_hash(pa);
        let table = self.lock(&self.pa_index, shard_of(hash));
        table
            .find(hash, |id| self.pas.get(id as usize) == pa)
            .map(PaId::from_raw)
    }

    /// Resolves an interned pending async. Lock-free.
    #[must_use]
    pub fn pa(&self, id: PaId) -> &PendingAsync {
        self.pas.get(id.index())
    }

    /// Number of distinct interned pending asyncs.
    #[must_use]
    pub fn pa_count(&self) -> usize {
        self.pas.len()
    }

    // ----- stores -----------------------------------------------------

    fn intern_store_locked(
        &self,
        table: &mut IdTable,
        shard: usize,
        hash: u64,
        eq: impl Fn(&[ValueId]) -> bool,
        materialize: impl FnOnce() -> (GlobalStore, Box<[ValueId]>),
    ) -> StoreId {
        if let Some(id) = table.find(hash, |id| eq(&self.stores.get(id as usize).slots)) {
            return StoreId::from_raw(id);
        }
        let (store, slots) = materialize();
        let id = self.stores.push(StoreEntry { store, slots, hash });
        table.insert(hash, id);
        self.note_insert(shard);
        StoreId::from_raw(id)
    }

    /// Interns a store by interning every slot value first (the full,
    /// non-diff path — seeds and symmetry canonicalization).
    pub fn intern_store(&self, store: &GlobalStore) -> StoreId {
        let slots: Vec<ValueId> = store.iter().map(|v| self.intern_value(v)).collect();
        let hash = store_hash(&slots);
        let shard = shard_of(hash);
        let mut table = self.lock(&self.store_index, shard);
        self.intern_store_locked(
            &mut table,
            shard,
            hash,
            |cand| cand == &slots[..],
            || (store.clone(), slots.as_slice().into()),
        )
    }

    /// Batch-interns successor stores from diff requests: one lock per
    /// affected shard. Each request's hash derives from the parent's stored
    /// hash by XORing out the patched slots' old mixes and in the new ones
    /// (O(writes)); the probe compares candidates against the parent's
    /// slots seen through the patches, so the hit path never materializes
    /// a slot key. A miss clones the parent (cheap — slots are
    /// `Arc`-shared), applies the writes, and patches a copy of the
    /// parent's key. `out` is overwritten with one id per request,
    /// aligned.
    pub fn intern_stores(&self, reqs: &[StoreReq<'_>], out: &mut Vec<StoreId>) {
        out.clear();
        out.resize(reqs.len(), StoreId::from_raw(0));
        let mut order: Vec<(usize, usize, u64)> = reqs
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let parent = self.stores.get(req.parent.index());
                let mut hash = parent.hash;
                for &(slot, vid) in req.patches {
                    hash ^= slot_mix(slot, parent.slots[slot]) ^ slot_mix(slot, vid);
                }
                (shard_of(hash), i, hash)
            })
            .collect();
        order.sort_unstable_by_key(|&(shard, i, _)| (shard, i));
        let mut at = 0;
        while at < order.len() {
            let shard = order[at].0;
            let mut table = self.lock(&self.store_index, shard);
            while at < order.len() && order[at].0 == shard {
                let (_, i, hash) = order[at];
                let req = &reqs[i];
                let parent = self.stores.get(req.parent.index());
                out[i] = self.intern_store_locked(
                    &mut table,
                    shard,
                    hash,
                    |cand| patched_eq(cand, &parent.slots, req.patches),
                    || {
                        let mut store = parent.store.clone();
                        for (slot, value) in req.writes {
                            store.set(*slot, value.clone());
                        }
                        let mut slots = parent.slots.to_vec();
                        for &(slot, vid) in req.patches {
                            slots[slot] = vid;
                        }
                        (store, slots.into_boxed_slice())
                    },
                );
                at += 1;
            }
        }
    }

    /// Read-only probe: the id of `store` if it has been interned.
    #[must_use]
    pub fn find_store(&self, store: &GlobalStore) -> Option<StoreId> {
        let mut slots = Vec::with_capacity(store.len());
        for v in store.iter() {
            slots.push(self.find_value(v)?);
        }
        let hash = store_hash(&slots);
        let table = self.lock(&self.store_index, shard_of(hash));
        table
            .find(hash, |id| *self.stores.get(id as usize).slots == slots[..])
            .map(StoreId::from_raw)
    }

    /// Resolves an interned store. Lock-free.
    #[must_use]
    pub fn store(&self, id: StoreId) -> &GlobalStore {
        &self.stores.get(id.index()).store
    }

    /// The slot-value ids of an interned store, in schema order. Lock-free.
    #[must_use]
    pub fn store_slots(&self, id: StoreId) -> &[ValueId] {
        &self.stores.get(id.index()).slots
    }

    /// Number of distinct interned stores.
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    // ----- pending bags -----------------------------------------------

    fn intern_bag_locked(
        &self,
        table: &mut IdTable,
        shard: usize,
        hash: u64,
        entries: &[(PaId, u32)],
    ) -> BagId {
        if let Some(id) = table.find(hash, |id| &**self.bags.get(id as usize) == entries) {
            return BagId::from_raw(id);
        }
        let id = self.bags.push(entries.into());
        table.insert(hash, id);
        self.note_insert(shard);
        BagId::from_raw(id)
    }

    /// Interns a pending bag from canonical `(PaId, count)` entries, sorted
    /// by the resolved pending-async order (the caller's contract, same as
    /// the sequential interner's canonical form).
    pub fn intern_bag_entries(&self, entries: &[(PaId, u32)]) -> BagId {
        let hash = hash_bag_entries(entries);
        let shard = shard_of(hash);
        let mut table = self.lock(&self.bag_index, shard);
        self.intern_bag_locked(&mut table, shard, hash, entries)
    }

    /// Interns a pending multiset (the full, non-diff path).
    pub fn intern_bag(&self, bag: &Multiset<PendingAsync>) -> BagId {
        let mut entries = Vec::with_capacity(bag.distinct_len());
        for (pa, count) in bag.iter_counts() {
            entries.push((
                self.intern_pa(pa),
                u32::try_from(count).expect("count exceeds u32"),
            ));
        }
        self.intern_bag_entries(&entries)
    }

    /// Batch-interns bags from canonical entry slices: one lock per
    /// affected shard. `out` is overwritten with one id per input, aligned.
    pub fn intern_bags(&self, items: &[&[(PaId, u32)]], out: &mut Vec<BagId>) {
        out.clear();
        out.resize(items.len(), BagId::from_raw(0));
        let mut order: Vec<(usize, usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, entries)| {
                let hash = hash_bag_entries(entries);
                (shard_of(hash), i, hash)
            })
            .collect();
        order.sort_unstable_by_key(|&(shard, i, _)| (shard, i));
        let mut at = 0;
        while at < order.len() {
            let shard = order[at].0;
            let mut table = self.lock(&self.bag_index, shard);
            while at < order.len() && order[at].0 == shard {
                let (_, i, hash) = order[at];
                out[i] = self.intern_bag_locked(&mut table, shard, hash, items[i]);
                at += 1;
            }
        }
    }

    /// Read-only probe: the id of `bag` if it has been interned.
    #[must_use]
    pub fn find_bag(&self, bag: &Multiset<PendingAsync>) -> Option<BagId> {
        let mut entries = Vec::with_capacity(bag.distinct_len());
        for (pa, count) in bag.iter_counts() {
            entries.push((self.find_pa(pa)?, u32::try_from(count).ok()?));
        }
        let hash = hash_bag_entries(&entries);
        let table = self.lock(&self.bag_index, shard_of(hash));
        table
            .find(hash, |id| **self.bags.get(id as usize) == entries[..])
            .map(BagId::from_raw)
    }

    /// The canonical `(PaId, count)` entries of an interned bag. Lock-free.
    #[must_use]
    pub fn bag_entries(&self, id: BagId) -> &[(PaId, u32)] {
        self.bags.get(id.index())
    }

    /// Rebuilds the [`Multiset`] an interned bag denotes.
    #[must_use]
    pub fn resolve_bag(&self, id: BagId) -> Multiset<PendingAsync> {
        let mut out = Multiset::new();
        for &(p, c) in self.bag_entries(id) {
            out.insert_n(self.pa(p).clone(), c as usize);
        }
        out
    }

    /// Number of distinct interned bags.
    #[must_use]
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    // ----- configurations ---------------------------------------------

    fn intern_config_locked(
        &self,
        table: &mut IdTable,
        shard: usize,
        hash: u64,
        req: ConfigReq,
    ) -> (ConfigId, bool) {
        if let Some(id) = table.find(hash, |id| {
            let entry = self.configs.get(id as usize);
            (entry.store, entry.bag) == (req.store, req.bag)
        }) {
            self.config_hits.fetch_add(1, Ordering::Relaxed);
            let id = ConfigId::from_raw(id);
            if let Some((parent, fired)) = req.edge {
                self.relax_locked(id, parent, fired);
            }
            return (id, false);
        }
        self.config_misses.fetch_add(1, Ordering::Relaxed);
        let (edge, depth) = match req.edge {
            Some((parent, fired)) => (
                pack_edge(parent, fired),
                self.depth(parent).saturating_add(1),
            ),
            None => (SEED_EDGE, 0),
        };
        let id = self.configs.push(ConfigEntry {
            store: req.store,
            bag: req.bag,
            edge: AtomicU64::new(edge),
            depth: AtomicU32::new(depth),
        });
        table.insert(hash, id);
        self.note_insert(shard);
        (ConfigId::from_raw(id), true)
    }

    /// Relaxes the stored parent edge of `id` when the offered edge arrives
    /// via a strictly shorter recorded path. Must hold `id`'s shard lock
    /// (writes to a config's edge atomics are serialized by it). Seeds
    /// (depth 0) are never replaced.
    fn relax_locked(&self, id: ConfigId, parent: ConfigId, fired: PaId) {
        let entry = self.configs.get(id.index());
        if entry.edge.load(Ordering::Relaxed) == SEED_EDGE {
            return;
        }
        let offered = self.depth(parent).saturating_add(1);
        if offered < entry.depth.load(Ordering::Relaxed) {
            // Depth first, then edge (release): a lock-free walker reading
            // the new edge sees a parent whose recorded depth was strictly
            // below this entry's at write time, and depths only ever
            // decrease afterwards — chains stay acyclic.
            entry.depth.store(offered, Ordering::Relaxed);
            entry
                .edge
                .store(pack_edge(parent, fired), Ordering::Release);
        }
    }

    /// Interns a configuration from already-interned parts, recording (or
    /// relaxing) its parent edge; returns the id and whether it was fresh.
    pub fn intern_config_parts(&self, req: ConfigReq) -> (ConfigId, bool) {
        let hash = hash_config_parts(req.store, req.bag);
        let shard = shard_of(hash);
        let mut table = self.lock(&self.config_index, shard);
        self.intern_config_locked(&mut table, shard, hash, req)
    }

    /// Interns a configuration from its parts (seed path: full store and
    /// bag interning first).
    pub fn intern_config(
        &self,
        config: &Config,
        edge: Option<(ConfigId, PaId)>,
    ) -> (ConfigId, bool) {
        let store = self.intern_store(&config.globals);
        let bag = self.intern_bag(&config.pending);
        self.intern_config_parts(ConfigReq { store, bag, edge })
    }

    /// Batch-interns configurations: one lock per affected shard. `out` is
    /// overwritten with `(id, fresh)` per request, aligned with the input.
    /// Duplicate requests within one batch resolve like sequential repeats:
    /// the first is fresh, the rest are hits (with edge relaxation).
    pub fn intern_configs(&self, reqs: &[ConfigReq], out: &mut Vec<(ConfigId, bool)>) {
        out.clear();
        out.resize(reqs.len(), (ConfigId::from_raw(0), false));
        let mut order: Vec<(usize, usize, u64)> = reqs
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let hash = hash_config_parts(req.store, req.bag);
                (shard_of(hash), i, hash)
            })
            .collect();
        order.sort_unstable_by_key(|&(shard, i, _)| (shard, i));
        let mut at = 0;
        while at < order.len() {
            let shard = order[at].0;
            let mut table = self.lock(&self.config_index, shard);
            while at < order.len() && order[at].0 == shard {
                let (_, i, hash) = order[at];
                out[i] = self.intern_config_locked(&mut table, shard, hash, reqs[i]);
                at += 1;
            }
        }
    }

    /// Read-only probe: the id of `config` if it has been interned.
    #[must_use]
    pub fn find_config(&self, config: &Config) -> Option<ConfigId> {
        let store = self.find_store(&config.globals)?;
        let bag = self.find_bag(&config.pending)?;
        let hash = hash_config_parts(store, bag);
        let table = self.lock(&self.config_index, shard_of(hash));
        table
            .find(hash, |id| {
                let entry = self.configs.get(id as usize);
                (entry.store, entry.bag) == (store, bag)
            })
            .map(ConfigId::from_raw)
    }

    /// The `(store, bag)` parts of an interned configuration. Lock-free.
    #[must_use]
    pub fn config_parts(&self, id: ConfigId) -> (StoreId, BagId) {
        let entry = self.configs.get(id.index());
        (entry.store, entry.bag)
    }

    /// The recorded parent edge of a configuration: the predecessor and the
    /// fired pending async, or `None` for a seed. Lock-free; concurrent
    /// relaxations may swap the edge between reads, but every observable
    /// edge points at a strictly smaller recorded depth, so chains walked
    /// through this method terminate.
    #[must_use]
    pub fn parent_edge(&self, id: ConfigId) -> Option<(ConfigId, PaId)> {
        unpack_edge(self.configs.get(id.index()).edge.load(Ordering::Acquire))
    }

    /// The recorded firing distance of a configuration from a seed.
    #[must_use]
    pub fn depth(&self, id: ConfigId) -> u32 {
        self.configs.get(id.index()).depth.load(Ordering::Relaxed)
    }

    /// Rebuilds the [`Config`] an interned configuration denotes.
    #[must_use]
    pub fn resolve_config(&self, id: ConfigId) -> Config {
        let (store, bag) = self.config_parts(id);
        Config::new(self.store(store).clone(), self.resolve_bag(bag))
    }

    /// Number of distinct interned configurations. During a run this may
    /// transiently include allocations whose shard insert is still in
    /// flight; after the owning threads quiesce it is exact.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// The configuration ids in interning order (dense `0..config_count()`).
    pub fn config_ids(&self) -> impl Iterator<Item = ConfigId> + '_ {
        (0..self.config_count()).map(|i| {
            #[allow(clippy::cast_possible_truncation)] // ids are dense u32
            ConfigId::from_raw(i as u32)
        })
    }

    /// Configuration dedup effectiveness, matching the sequential
    /// interner's [`intern_stats`](crate::Interner::intern_stats) shape.
    #[must_use]
    pub fn intern_stats(&self) -> inseq_obs::HitMissSnapshot {
        inseq_obs::HitMissSnapshot::new(
            self.config_hits.load(Ordering::Relaxed),
            self.config_misses.load(Ordering::Relaxed),
        )
    }

    /// The contention shape of this interner so far: lock waits, total wait
    /// nanoseconds, and per-shard insert counts.
    #[must_use]
    pub fn contention(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_nanos: self.lock_wait_nanos.load(Ordering::Relaxed),
            shard_inserts: self
                .shard_inserts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_crosses_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, BASE - 1));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, 2 * BASE - 1));
        assert_eq!(locate(3 * BASE), (2, 0));
        assert_eq!(locate(7 * BASE - 1), (2, 4 * BASE - 1));
        assert_eq!(locate(7 * BASE), (3, 0));
        // The spine covers the whole u32 id space.
        let (seg, off) = locate(u32::MAX as usize);
        assert!(seg < SPINE);
        assert!(off < BASE << seg);
    }

    #[test]
    fn segvec_entries_survive_growth_and_stay_stable() {
        let v: SegVec<usize> = SegVec::new();
        let n = 5000; // crosses three segment boundaries
        for i in 0..n {
            assert_eq!(v.push(i), u32::try_from(i).unwrap());
        }
        let early: *const usize = v.get(0);
        for i in 0..n {
            assert_eq!(*v.get(i), i);
        }
        assert_eq!(v.len(), n);
        // No reallocation moved the early entry.
        assert_eq!(early, std::ptr::from_ref(v.get(0)));
    }

    #[test]
    fn edge_packing_roundtrips() {
        assert_eq!(unpack_edge(SEED_EDGE), None);
        let parent = ConfigId::from_raw(7);
        let fired = PaId::from_raw(123_456);
        assert_eq!(unpack_edge(pack_edge(parent, fired)), Some((parent, fired)));
        let parent = ConfigId::from_raw(u32::MAX - 1);
        let fired = PaId::from_raw(u32::MAX);
        assert_eq!(unpack_edge(pack_edge(parent, fired)), Some((parent, fired)));
    }

    #[test]
    fn value_ids_are_canonical_and_lock_free_reads_resolve() {
        let i = ConcurrentInterner::new();
        let a = i.intern_value(&Value::Int(7));
        let b = i.intern_value(&Value::Int(7));
        let c = i.intern_value(&Value::Int(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.value(a), &Value::Int(7));
        assert_eq!(i.value_count(), 2);
        assert_eq!(i.find_value(&Value::Int(8)), Some(c));
        assert_eq!(i.find_value(&Value::Int(9)), None);
    }

    #[test]
    fn batch_interning_matches_single_interning() {
        let single = ConcurrentInterner::new();
        let batched = ConcurrentInterner::new();
        let values: Vec<Value> = (0..100).map(|n| Value::Int(n % 37)).collect();
        let refs: Vec<&Value> = values.iter().collect();
        let singles: Vec<ValueId> = refs.iter().map(|v| single.intern_value(v)).collect();
        let mut out = Vec::new();
        batched.intern_values(&refs, &mut out);
        // Both interners dedup to the same id ↔ value mapping.
        assert_eq!(singles.len(), out.len());
        for (s, b) in singles.iter().zip(&out) {
            assert_eq!(single.value(*s), batched.value(*b));
        }
        assert_eq!(single.value_count(), batched.value_count());
    }

    #[test]
    fn config_edges_record_and_relax() {
        let i = ConcurrentInterner::new();
        let store = i.intern_store(&GlobalStore::new(vec![Value::Int(1)]));
        let mk_bag = |n: i64| {
            i.intern_bag(&Multiset::singleton(PendingAsync::new(
                "A",
                vec![Value::Int(n)],
            )))
        };
        let (seed, fresh) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(0),
            edge: None,
        });
        assert!(fresh);
        assert_eq!(i.parent_edge(seed), None);
        assert_eq!(i.depth(seed), 0);

        let fired = i.intern_pa(&PendingAsync::new("A", vec![Value::Int(0)]));
        // A chain seed -> c1 -> c2.
        let (c1, _) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(1),
            edge: Some((seed, fired)),
        });
        let (c2, _) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(2),
            edge: Some((c1, fired)),
        });
        assert_eq!(i.depth(c1), 1);
        assert_eq!(i.depth(c2), 2);
        assert_eq!(i.parent_edge(c2), Some((c1, fired)));

        // Re-interning c2 directly from the seed relaxes its edge.
        let (again, fresh) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(2),
            edge: Some((seed, fired)),
        });
        assert_eq!(again, c2);
        assert!(!fresh);
        assert_eq!(i.parent_edge(c2), Some((seed, fired)));
        assert_eq!(i.depth(c2), 1);

        // A longer edge never replaces a shorter one, and seeds are never
        // relaxed.
        let (_, _) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(2),
            edge: Some((c1, fired)),
        });
        assert_eq!(i.parent_edge(c2), Some((seed, fired)));
        let (_, _) = i.intern_config_parts(ConfigReq {
            store,
            bag: mk_bag(0),
            edge: Some((c2, fired)),
        });
        assert_eq!(i.parent_edge(seed), None);

        let stats = i.intern_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn store_diff_requests_share_unchanged_slots() {
        let i = ConcurrentInterner::new();
        let g1 = GlobalStore::new(vec![Value::Int(1), Value::Int(2)]);
        let s1 = i.intern_store(&g1);
        let v3 = i.intern_value(&Value::Int(3));
        let patches = vec![(1usize, v3)];
        let writes = vec![(1usize, Value::Int(3))];
        let mut out = Vec::new();
        i.intern_stores(
            &[StoreReq {
                parent: s1,
                patches: &patches,
                writes: &writes,
            }],
            &mut out,
        );
        let s2 = out[0];
        assert_ne!(s1, s2);
        assert_eq!(
            i.store(s2),
            &GlobalStore::new(vec![Value::Int(1), Value::Int(3)])
        );
        assert_eq!(i.store_slots(s1)[0], i.store_slots(s2)[0]);
        // An empty diff resolves to the parent id without materializing.
        i.intern_stores(
            &[StoreReq {
                parent: s1,
                patches: &[],
                writes: &[],
            }],
            &mut out,
        );
        assert_eq!(out[0], s1);
        assert_eq!(i.store_count(), 2);
        // The diff-interned store and a full (non-diff) intern of the same
        // globals agree on the id — path-independent hashing plus the
        // equality probe make the diff path canonical.
        assert_eq!(
            i.intern_store(&GlobalStore::new(vec![Value::Int(1), Value::Int(3)])),
            s2
        );
        // Re-submitting the same diff is a pure hit.
        i.intern_stores(
            &[StoreReq {
                parent: s1,
                patches: &patches,
                writes: &writes,
            }],
            &mut out,
        );
        assert_eq!(out[0], s2);
        assert_eq!(i.store_count(), 2);
    }

    #[test]
    fn contention_counters_observe_inserts() {
        let i = ConcurrentInterner::new();
        for n in 0..100 {
            i.intern_value(&Value::Int(n));
        }
        let c = i.contention();
        assert_eq!(c.shard_inserts.len(), NUM_SHARDS);
        assert_eq!(c.inserts_total(), 100);
        // Single-threaded: the fast path never waits.
        assert_eq!(c.lock_waits, 0);
        assert_eq!(c.lock_wait_nanos, 0);
    }
}
