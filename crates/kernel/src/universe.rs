//! State universes: the finite quantification domains over which mover and
//! IS side conditions are discharged.
//!
//! The paper's CIVL implementation discharges conditions like "action `l`
//! commutes to the left of action `x`" as SMT validity queries quantified
//! over *all* stores. Our explicit-state substitute collects, from one or
//! more exhaustive explorations, every global store, every pending async,
//! and every co-enabled pair of pending asyncs (with the stores at which
//! they co-occur), and checks the conditions over those. This is complete
//! for the explored instances (see DESIGN.md §2 and §4).

use std::collections::{BTreeMap, BTreeSet};

use crate::action::{ActionName, PendingAsync};
use crate::explore::Exploration;
use crate::store::GlobalStore;
use crate::value::Value;

/// The quantification domain for semantic side conditions: global stores,
/// pending asyncs, and co-enabled pairs observed in one or more explorations.
#[derive(Debug, Clone, Default)]
pub struct StateUniverse {
    stores: BTreeSet<GlobalStore>,
    pending: BTreeSet<PendingAsync>,
    /// For each ordered pair of pending asyncs simultaneously present in
    /// some reachable configuration, the stores at which they co-occur.
    coenabled: BTreeMap<(PendingAsync, PendingAsync), BTreeSet<GlobalStore>>,
    /// Stores at which a PA of a given action is present in some reachable
    /// configuration, together with its argument values.
    enabled_at: BTreeMap<ActionName, BTreeSet<(GlobalStore, Vec<Value>)>>,
    /// For each store, the first absorbed configuration exhibiting it.
    /// Because explorations are absorbed before synthetic (invariant-
    /// produced) configurations, a provenance entry names a *reachable*
    /// configuration whenever one exists, which is what lets a violated
    /// premise over a store be turned into a concrete witness run.
    provenance: BTreeMap<GlobalStore, crate::config::Config>,
}

impl StateUniverse {
    /// Creates an empty universe.
    #[must_use]
    pub fn new() -> Self {
        StateUniverse::default()
    }

    /// Builds a universe from a single exploration.
    #[must_use]
    pub fn from_exploration(exp: &Exploration) -> Self {
        let mut u = StateUniverse::new();
        u.absorb(exp);
        u
    }

    /// Adds all stores, pending asyncs and co-enabled pairs of `exp`.
    pub fn absorb(&mut self, exp: &Exploration) {
        for config in exp.configs() {
            self.absorb_config(config);
        }
    }

    /// Adds the store, pending asyncs, and co-enabled pairs of one
    /// configuration. Used to extend the universe with configurations
    /// produced by invariant-action transitions during inductive
    /// sequentialization, which need not be reachable in the original
    /// program.
    pub fn absorb_config(&mut self, config: &crate::config::Config) {
        self.provenance
            .entry(config.globals.clone())
            .or_insert_with(|| config.clone());
        self.add_store(config.globals.clone());
        let pas: Vec<&PendingAsync> = config.pending.distinct().collect();
        for pa in &pas {
            self.add_pending((*pa).clone(), &config.globals);
        }
        for (i, a) in pas.iter().enumerate() {
            for (j, b) in pas.iter().enumerate() {
                // A PA co-occurs with another instance of itself only if
                // its multiplicity is at least two.
                if i == j && config.pending.count(a) < 2 {
                    continue;
                }
                self.coenabled
                    .entry(((*a).clone(), (*b).clone()))
                    .or_default()
                    .insert(config.globals.clone());
            }
        }
    }

    /// Adds a single store to the universe.
    pub fn add_store(&mut self, store: GlobalStore) {
        self.stores.insert(store);
    }

    /// Adds a pending async, recording the store at which it was enabled.
    pub fn add_pending(&mut self, pa: PendingAsync, at: &GlobalStore) {
        self.enabled_at
            .entry(pa.action.clone())
            .or_default()
            .insert((at.clone(), pa.args.clone()));
        self.pending.insert(pa);
    }

    /// Declares two pending asyncs co-enabled at `store` (both orders), used
    /// to extend the universe with synthetic cases beyond the explored
    /// instance.
    pub fn add_coenabled(&mut self, a: PendingAsync, b: PendingAsync, store: GlobalStore) {
        self.coenabled
            .entry((a.clone(), b.clone()))
            .or_default()
            .insert(store.clone());
        self.coenabled.entry((b, a)).or_default().insert(store);
    }

    /// All global stores in the universe.
    pub fn stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.stores.iter()
    }

    /// All pending asyncs in the universe.
    pub fn pending(&self) -> impl Iterator<Item = &PendingAsync> {
        self.pending.iter()
    }

    /// Pending asyncs of a particular action.
    pub fn pending_of(&self, action: &ActionName) -> impl Iterator<Item = &PendingAsync> + '_ {
        let action = action.clone();
        self.pending.iter().filter(move |pa| pa.action == action)
    }

    /// All ordered co-enabled pairs with the stores at which they co-occur.
    pub fn coenabled(
        &self,
    ) -> impl Iterator<Item = (&PendingAsync, &PendingAsync, &BTreeSet<GlobalStore>)> {
        self.coenabled.iter().map(|((a, b), s)| (a, b, s))
    }

    /// Ordered co-enabled pairs where the *first* component is a PA of
    /// `action` (the candidate mover).
    pub fn coenabled_with_first(
        &self,
        action: &ActionName,
    ) -> impl Iterator<Item = (&PendingAsync, &PendingAsync, &BTreeSet<GlobalStore>)> + '_ {
        let action = action.clone();
        self.coenabled
            .iter()
            .filter(move |((a, _), _)| a.action == action)
            .map(|((a, b), s)| (a, b, s))
    }

    /// Whether `a` and `b` are ever simultaneously pending.
    #[must_use]
    pub fn are_coenabled(&self, a: &PendingAsync, b: &PendingAsync) -> bool {
        self.coenabled.contains_key(&(a.clone(), b.clone()))
    }

    /// The `(store, args)` pairs at which a PA of `action` is present.
    pub fn enabled_at(
        &self,
        action: &ActionName,
    ) -> impl Iterator<Item = &(GlobalStore, Vec<Value>)> + '_ {
        self.enabled_at.get(action).into_iter().flatten()
    }

    /// The configuration that first contributed `store` to the universe, if
    /// `store` entered via [`absorb`](Self::absorb) /
    /// [`absorb_config`](Self::absorb_config) rather than
    /// [`add_store`](Self::add_store). Ask the originating exploration for a
    /// trace to it to obtain a concrete witness run.
    #[must_use]
    pub fn provenance(&self, store: &GlobalStore) -> Option<&crate::config::Config> {
        self.provenance.get(store)
    }

    /// Number of stores in the universe.
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Number of distinct pending asyncs in the universe.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::counter_program;
    use crate::explore::Explorer;

    #[test]
    fn universe_collects_stores_and_pas() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let u = StateUniverse::from_exploration(&exp);
        // The uninitialised store plus counter values 0, 1, 2.
        assert_eq!(u.store_count(), 4);
        // Main() plus two Inc() PAs (Inc is parameterless so dedups to one).
        assert!(u.pending_count() >= 2);
        // The two Inc PAs co-exist (multiplicity 2), so Inc is co-enabled
        // with itself.
        let inc = PendingAsync::new("Inc", vec![]);
        assert!(u.are_coenabled(&inc, &inc));
        // And the store at which they co-occur is recorded.
        let (_, _, stores) = u
            .coenabled_with_first(&"Inc".into())
            .next()
            .expect("Inc pair present");
        assert!(!stores.is_empty());
    }

    #[test]
    fn provenance_names_first_contributing_config() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let u = StateUniverse::from_exploration(&exp);
        for store in u.stores() {
            let config = u
                .provenance(store)
                .expect("absorbed stores have provenance");
            assert_eq!(&config.globals, store);
            // The provenance config is reachable, so a witness exists.
            assert!(exp.trace_to(config).is_some());
        }
        // Stores added directly (synthetic cases) carry no provenance.
        let mut u = StateUniverse::new();
        u.add_store(GlobalStore::default());
        assert!(u.provenance(&GlobalStore::default()).is_none());
    }

    #[test]
    fn synthetic_extension() {
        let mut u = StateUniverse::new();
        let a = PendingAsync::new("A", vec![]);
        let b = PendingAsync::new("B", vec![]);
        u.add_coenabled(a.clone(), b.clone(), GlobalStore::default());
        assert!(u.are_coenabled(&a, &b));
        assert!(u.are_coenabled(&b, &a));
    }
}
