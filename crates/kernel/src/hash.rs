//! A fast, deterministic hasher for exploration hot paths.
//!
//! The interner hashes every candidate value, store, and pending-async
//! exactly once, and the parallel engine hashes configurations for shard
//! routing and memo keys; profiling shows the standard library's SipHash-1-3
//! spending a double-digit share of exploration time on these. This module
//! reimplements the *Fx* multiply-rotate hash (the algorithm Firefox and
//! rustc use for their internal tables) over `std`'s [`Hasher`] trait.
//!
//! Fx is not DoS-resistant, which is exactly why `std` does not default to
//! it — but we hash *configurations of a model being checked*, not
//! attacker-controlled keys, and every table falls back to full equality on
//! probe, so a collision costs a comparison, never a wrong answer.
//! Determinism across threads is required (every engine worker must agree on
//! which shard owns a configuration), and Fx is keyless, so the same value
//! hashes identically everywhere.

use std::hash::{Hash, Hasher};

/// The Fx 64-bit multiply constant (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hashes one value to completion with a fresh [`FxHasher`].
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Combines two 64-bit hashes with one multiply-rotate round (not
/// commutative: `mix(a, b) != mix(b, a)` in general).
pub fn mix(a: u64, b: u64) -> u64 {
    (a.rotate_left(5) ^ b).wrapping_mul(SEED)
}

/// A [`Hasher`] implementing the Fx multiply-rotate scheme.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the tail length in so `"ab" + "c"` and `"a" + "bc"`
            // cannot collide trivially.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of((1u64, "abc")), hash_of((1u64, "abc")));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("ab"), hash_of("ba"));
        assert_ne!(hash_of(("ab", "c")), hash_of(("a", "bc")));
    }

    #[test]
    fn tail_bytes_contribute() {
        assert_ne!(hash_of([1u8; 9].as_slice()), hash_of([1u8; 10].as_slice()));
    }
}
