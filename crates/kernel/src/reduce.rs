//! Reduction interfaces for exploration: partial-order reduction over
//! commuting pending asyncs and symmetry quotients over node identities.
//!
//! The paper's central observation is that commutativity (mover) reasoning
//! lets one canonical interleaving stand in for exponentially many. This
//! module turns that observation into two explorer-facing reductions:
//!
//! * **Partial-order reduction** — at a configuration whose distinct pending
//!   asyncs pairwise commute with a chosen candidate, only that candidate is
//!   expanded (an *ample* singleton); the pruned interleavings are recovered
//!   by commuting every execution into the explored one. The commutation
//!   check itself ([`pair_commutes_at`]) is *localized*: it compares the
//!   joint outcome sets of firing the two pending asyncs in either order
//!   from the store in hand, including gate preservation in both directions
//!   (a gate failure or an asymmetric block after reordering counts as a
//!   conflict). [`pair_commutes_within`] extends the check one creation step
//!   at a time: a candidate must also commute with the pending asyncs the
//!   other one *creates*, evaluated at the stores where they come to exist,
//!   down to a bounded creation depth — beyond the bound the pair is
//!   conservatively treated as conflicting.
//! * **Symmetry reduction** — protocols parametric in interchangeable node
//!   identities (every case in `inseq-protocols` is) induce a permutation
//!   group on configurations; [`SymmetrySpec::canon_config`] picks the
//!   least element of each orbit so an explorer interns one representative
//!   per orbit instead of every image.
//!
//! Which reduction applies, and how the ample candidate is chosen and
//! memoized, is the policy's business: explorers consult a
//! [`ReductionPolicy`] (implemented by `inseq_engine::Reducer`) and stay
//! agnostic of the memoization strategy behind it.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::action::{ActionOutcome, PendingAsync, Transition};
use crate::cintern::ConcurrentInterner;
use crate::config::Config;
use crate::intern::{BagId, Interner, StoreId};
use crate::multiset::Multiset;
use crate::program::Program;
use crate::store::GlobalStore;

/// The canonical orbit representative of raw successor parts, interned and
/// memoized. The cache key is the raw `(store, bag)` pair — interner ids are
/// append-only, so an entry never goes stale. Shared by the sequential
/// explorer and the parallel engines so both quotient identically.
pub fn canonical_parts(
    interner: &mut Interner,
    cache: &mut HashMap<(StoreId, BagId), (StoreId, BagId)>,
    spec: &SymmetrySpec,
    raw: (StoreId, BagId),
) -> (StoreId, BagId) {
    if let Some(&canon) = cache.get(&raw) {
        return canon;
    }
    let config = Config::new(interner.store(raw.0).clone(), interner.resolve_bag(raw.1));
    let canon_config = spec.canon_config(&config);
    let canon = if canon_config == config {
        raw
    } else {
        (
            interner.intern_store(&canon_config.globals),
            interner.intern_bag(&canon_config.pending),
        )
    };
    cache.insert(raw, canon);
    canon
}

/// The concurrent counterpart of [`canonical_parts`], running against the
/// lock-free [`ConcurrentInterner`]: same
/// canonicalization and memoization contract, but resolution borrows from
/// the interner without locks and re-interning only locks the (at most two)
/// dedup shards the canonical parts hash into. The cache stays per-worker.
pub fn canonical_parts_concurrent<S: std::hash::BuildHasher>(
    interner: &ConcurrentInterner,
    cache: &mut HashMap<(StoreId, BagId), (StoreId, BagId), S>,
    spec: &SymmetrySpec,
    raw: (StoreId, BagId),
) -> (StoreId, BagId) {
    if let Some(&canon) = cache.get(&raw) {
        return canon;
    }
    let config = Config::new(interner.store(raw.0).clone(), interner.resolve_bag(raw.1));
    let canon_config = spec.canon_config(&config);
    let canon = if canon_config == config {
        raw
    } else {
        (
            interner.intern_store(&canon_config.globals),
            interner.intern_bag(&canon_config.pending),
        )
    };
    cache.insert(raw, canon);
    canon
}

/// Which reductions an exploration applies (`--reduce off|por|sym|both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceMode {
    /// No reduction: every enabled pending async of every configuration is
    /// expanded (the exhaustive baseline).
    #[default]
    Off,
    /// Partial-order reduction only.
    Por,
    /// Symmetry quotient only.
    Sym,
    /// Both reductions composed: ample expansion, then orbit
    /// canonicalization of each successor.
    Both,
}

impl ReduceMode {
    /// Every mode, in CLI presentation order.
    pub const ALL: [ReduceMode; 4] = [
        ReduceMode::Off,
        ReduceMode::Por,
        ReduceMode::Sym,
        ReduceMode::Both,
    ];

    /// The CLI name of the mode (`--reduce <name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReduceMode::Off => "off",
            ReduceMode::Por => "por",
            ReduceMode::Sym => "sym",
            ReduceMode::Both => "both",
        }
    }

    /// Parses a CLI name, case-insensitively.
    #[must_use]
    pub fn from_name(name: &str) -> Option<ReduceMode> {
        Self::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// Whether partial-order reduction is on.
    #[must_use]
    pub fn por(self) -> bool {
        matches!(self, ReduceMode::Por | ReduceMode::Both)
    }

    /// Whether symmetry reduction is on.
    #[must_use]
    pub fn sym(self) -> bool {
        matches!(self, ReduceMode::Sym | ReduceMode::Both)
    }
}

impl fmt::Display for ReduceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Renames node identities inside a global store under a permutation.
pub type PermuteStore = Arc<dyn Fn(&GlobalStore, &[i64]) -> GlobalStore + Send + Sync>;
/// Renames node identities inside a pending async under a permutation.
pub type PermutePa = Arc<dyn Fn(&PendingAsync, &[i64]) -> PendingAsync + Send + Sync>;

/// A process-identity symmetry of a program: a permutation group on node
/// ids `1..=N` together with its action on stores and pending asyncs.
///
/// A spec is **sound** for a program when every permutation is an
/// automorphism of the transition relation (renaming nodes in a
/// configuration renames them identically in its successors, failures and
/// deadlocks) and the initial configuration is fixed by every permutation.
/// Protocol constructors vouch for this; the proptest suite checks
/// canonicalization laws (idempotence, permutation invariance) on reachable
/// configurations.
#[derive(Clone)]
pub struct SymmetrySpec {
    /// Non-identity permutations; `perms[k][i - 1]` is the image of node
    /// `i`. Values outside `1..=N` are left unchanged by convention.
    perms: Vec<Vec<i64>>,
    permute_store: PermuteStore,
    permute_pa: PermutePa,
}

impl fmt::Debug for SymmetrySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymmetrySpec")
            .field("perms", &self.perms)
            .finish_non_exhaustive()
    }
}

/// All permutations of `1..=n` except the identity, each as the image
/// vector `perm[i - 1] = π(i)`. The full symmetric group for small `n`;
/// callers should keep `n` tiny (the group has `n!` elements).
#[must_use]
pub fn node_permutations(n: i64) -> Vec<Vec<i64>> {
    fn heap(out: &mut Vec<Vec<i64>>, xs: &mut Vec<i64>, k: usize) {
        if k <= 1 {
            out.push(xs.clone());
            return;
        }
        for i in 0..k {
            heap(out, xs, k - 1);
            if k.is_multiple_of(2) {
                xs.swap(i, k - 1);
            } else {
                xs.swap(0, k - 1);
            }
        }
    }
    let mut all = Vec::new();
    let mut xs: Vec<i64> = (1..=n).collect();
    let identity = xs.clone();
    let k = xs.len();
    heap(&mut all, &mut xs, k);
    all.retain(|p| *p != identity);
    all.sort_unstable();
    all.dedup();
    all
}

impl SymmetrySpec {
    /// Creates a spec from explicit permutations (identity entries are
    /// dropped; canonicalization always considers the identity image).
    #[must_use]
    pub fn new(perms: Vec<Vec<i64>>, permute_store: PermuteStore, permute_pa: PermutePa) -> Self {
        let perms = perms
            .into_iter()
            .filter(|p| p.iter().enumerate().any(|(i, &v)| v != i as i64 + 1))
            .collect();
        SymmetrySpec {
            perms,
            permute_store,
            permute_pa,
        }
    }

    /// The non-identity permutations of the group.
    #[must_use]
    pub fn perms(&self) -> &[Vec<i64>] {
        &self.perms
    }

    /// The image of a store under one permutation.
    #[must_use]
    pub fn permute_store(&self, store: &GlobalStore, perm: &[i64]) -> GlobalStore {
        (self.permute_store)(store, perm)
    }

    /// The image of a pending async under one permutation.
    #[must_use]
    pub fn permute_pa(&self, pa: &PendingAsync, perm: &[i64]) -> PendingAsync {
        (self.permute_pa)(pa, perm)
    }

    /// The image of a configuration under one permutation.
    #[must_use]
    pub fn permute_config(&self, config: &Config, perm: &[i64]) -> Config {
        let globals = self.permute_store(&config.globals, perm);
        let mut pending = Multiset::new();
        for (pa, n) in config.pending.iter_counts() {
            pending.insert_n(self.permute_pa(pa, perm), n);
        }
        Config::new(globals, pending)
    }

    /// The canonical representative of a configuration's orbit: the least
    /// image (in `Config`'s derived order) over the group including the
    /// identity.
    #[must_use]
    pub fn canon_config(&self, config: &Config) -> Config {
        let mut best = config.clone();
        for perm in &self.perms {
            let image = self.permute_config(config, perm);
            if image < best {
                best = image;
            }
        }
        best
    }

    /// All images of a store under the group, including the identity.
    #[must_use]
    pub fn orbit_stores(&self, store: &GlobalStore) -> BTreeSet<GlobalStore> {
        let mut orbit = BTreeSet::new();
        orbit.insert(store.clone());
        for perm in &self.perms {
            orbit.insert(self.permute_store(store, perm));
        }
        orbit
    }

    /// Closes a set of terminal stores under the group. A quotient
    /// exploration reports orbit representatives; expanding them recovers
    /// the full terminal-store set of the unreduced exploration (which is
    /// group-closed whenever the initial configuration is symmetric).
    #[must_use]
    pub fn expand_terminals<'a>(
        &self,
        terminals: impl IntoIterator<Item = &'a GlobalStore>,
    ) -> BTreeSet<GlobalStore> {
        let mut out = BTreeSet::new();
        for t in terminals {
            out.extend(self.orbit_stores(t));
        }
        out
    }
}

/// Creation-closure depth bound of [`pair_commutes_within`]: how many
/// levels of created pending asyncs a candidate is checked against before
/// the pair is conservatively declared conflicting.
pub const PAIR_CLOSURE_DEPTH: u32 = 3;

/// The joint outcome set of firing `firsts` (the transitions of one pending
/// async) and then `second` from each resulting store: every
/// `(final store, created-by-both)` pair. `None` when `second`'s gate fails
/// after some first transition (the reordering is not failure-preserving)
/// or when evaluation errors.
fn joint_outcomes(
    program: &Program,
    firsts: &[Transition],
    second: &PendingAsync,
) -> Option<BTreeSet<(GlobalStore, Multiset<PendingAsync>)>> {
    let mut out = BTreeSet::new();
    for t in firsts {
        match program.eval_pa(&t.globals, second).ok()? {
            ActionOutcome::Failure { .. } => return None,
            ActionOutcome::Transitions(ts) => {
                for t2 in ts {
                    let mut created = t.created.clone();
                    for (pa, n) in t2.created.iter_counts() {
                        created.insert_n(pa.clone(), n);
                    }
                    out.insert((t2.globals, created));
                }
            }
        }
    }
    Some(out)
}

/// Whether two pending asyncs **commute at** `store`: neither gate fails
/// outright or after the other fires, and the joint outcome sets of the two
/// firing orders are equal. The set comparison catches asymmetric blocking
/// (one order yields successors the other cannot), so commuting pairs span
/// full diamonds. Conservative: any evaluation error counts as a conflict.
///
/// This is the localized, store-specific form of the mover conditions that
/// `inseq-mover` discharges over a whole state universe; see
/// `inseq_mover::local` for the consistency bridge between the two.
#[must_use]
pub fn pair_commutes_at(
    program: &Program,
    p: &PendingAsync,
    q: &PendingAsync,
    store: &GlobalStore,
) -> bool {
    let Ok(out_p) = program.eval_pa(store, p) else {
        return false;
    };
    let Ok(out_q) = program.eval_pa(store, q) else {
        return false;
    };
    let (ActionOutcome::Transitions(tp), ActionOutcome::Transitions(tq)) = (&out_p, &out_q) else {
        return false;
    };
    let Some(pq) = joint_outcomes(program, tp, q) else {
        return false;
    };
    let Some(qp) = joint_outcomes(program, tq, p) else {
        return false;
    };
    pq == qp
}

/// Whether `p` commutes with `q` at `store` **and** with everything `q`
/// creates, transitively, down to `depth` creation levels. Each created
/// pending async is checked at the store where it comes to exist (the
/// creating transition's post-store), so conflicts between `p` and tasks
/// that are not yet pending — the blind spot of a purely local pair check —
/// are caught as long as they surface within the depth bound. At depth 0 a
/// creating `q` is conservatively declared conflicting.
#[must_use]
pub fn pair_commutes_within(
    program: &Program,
    p: &PendingAsync,
    q: &PendingAsync,
    store: &GlobalStore,
    depth: u32,
) -> bool {
    if !pair_commutes_at(program, p, q, store) {
        return false;
    }
    let Ok(ActionOutcome::Transitions(tq)) = program.eval_pa(store, q) else {
        return false;
    };
    for t in &tq {
        if t.created.is_empty() {
            continue;
        }
        if depth == 0 {
            return false;
        }
        for created in t.created.distinct() {
            if !pair_commutes_within(program, p, created, &t.globals, depth - 1) {
                return false;
            }
        }
    }
    true
}

/// An exploration reduction policy, consulted by both the sequential
/// explorer ([`crate::Explorer::with_reduction`]) and the parallel engines.
///
/// Implementations own their memoization; the explorer only sees the
/// decision.
pub trait ReductionPolicy: Sync {
    /// Chooses an **ample singleton** among the distinct pending asyncs of a
    /// configuration (`pending` pairs each with its multiplicity), or `None`
    /// for full expansion. A `Some(i)` return guarantees:
    ///
    /// * no pending async fails at `store` (a failing configuration is
    ///   always fully expanded so every violation is recorded),
    /// * `pending[i]` has at least one enabled transition at `store` (ample
    ///   expansion always makes progress, so deadlock detection is
    ///   unaffected), and
    /// * `pending[i]` commutes with every other pending async — including
    ///   further instances of itself when its multiplicity exceeds one —
    ///   and with their creation closures, in the sense of
    ///   [`pair_commutes_within`].
    fn ample(
        &self,
        program: &Program,
        store: &GlobalStore,
        pending: &[(PendingAsync, usize)],
    ) -> Option<usize>;

    /// The symmetry quotient to canonicalize successors under, if any.
    fn symmetry(&self) -> Option<&SymmetrySpec>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{NativeAction, Transition};
    use crate::program::{GlobalSchema, Program};
    use crate::value::Value;

    fn writer(slot: usize, v: i64) -> NativeAction {
        NativeAction::new("W", 0, move |g: &GlobalStore, _: &[Value]| {
            let mut g = g.clone();
            g.set(slot, Value::Int(v));
            ActionOutcome::Transitions(vec![Transition::new(g, Multiset::new())])
        })
    }

    fn two_slot_program() -> Program {
        let mut b = Program::builder(GlobalSchema::new(["a", "b"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                let mut created = Multiset::new();
                created.insert(PendingAsync::new("A", vec![]));
                created.insert(PendingAsync::new("B", vec![]));
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
            }),
        );
        b.action("A", writer(0, 1));
        b.action("B", writer(1, 1));
        // C writes slot 0 too: conflicts with A (last write wins differs).
        b.action("C", writer(0, 2));
        b.build().unwrap()
    }

    #[test]
    fn disjoint_writers_commute() {
        let p = two_slot_program();
        let g = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let a = PendingAsync::new("A", vec![]);
        let b = PendingAsync::new("B", vec![]);
        assert!(pair_commutes_at(&p, &a, &b, &g));
        assert!(pair_commutes_at(&p, &b, &a, &g));
    }

    #[test]
    fn same_slot_writers_conflict() {
        let p = two_slot_program();
        let g = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let a = PendingAsync::new("A", vec![]);
        let c = PendingAsync::new("C", vec![]);
        assert!(!pair_commutes_at(&p, &a, &c, &g));
    }

    #[test]
    fn gate_failure_after_reorder_is_a_conflict() {
        // A sets x := 1; D asserts x == 0. Firing A first makes D fail, so
        // the pair must not commute even though D succeeds before A.
        let mut b = Program::builder(GlobalSchema::new(["x"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), Multiset::new())])
            }),
        );
        b.action("A", writer(0, 1));
        b.action(
            "D",
            NativeAction::new("D", 0, |g: &GlobalStore, _: &[Value]| {
                if g.get(0) == &Value::Int(0) {
                    ActionOutcome::Transitions(vec![Transition::new(g.clone(), Multiset::new())])
                } else {
                    ActionOutcome::Failure {
                        reason: "x must be 0".into(),
                    }
                }
            }),
        );
        let p = b.build().unwrap();
        let g = GlobalStore::new(vec![Value::Int(0)]);
        let a = PendingAsync::new("A", vec![]);
        let d = PendingAsync::new("D", vec![]);
        assert!(!pair_commutes_at(&p, &a, &d, &g));
    }

    #[test]
    fn asymmetric_blocking_is_a_conflict() {
        // E is enabled only while x == 0; A sets x := 1. A-then-E blocks
        // where E-then-A proceeds, so the outcome sets differ.
        let mut b = Program::builder(GlobalSchema::new(["x", "y"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), Multiset::new())])
            }),
        );
        b.action("A", writer(0, 1));
        b.action(
            "E",
            NativeAction::new("E", 0, |g: &GlobalStore, _: &[Value]| {
                if g.get(0) == &Value::Int(0) {
                    let mut g = g.clone();
                    g.set(1, Value::Int(1));
                    ActionOutcome::Transitions(vec![Transition::new(g, Multiset::new())])
                } else {
                    ActionOutcome::blocked()
                }
            }),
        );
        let p = b.build().unwrap();
        let g = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let a = PendingAsync::new("A", vec![]);
        let e = PendingAsync::new("E", vec![]);
        assert!(!pair_commutes_at(&p, &a, &e, &g));
    }

    #[test]
    fn creation_closure_catches_spawned_conflicts() {
        // B spawns C; C's behaviour depends on the slot A writes. A and B
        // commute locally, but A must not be ample past B's creation.
        let mut b = Program::builder(GlobalSchema::new(["x", "y"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), Multiset::new())])
            }),
        );
        b.action("A", writer(0, 1));
        b.action(
            "B",
            NativeAction::new("B", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(
                    g.clone(),
                    Multiset::singleton(PendingAsync::new("C", vec![])),
                )])
            }),
        );
        b.action(
            "C",
            NativeAction::new("C", 0, |g: &GlobalStore, _: &[Value]| {
                if g.get(0) == &Value::Int(0) {
                    let mut g = g.clone();
                    g.set(1, Value::Int(1));
                    ActionOutcome::Transitions(vec![Transition::new(g, Multiset::new())])
                } else {
                    ActionOutcome::Transitions(vec![Transition::new(g.clone(), Multiset::new())])
                }
            }),
        );
        let p = b.build().unwrap();
        let g = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let a = PendingAsync::new("A", vec![]);
        let bb = PendingAsync::new("B", vec![]);
        assert!(pair_commutes_at(&p, &a, &bb, &g), "locally they commute");
        assert!(
            !pair_commutes_within(&p, &a, &bb, &g, PAIR_CLOSURE_DEPTH),
            "the creation closure exposes the conflict with C"
        );
    }

    #[test]
    fn reduce_mode_names_round_trip() {
        for m in ReduceMode::ALL {
            assert_eq!(ReduceMode::from_name(m.name()), Some(m));
        }
        assert_eq!(ReduceMode::from_name("BOTH"), Some(ReduceMode::Both));
        assert_eq!(ReduceMode::from_name("nope"), None);
        assert!(ReduceMode::Both.por() && ReduceMode::Both.sym());
        assert!(!ReduceMode::Off.por() && !ReduceMode::Off.sym());
    }

    #[test]
    fn node_permutations_enumerate_the_symmetric_group() {
        assert_eq!(node_permutations(1), Vec::<Vec<i64>>::new());
        assert_eq!(node_permutations(2), vec![vec![2, 1]]);
        assert_eq!(node_permutations(3).len(), 5);
    }

    fn swap_spec() -> SymmetrySpec {
        // One Int slot holding a node id in 1..=2.
        let permute_store: PermuteStore = Arc::new(|g, perm| {
            let Value::Int(n) = *g.get(0) else {
                return g.clone();
            };
            let mapped = if (1..=perm.len() as i64).contains(&n) {
                perm[(n - 1) as usize]
            } else {
                n
            };
            GlobalStore::new(vec![Value::Int(mapped)])
        });
        let permute_pa: PermutePa = Arc::new(|pa, _| pa.clone());
        SymmetrySpec::new(node_permutations(2), permute_store, permute_pa)
    }

    #[test]
    fn canon_is_idempotent_and_orbit_invariant() {
        let spec = swap_spec();
        for n in 1..=2 {
            let c = Config::new(
                GlobalStore::new(vec![Value::Int(n)]),
                Multiset::singleton(PendingAsync::new("Main", vec![])),
            );
            let canon = spec.canon_config(&c);
            assert_eq!(spec.canon_config(&canon), canon);
            for perm in spec.perms() {
                assert_eq!(spec.canon_config(&spec.permute_config(&c, perm)), canon);
            }
        }
        // Both orbit members canonicalize to node 1.
        let c2 = Config::new(GlobalStore::new(vec![Value::Int(2)]), Multiset::new());
        assert_eq!(
            spec.canon_config(&c2).globals,
            GlobalStore::new(vec![Value::Int(1)])
        );
    }

    #[test]
    fn expand_terminals_recovers_the_orbit() {
        let spec = swap_spec();
        let rep = GlobalStore::new(vec![Value::Int(1)]);
        let expanded = spec.expand_terminals([&rep]);
        assert_eq!(expanded.len(), 2);
        assert!(expanded.contains(&GlobalStore::new(vec![Value::Int(2)])));
    }
}
