//! Property-based tests for kernel semantics: exploration determinism,
//! summary monotonicity, and diamond confluence of commuting actions.

use proptest::prelude::*;

use inseq_kernel::{
    ActionOutcome, Config, Explorer, GlobalSchema, GlobalStore, Multiset, NativeAction,
    PendingAsync, Program, StateUniverse, Transition, Value,
};

/// A program with `adders` increment tasks and `doublers` ×2 tasks over one
/// counter. Adders commute with adders; doublers commute with doublers; the
/// two kinds do not commute.
fn mixed_program(adders: usize, doublers: usize) -> (Program, Config) {
    let mut b = Program::builder(GlobalSchema::new(["x"]));
    b.action(
        "Main",
        NativeAction::new("Main", 0, move |g: &GlobalStore, _: &[Value]| {
            let mut created = Multiset::new();
            for _ in 0..adders {
                created.insert(PendingAsync::new("Add", vec![]));
            }
            for _ in 0..doublers {
                created.insert(PendingAsync::new("Double", vec![]));
            }
            ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
        }),
    );
    b.action(
        "Add",
        NativeAction::new("Add", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(
                g.with(0, Value::Int(g.get(0).as_int() + 1)),
            )])
        }),
    );
    b.action(
        "Double",
        NativeAction::new("Double", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(
                g.with(0, Value::Int(g.get(0).as_int() * 2)),
            )])
        }),
    );
    let p = b.build().unwrap();
    let init = p
        .initial_config_with(GlobalStore::new(vec![Value::Int(1)]), vec![])
        .unwrap();
    (p, init)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn exploration_is_deterministic(adders in 0usize..4, doublers in 0usize..3) {
        let (p, init) = mixed_program(adders, doublers);
        let a = Explorer::new(&p).explore([init.clone()]).unwrap();
        let b = Explorer::new(&p).explore([init]).unwrap();
        prop_assert_eq!(a.config_count(), b.config_count());
        prop_assert_eq!(a.edge_count(), b.edge_count());
        let ta: Vec<_> = a.terminal_stores().collect();
        let tb: Vec<_> = b.terminal_stores().collect();
        prop_assert_eq!(ta, tb);
    }

    #[test]
    fn terminal_count_matches_interleaving_semantics(adders in 0usize..4, doublers in 0usize..3) {
        // Final value = ((1 * 2^d_before_adds …)) — order matters between
        // kinds, so the number of distinct terminal stores equals the number
        // of distinct values of interleaving d doublings and a increments.
        let (p, init) = mixed_program(adders, doublers);
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let finals: std::collections::BTreeSet<i64> =
            exp.terminal_stores().map(|s| s.get(0).as_int()).collect();
        // Compute expected set by brute-force recursion.
        fn go(x: i64, a: usize, d: usize, acc: &mut std::collections::BTreeSet<i64>) {
            if a == 0 && d == 0 {
                acc.insert(x);
                return;
            }
            if a > 0 {
                go(x + 1, a - 1, d, acc);
            }
            if d > 0 {
                go(x * 2, a, d - 1, acc);
            }
        }
        let mut expected = std::collections::BTreeSet::new();
        go(1, adders, doublers, &mut expected);
        prop_assert_eq!(finals, expected);
    }

    #[test]
    fn summaries_are_subsets_of_explorations(adders in 1usize..4, doublers in 0usize..2) {
        let (p, init) = mixed_program(adders, doublers);
        let summary = Explorer::new(&p).summarize(init.clone()).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        prop_assert!(summary.good);
        for t in &summary.terminal {
            prop_assert!(exp.terminal_stores().any(|s| s == t));
        }
    }

    #[test]
    fn universe_contains_every_reachable_store(adders in 0usize..4, doublers in 0usize..3) {
        let (p, init) = mixed_program(adders, doublers);
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let u = StateUniverse::from_exploration(&exp);
        for c in exp.configs() {
            prop_assert!(u.stores().any(|s| s == &c.globals));
        }
        prop_assert_eq!(
            u.store_count(),
            exp.configs()
                .map(|c| c.globals.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }

    #[test]
    fn execution_reaching_finds_every_terminal(adders in 0usize..3, doublers in 0usize..3) {
        let (p, init) = mixed_program(adders, doublers);
        let exp = Explorer::new(&p).explore([init.clone()]).unwrap();
        for c in exp.configs().filter(|c| c.is_terminal()) {
            let path = exp.execution_reaching(c).expect("reachable");
            if adders + doublers > 0 {
                prop_assert_eq!(path.first().unwrap(), &init);
                prop_assert_eq!(path.last().unwrap(), c);
                // Each path fires Main once then every task once.
                prop_assert_eq!(path.len(), 1 + adders + doublers);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn value_ordering_is_consistent_with_equality(a in -10i64..10, b in -10i64..10) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        prop_assert_eq!(va == vb, a == b);
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn insert_n_then_remove_one_round_trips(
        items in proptest::collection::vec((0u8..5, 1usize..4), 0..6),
        probe in 0u8..5,
    ) {
        // insert_n(x, n) is n single inserts; remove_one undoes exactly one.
        let mut bulk: Multiset<Value> = Multiset::new();
        let mut singles: Multiset<Value> = Multiset::new();
        for &(item, n) in &items {
            let v = Value::Int(i64::from(item));
            bulk.insert_n(v.clone(), n);
            for _ in 0..n {
                singles.insert(v.clone());
            }
        }
        prop_assert_eq!(&bulk, &singles, "insert_n must equal repeated insert");
        prop_assert_eq!(bulk.len(), items.iter().map(|&(_, n)| n).sum::<usize>());

        // insert_n(x, 0) is the identity.
        let before = bulk.clone();
        bulk.insert_n(Value::Int(i64::from(probe)), 0);
        prop_assert_eq!(&bulk, &before, "insert_n(_, 0) must be a no-op");

        // One insert_n then one remove_one of the same element round-trips.
        let v = Value::Int(i64::from(probe));
        let count_before = bulk.count(&v);
        bulk.insert_n(v.clone(), 3);
        prop_assert_eq!(bulk.count(&v), count_before + 3);
        prop_assert!(bulk.remove_one(&v), "just-inserted element must be removable");
        prop_assert_eq!(bulk.count(&v), count_before + 2);
        prop_assert!(bulk.remove_one(&v));
        prop_assert!(bulk.remove_one(&v));
        prop_assert_eq!(&bulk, &before, "remove_one ×3 must undo insert_n(_, 3)");

        // remove_one drains to absence, never to a zero-count entry.
        let mut drain = before.clone();
        let total = drain.count(&v);
        for left in (0..total).rev() {
            prop_assert!(drain.remove_one(&v));
            prop_assert_eq!(drain.count(&v), left);
        }
        prop_assert!(!drain.contains(&v), "drained element must be gone");
        prop_assert!(!drain.remove_one(&v), "removing an absent element reports false");
        prop_assert!(
            drain.iter_counts().all(|(_, c)| c > 0),
            "no zero-count entries may linger"
        );
    }

    #[test]
    fn multiset_iteration_is_canonically_sorted(
        items in proptest::collection::vec((-20i64..20, 1usize..4), 0..10),
    ) {
        // However elements arrive, distinct()/iter_counts()/iter() walk them
        // in strictly ascending order — the canonical form config identity,
        // interning, and the corpus serializer all rely on.
        let mut forward: Multiset<Value> = Multiset::new();
        for &(item, n) in &items {
            forward.insert_n(Value::Int(item), n);
        }
        let mut backward: Multiset<Value> = Multiset::new();
        for &(item, n) in items.iter().rev() {
            for _ in 0..n {
                backward.insert(Value::Int(item));
            }
        }
        prop_assert_eq!(&forward, &backward, "insertion order must not matter");

        let distinct: Vec<&Value> = forward.distinct().collect();
        prop_assert!(
            distinct.windows(2).all(|w| w[0] < w[1]),
            "distinct() must be strictly ascending: {:?}",
            distinct
        );
        let by_counts: Vec<&Value> = forward.iter_counts().map(|(v, _)| v).collect();
        prop_assert_eq!(by_counts, distinct.clone(), "iter_counts() order must match distinct()");
        let mut flat: Vec<&Value> = forward.iter().collect();
        prop_assert!(
            flat.windows(2).all(|w| w[0] <= w[1]),
            "iter() must be ascending with repeats adjacent"
        );
        flat.dedup();
        prop_assert_eq!(flat, distinct, "iter() must flatten iter_counts() exactly");
    }

    #[test]
    fn config_equality_is_structural(pas in proptest::collection::vec(0u8..4, 0..6)) {
        let mk = |items: &[u8]| {
            let pending: Multiset<PendingAsync> = items
                .iter()
                .map(|i| PendingAsync::new("T", vec![Value::Int(i64::from(*i))]))
                .collect();
            Config::new(GlobalStore::new(vec![Value::Int(0)]), pending)
        };
        let mut shuffled = pas.clone();
        shuffled.reverse();
        prop_assert_eq!(mk(&pas), mk(&shuffled), "multisets ignore insertion order");
    }
}
