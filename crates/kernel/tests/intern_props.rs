//! Property-based tests for the hash-consing interner: interning is a
//! *bijection* between distinct structural values and ids, so the interned
//! representation preserves `Eq`, `Ord`, and `Hash` of the plain one
//! exactly — on randomized deeply nested [`Value`]s and on randomized
//! [`Config`]s.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use inseq_kernel::{Config, GlobalStore, Interner, Map, Multiset, PendingAsync, Value};

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Randomized values covering every [`Value`] variant, nested up to three
/// levels deep.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        (false..true).prop_map(Value::Bool),
        (-8i64..8).prop_map(Value::Int),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Value::some),
            Just(Value::none()),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Tuple),
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| Value::Set(items.into_iter().collect())),
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| Value::Bag(items.into_iter().collect())),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            (
                inner.clone(),
                proptest::collection::vec((inner.clone(), inner), 0..3)
            )
                .prop_map(|(default, entries)| {
                    let mut map = Map::new(default);
                    for (k, v) in entries {
                        map.set_in_place(k, v);
                    }
                    Value::Map(map)
                }),
        ]
    })
}

/// Randomized configurations: a small global store plus a bag of pending
/// asyncs over a few action names with value arguments.
fn config_strategy() -> impl Strategy<Value = Config> {
    let store = proptest::collection::vec(value_strategy(), 1..4).prop_map(GlobalStore::new);
    let name = prop_oneof![Just("A"), Just("B")];
    let pa = (name, proptest::collection::vec(value_strategy(), 0..2))
        .prop_map(|(name, args)| PendingAsync::new(name, args));
    let bag = proptest::collection::vec(pa, 0..5)
        .prop_map(|pas| pas.into_iter().collect::<Multiset<PendingAsync>>());
    (store, bag).prop_map(|(globals, pending)| Config::new(globals, pending))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: resolving an interned value yields a structurally equal
    /// value, so `Eq`/`Ord`/`Hash` are preserved verbatim.
    #[test]
    fn value_roundtrip_preserves_eq_ord_hash(v in value_strategy()) {
        let mut interner = Interner::new();
        let id = interner.intern_value(&v);
        let back = interner.value(id).clone();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(back.cmp(&v), std::cmp::Ordering::Equal);
        prop_assert_eq!(hash_of(&back), hash_of(&v));
    }

    /// Id identity mirrors structural identity: two values receive the same
    /// id exactly when they are equal, and id order/hash agreement mirrors
    /// value equality (ids are assigned in first-intern order, so only
    /// *equality* transfers to the id domain — which is the O(1) property
    /// the explorer relies on).
    #[test]
    fn value_ids_are_injective(a in value_strategy(), b in value_strategy()) {
        let mut interner = Interner::new();
        let ia = interner.intern_value(&a);
        let ib = interner.intern_value(&b);
        prop_assert_eq!(ia == ib, a == b);
        if a == b {
            prop_assert_eq!(ia.cmp(&ib), std::cmp::Ordering::Equal);
            prop_assert_eq!(hash_of(&ia), hash_of(&ib));
        } else {
            prop_assert_eq!(interner.value(ia), &a);
            prop_assert_eq!(interner.value(ib), &b);
        }
    }

    /// Config round trip: `resolve_config(intern_config(c)) == c`, interning
    /// is idempotent (`fresh` only on first sight), and id equality mirrors
    /// config equality.
    #[test]
    fn config_roundtrip_and_id_identity(a in config_strategy(), b in config_strategy()) {
        let mut interner = Interner::new();
        let (ia, fresh_a) = interner.intern_config(&a);
        prop_assert!(fresh_a);
        let (ia2, fresh_a2) = interner.intern_config(&a);
        prop_assert_eq!(ia, ia2);
        prop_assert!(!fresh_a2);
        let (ib, _) = interner.intern_config(&b);
        prop_assert_eq!(ia == ib, a == b);
        let ra = interner.resolve_config(ia);
        let rb = interner.resolve_config(ib);
        prop_assert_eq!(&ra, &a);
        prop_assert_eq!(&rb, &b);
        prop_assert_eq!(hash_of(&ra), hash_of(&a));
        prop_assert_eq!(ra.cmp(&a), std::cmp::Ordering::Equal);
    }

    /// Store interning through the diff path agrees with full interning:
    /// diffing against any parent, with or without a (correct) write-set
    /// hint, must yield the same id as interning from scratch.
    #[test]
    fn store_diff_agrees_with_full_intern(
        base in proptest::collection::vec(value_strategy(), 1..4),
        patch in value_strategy(),
        slot in 0usize..4,
    ) {
        let parent = GlobalStore::new(base.clone());
        let slot = slot % base.len();
        let mut changed = base;
        changed[slot] = patch;
        let new = GlobalStore::new(changed);

        let mut a = Interner::new();
        let pid = a.intern_store(&parent);
        let diffed = a.intern_store_diff(pid, &new, None);
        let hinted = a.intern_store_diff(pid, &new, Some(&[slot]));
        let full = a.intern_store(&new);
        prop_assert_eq!(diffed, full);
        prop_assert_eq!(hinted, full);
        prop_assert_eq!(a.store(full), &new);
    }

    /// Bags: interning a multiset of pending asyncs round-trips, and
    /// `bag_after` (the explorer's successor-bag constructor) agrees with
    /// plain multiset semantics.
    #[test]
    fn bag_roundtrip(c in config_strategy()) {
        let mut interner = Interner::new();
        let id = interner.intern_bag(&c.pending);
        prop_assert_eq!(&interner.resolve_bag(id), &c.pending);
        prop_assert_eq!(interner.find_bag(&c.pending), Some(id));
    }
}
