//! Rendering deadlock witnesses: `render_trace` on the traces produced by
//! `Exploration::deadlock_witnesses` must show the full Fig. 2-style firing
//! sequence ending in the stuck cloud.

use inseq_kernel::render::{render_trace, RenderOptions};
use inseq_kernel::{
    ActionOutcome, Explorer, GlobalSchema, GlobalStore, Multiset, NativeAction, PendingAsync,
    Program, Transition, Value,
};

/// `Main` records that it ran and leaves one `Stuck` task whose gate never
/// opens: the unique deadlock is `{Stuck()}`.
fn stuck_program() -> Program {
    let mut b = Program::builder(GlobalSchema::new(["ran"]));
    b.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::new(
                g.with(0, Value::Int(1)),
                Multiset::singleton(PendingAsync::new("Stuck", vec![])),
            )])
        }),
    );
    b.action(
        "Stuck",
        NativeAction::new("Stuck", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::blocked()
        }),
    );
    b.build().expect("stuck program is well-formed")
}

#[test]
fn deadlock_witness_renders_the_firing_sequence_to_the_stuck_cloud() {
    let p = stuck_program();
    let init = p.initial_config(vec![]).expect("Main has arity 0");
    let exploration = Explorer::new(&p).explore([init]).expect("tiny state space");
    assert!(exploration.has_deadlock(), "Stuck never fires");

    let witnesses = exploration.deadlock_witnesses();
    assert_eq!(witnesses.len(), 1, "exactly one deadlocked configuration");
    let trace = &witnesses[0];
    assert_eq!(
        trace.firings().map(ToString::to_string).collect::<Vec<_>>(),
        ["Main()"],
        "shortest witness fires Main once"
    );

    let rendered = render_trace(trace, p.schema(), RenderOptions::default());
    assert_eq!(rendered, "{Main()}\n  --Main()-->\n{Stuck()}\n");

    let with_stores = render_trace(trace, p.schema(), RenderOptions { show_stores: true });
    let mut lines = with_stores.lines();
    let first = lines.next().expect("initial cloud line");
    assert!(
        first.starts_with("{Main()}  @ ") && first.contains("ran"),
        "store rendering must name the schema slot: {first:?}"
    );
    assert_eq!(lines.next(), Some("  --Main()-->"));
    let last = lines.next().expect("deadlocked cloud line");
    assert!(
        last.starts_with("{Stuck()}  @ ") && last.contains("ran = 1"),
        "deadlocked cloud must carry the post-Main store: {last:?}"
    );
}

#[test]
fn an_initially_deadlocked_configuration_has_an_empty_witness() {
    let p = stuck_program();
    let init = inseq_kernel::Config::new(
        GlobalStore::new(vec![Value::Int(0)]),
        Multiset::singleton(PendingAsync::new("Stuck", vec![])),
    );
    let exploration = Explorer::new(&p).explore([init]).expect("one config");
    let witnesses = exploration.deadlock_witnesses();
    assert_eq!(witnesses.len(), 1);
    assert!(witnesses[0].steps.is_empty(), "no firing needed");
    assert_eq!(
        render_trace(&witnesses[0], p.schema(), RenderOptions::default()),
        "(empty execution)"
    );
}
