//! Stress and equivalence tests for the lock-free sharded
//! [`ConcurrentInterner`].
//!
//! The stress test hammers one shared interner from many threads with a
//! mixed intern/resolve workload drawn from a small value universe (so
//! dedup races are frequent) and then checks the two invariants every
//! explorer relies on: an id always resolves to the value that was
//! interned under it, and ids are canonical — two threads interning equal
//! values get the same id, distinct values never share one.
//!
//! The proptest drives the sharded interner and the sequential
//! [`Interner`] through identical operation sequences and requires them to
//! be observationally equivalent: same fresh/duplicate verdicts, same
//! resolved objects, same dedup counts.

use std::collections::HashMap;

use inseq_kernel::{
    ConcurrentInterner, Config, GlobalStore, Interner, Multiset, PendingAsync, Value,
};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 100_000;

/// Deterministic per-thread pseudo-random stream (an LCG — no external
/// dependencies, reproducible failures).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

const ACTIONS: [&str; 3] = ["Alpha", "Beta", "Gamma"];

fn mk_value(r: u64) -> Value {
    Value::Int((r % 64) as i64)
}

fn mk_pa(r: u64) -> PendingAsync {
    PendingAsync::new(
        ACTIONS[(r % 3) as usize],
        vec![
            Value::Int((r % 8) as i64),
            Value::Int(((r >> 8) % 4) as i64),
        ],
    )
}

fn mk_bag(r: u64) -> Multiset<PendingAsync> {
    let mut bag = Multiset::new();
    bag.insert_n(mk_pa(r), 1 + (r % 3) as usize);
    if r.is_multiple_of(2) {
        bag.insert_n(mk_pa(r >> 16), 1);
    }
    bag
}

fn mk_config(r: u64) -> Config {
    let store = GlobalStore::new(vec![
        Value::Int((r % 5) as i64),
        Value::Int(((r >> 4) % 5) as i64),
    ]);
    Config::new(store, mk_bag(r >> 8))
}

/// What one thread observed: every id it was handed, paired with the value
/// it interned (or resolved) under that id.
#[derive(Default)]
struct Observations {
    values: Vec<(Value, inseq_kernel::ValueId)>,
    pas: Vec<(PendingAsync, inseq_kernel::PaId)>,
    bags: Vec<(Multiset<PendingAsync>, inseq_kernel::BagId)>,
    configs: Vec<(Config, inseq_kernel::ConfigId)>,
}

/// 8 threads × 100k mixed intern/resolve operations against one shared
/// interner; afterwards every recorded id must resolve to its original
/// value and the value → id mapping must be a bijection on the observed
/// universe.
#[test]
fn concurrent_intern_stress_ids_are_canonical_and_resolve() {
    let interner = ConcurrentInterner::new();
    let logs: Vec<Observations> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let interner = &interner;
                scope.spawn(move || {
                    let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                    let mut obs = Observations::default();
                    for _ in 0..OPS_PER_THREAD {
                        let r = rng.next();
                        match r % 10 {
                            // Intern a value and immediately resolve it.
                            0..=3 => {
                                let v = mk_value(rng.next());
                                let id = interner.intern_value(&v);
                                assert_eq!(interner.value(id), &v);
                                obs.values.push((v, id));
                            }
                            // Intern a pending async.
                            4 | 5 => {
                                let pa = mk_pa(rng.next());
                                let id = interner.intern_pa(&pa);
                                assert_eq!(interner.pa(id), &pa);
                                obs.pas.push((pa, id));
                            }
                            // Re-resolve an id recorded earlier — reads are
                            // lock-free and must stay stable under
                            // concurrent growth.
                            6 | 7 => {
                                if !obs.values.is_empty() {
                                    let (v, id) =
                                        &obs.values[(rng.next() as usize) % obs.values.len()];
                                    assert_eq!(interner.value(*id), v);
                                    assert_eq!(interner.find_value(v), Some(*id));
                                }
                                if !obs.pas.is_empty() {
                                    let (pa, id) = &obs.pas[(rng.next() as usize) % obs.pas.len()];
                                    assert_eq!(interner.pa(*id), pa);
                                }
                            }
                            // Intern a bag.
                            8 => {
                                let bag = mk_bag(rng.next());
                                let id = interner.intern_bag(&bag);
                                assert_eq!(interner.resolve_bag(id), bag);
                                obs.bags.push((bag, id));
                            }
                            // Intern a config (store + bag + config dedup in
                            // one operation, like the explorer's phase 3).
                            _ => {
                                let config = mk_config(rng.next());
                                let (id, _fresh) = interner.intern_config(&config, None);
                                assert_eq!(interner.resolve_config(id), config);
                                obs.configs.push((config, id));
                            }
                        }
                    }
                    obs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Cross-thread canonicality: equal values agree on their id, and no id
    // is shared by two distinct values (in which case resolution would
    // contradict one of the two logs — checked via the id → value map).
    let mut value_ids: HashMap<Value, inseq_kernel::ValueId> = HashMap::new();
    let mut ids_to_value: HashMap<inseq_kernel::ValueId, Value> = HashMap::new();
    let mut pa_ids: HashMap<PendingAsync, inseq_kernel::PaId> = HashMap::new();
    let mut bag_ids: HashMap<Vec<(PendingAsync, usize)>, inseq_kernel::BagId> = HashMap::new();
    let mut config_ids: HashMap<Config, inseq_kernel::ConfigId> = HashMap::new();
    for obs in &logs {
        for (v, id) in &obs.values {
            assert_eq!(interner.value(*id), v, "id must resolve to its value");
            assert_eq!(*value_ids.entry(v.clone()).or_insert(*id), *id);
            assert_eq!(ids_to_value.entry(*id).or_insert_with(|| v.clone()), v);
        }
        for (pa, id) in &obs.pas {
            assert_eq!(interner.pa(*id), pa);
            assert_eq!(*pa_ids.entry(pa.clone()).or_insert(*id), *id);
        }
        for (bag, id) in &obs.bags {
            assert_eq!(&interner.resolve_bag(*id), bag);
            let key: Vec<(PendingAsync, usize)> =
                bag.iter_counts().map(|(pa, n)| (pa.clone(), n)).collect();
            assert_eq!(*bag_ids.entry(key).or_insert(*id), *id);
        }
        for (config, id) in &obs.configs {
            assert_eq!(&interner.resolve_config(*id), config);
            assert_eq!(*config_ids.entry(config.clone()).or_insert(*id), *id);
        }
    }
    // Distinct values got distinct ids (injectivity over the whole run).
    assert_eq!(value_ids.len(), ids_to_value.len());
    // The arenas hold exactly the distinct objects observed (the config op
    // also interns stores/bags/pas, so only values — interned through one
    // path — admit an exact count; for the rest the arena can only be a
    // superset of the directly-observed universe).
    assert!(interner.value_count() >= value_ids.len());
    assert!(interner.pa_count() >= pa_ids.len());
    assert!(interner.bag_count() >= bag_ids.len());
    assert_eq!(interner.config_count(), config_ids.len());
    // Every insert was counted by exactly one shard.
    let contention = interner.contention();
    assert!(contention.inserts_total() >= (value_ids.len() + pa_ids.len()) as u64);
}

mod proptest_equivalence {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Value(i64),
        Pa(u8, Vec<i64>),
        Bag(Vec<(u8, u8)>),
        Config(Vec<i64>, Vec<(u8, u8)>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0i64..8).prop_map(Op::Value),
            (0u8..3, proptest::collection::vec(0i64..5, 0..3)).prop_map(|(a, v)| Op::Pa(a, v)),
            proptest::collection::vec((0u8..4, 1u8..3), 0..3).prop_map(Op::Bag),
            (
                proptest::collection::vec(0i64..4, 2),
                proptest::collection::vec((0u8..4, 1u8..3), 0..3)
            )
                .prop_map(|(s, b)| Op::Config(s, b)),
        ]
    }

    fn bag_of(entries: &[(u8, u8)]) -> Multiset<PendingAsync> {
        let mut bag = Multiset::new();
        for &(k, n) in entries {
            bag.insert_n(
                PendingAsync::new(ACTIONS[(k % 3) as usize], vec![Value::Int(i64::from(k))]),
                n as usize,
            );
        }
        bag
    }

    proptest! {
        /// Observational equivalence with the sequential interner: driving
        /// both through the same operation sequence yields the same
        /// fresh/duplicate verdicts, the same resolved objects, and the
        /// same dedup counts.
        #[test]
        fn concurrent_intern_stress_matches_sequential_interner(
            ops in proptest::collection::vec(op_strategy(), 1..120)
        ) {
            let mut seq = Interner::new();
            let conc = ConcurrentInterner::new();
            for op in &ops {
                match op {
                    Op::Value(x) => {
                        let v = Value::Int(*x);
                        let a = seq.intern_value(&v);
                        let b = conc.intern_value(&v);
                        prop_assert_eq!(seq.value(a), conc.value(b));
                        prop_assert_eq!(a.index(), b.index());
                    }
                    Op::Pa(k, args) => {
                        let pa = PendingAsync::new(
                            ACTIONS[(k % 3) as usize],
                            args.iter().map(|&x| Value::Int(x)).collect::<Vec<_>>(),
                        );
                        let a = seq.intern_pa(&pa);
                        let b = conc.intern_pa(&pa);
                        prop_assert_eq!(seq.pa(a), conc.pa(b));
                        prop_assert_eq!(a.index(), b.index());
                    }
                    Op::Bag(entries) => {
                        let bag = bag_of(entries);
                        let a = seq.intern_bag(&bag);
                        let b = conc.intern_bag(&bag);
                        prop_assert_eq!(seq.resolve_bag(a), conc.resolve_bag(b));
                        prop_assert_eq!(a.index(), b.index());
                    }
                    Op::Config(slots, entries) => {
                        let store = GlobalStore::new(
                            slots.iter().map(|&x| Value::Int(x)).collect::<Vec<_>>(),
                        );
                        let config = Config::new(store, bag_of(entries));
                        let (a, fresh_a) = seq.intern_config(&config);
                        let (b, fresh_b) = conc.intern_config(&config, None);
                        prop_assert_eq!(fresh_a, fresh_b);
                        prop_assert_eq!(seq.resolve_config(a), conc.resolve_config(b));
                        prop_assert_eq!(a.index(), b.index());
                    }
                }
            }
            // Same dedup outcome overall: the arenas agree on every count
            // the two interners both maintain through these operations.
            prop_assert_eq!(seq.pa_count(), conc.pa_count());
            prop_assert_eq!(seq.bag_count(), conc.bag_count());
            prop_assert_eq!(seq.store_count(), conc.store_count());
            prop_assert_eq!(seq.config_count(), conc.config_count());
            // Dedup probes agree too: equal objects found, absent objects
            // not.
            for op in &ops {
                if let Op::Config(slots, entries) = op {
                    let store = GlobalStore::new(
                        slots.iter().map(|&x| Value::Int(x)).collect::<Vec<_>>(),
                    );
                    let config = Config::new(store, bag_of(entries));
                    let a = seq.find_config(&config);
                    let b = conc.find_config(&config);
                    prop_assert_eq!(a.is_some(), b.is_some());
                    prop_assert_eq!(
                        a.map(inseq_kernel::ConfigId::index),
                        b.map(inseq_kernel::ConfigId::index)
                    );
                }
            }
        }
    }
}
