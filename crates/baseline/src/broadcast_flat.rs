//! The paper's invariant (2): the flat inductive invariant for broadcast
//! consensus, written out in full over a ghost-free version of the
//! atomic-action program.
//!
//! Compare its three-disjunct shape — every disjunct describing a *family*
//! of intermediate states of arbitrary interleavings — with the IS
//! artifacts in `inseq_protocols::broadcast`, which only ever describe
//! prefixes of one fixed schedule. This module is the §5.2 "Invariant
//! complexity" baseline for the running example.
//!
//! The subset quantification `∃D ⊆ [1,n]` of the paper's formula is encoded
//! by observing that `D` is determined by the pending-async multiset
//! (`i ∈ D` iff `Broadcast(i)` is no longer pending), so per-node atoms over
//! [`inseq_vc::Term::PendingCount`] replace the set quantifier. Instances
//! must use **distinct input values** so that channel contents determine the
//! sender multiplicities (see `DESIGN.md`).

use std::sync::Arc;

use inseq_kernel::{Config, GlobalStore, Program, Value};
use inseq_lang::build::*;
use inseq_lang::{program_of, DslAction, GlobalDecls, Sort};
use inseq_vc::{Formula, Term};

use crate::FlatInvariant;

/// A ghost-free build of the broadcast consensus atomic program (Fig. 1-②),
/// as the baseline verifies the *original* program without proof
/// instrumentation.
#[derive(Debug, Clone)]
pub struct FlatArtifacts {
    /// Global declarations (`n`, `value`, `decision`, `CH`).
    pub decls: Arc<GlobalDecls>,
    /// The atomic-action program.
    pub p2: Program,
}

/// Builds the ghost-free broadcast program.
#[must_use]
pub fn build() -> FlatArtifacts {
    let mut decls = GlobalDecls::new();
    decls.declare("n", Sort::Int);
    decls.declare("value", Sort::map(Sort::Int, Sort::Int));
    decls.declare("decision", Sort::map(Sort::Int, Sort::opt(Sort::Int)));
    decls.declare("CH", Sort::map(Sort::Int, Sort::bag(Sort::Int)));
    let g = Arc::new(decls);

    let broadcast = DslAction::build("Broadcast", &g)
        .param("i", Sort::Int)
        .local("j", Sort::Int)
        .body(vec![for_range(
            "j",
            int(1),
            var("n"),
            vec![send_to("CH", var("j"), get(var("value"), var("i")))],
        )])
        .finish()
        .expect("Broadcast type-checks");
    let collect = DslAction::build("Collect", &g)
        .param("i", Sort::Int)
        .local("j", Sort::Int)
        .local("v", Sort::Int)
        .local("got", Sort::bag(Sort::Int))
        .body(vec![
            for_range(
                "j",
                int(1),
                var("n"),
                vec![
                    recv_from("v", "CH", var("i")),
                    assign("got", with_elem(var("got"), var("v"))),
                ],
            ),
            assign_at("decision", var("i"), some(max_of(var("got")))),
        ])
        .finish()
        .expect("Collect type-checks");
    let main = DslAction::build("Main", &g)
        .local("i", Sort::Int)
        .body(vec![for_range(
            "i",
            int(1),
            var("n"),
            vec![
                async_call(&broadcast, vec![var("i")]),
                async_call(&collect, vec![var("i")]),
            ],
        )])
        .finish()
        .expect("Main type-checks");

    let p2 = program_of(&g, [broadcast, collect, main], "Main").expect("P2 is well-formed");
    FlatArtifacts { decls: g, p2 }
}

/// The initialized configuration for input values (must be distinct).
///
/// # Panics
///
/// Panics when values repeat (the encoding requires distinct inputs) or the
/// store does not match the schema.
#[must_use]
pub fn init_config(artifacts: &FlatArtifacts, values: &[i64]) -> Config {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), values.len(), "input values must be distinct");
    let g = &artifacts.decls;
    let mut store: GlobalStore = g.initial_store();
    store.set(g.index_of("n").unwrap(), Value::Int(values.len() as i64));
    let mut vmap = inseq_kernel::Map::new(Value::Int(0));
    for (idx, v) in values.iter().enumerate() {
        vmap.set_in_place(Value::Int(idx as i64 + 1), Value::Int(*v));
    }
    store.set(g.index_of("value").unwrap(), Value::Map(vmap));
    artifacts
        .p2
        .initial_config_with(store, vec![])
        .expect("store matches schema")
}

fn n() -> Term {
    Term::global("n")
}

fn value_at(i: &str) -> Term {
    Term::map_at(Term::global("value"), Term::bound(i))
}

fn decision_at(i: &str) -> Term {
    Term::map_at(Term::global("decision"), Term::bound(i))
}

fn channel(i: &str) -> Term {
    Term::map_at(Term::global("CH"), Term::bound(i))
}

fn broadcast_pending(i: &str) -> Term {
    Term::pending_count("Broadcast", vec![Term::bound(i)])
}

fn collect_pending(i: &str) -> Term {
    Term::pending_count("Collect", vec![Term::bound(i)])
}

/// `decision[i] = Some(max value)` spelled without a max operator.
fn decided_max(i: &str) -> Formula {
    Formula::And(vec![
        Formula::IsSome(decision_at(i)),
        Formula::forall(
            "mk",
            Term::int(1),
            n(),
            Formula::le(
                Term::map_at(Term::global("value"), Term::bound("mk")),
                Term::Unwrap(Box::new(decision_at(i))),
            ),
        ),
        Formula::exists(
            "mk",
            Term::int(1),
            n(),
            Formula::eq(
                Term::map_at(Term::global("value"), Term::bound("mk")),
                Term::Unwrap(Box::new(decision_at(i))),
            ),
        ),
    ])
}

/// The paper's invariant (2), in configuration logic.
#[must_use]
pub fn invariant() -> FlatInvariant {
    // Disjunct 1: Ω = {Main}, channels empty, nothing decided.
    let d1 = Formula::And(vec![
        Formula::eq(Term::pending_total("Main"), Term::int(1)),
        Formula::eq(Term::pending_total("Broadcast"), Term::int(0)),
        Formula::eq(Term::pending_total("Collect"), Term::int(0)),
        Formula::forall(
            "i",
            Term::int(1),
            n(),
            Formula::And(vec![
                Formula::eq(Term::size_of(channel("i")), Term::int(0)),
                Formula::not(Formula::IsSome(decision_at("i"))),
            ]),
        ),
    ]);

    // Disjunct 2: some subset D of nodes broadcast; every channel holds
    // exactly {value[j] | j ∈ D}; all Collects pending; nothing decided.
    let d2 = Formula::And(vec![
        Formula::eq(Term::pending_total("Main"), Term::int(0)),
        Formula::forall(
            "i",
            Term::int(1),
            n(),
            Formula::And(vec![
                Formula::le(broadcast_pending("i"), Term::int(1)),
                Formula::eq(collect_pending("i"), Term::int(1)),
                Formula::not(Formula::IsSome(decision_at("i"))),
                Formula::eq(
                    Term::size_of(channel("i")),
                    Term::sub(n(), Term::pending_total("Broadcast")),
                ),
                Formula::forall(
                    "j",
                    Term::int(1),
                    n(),
                    Formula::eq(
                        Term::count_in(channel("i"), value_at("j")),
                        Term::sub(Term::int(1), broadcast_pending("j")),
                    ),
                ),
            ]),
        ),
    ]);

    // Disjunct 3: all broadcasts done; a subset of nodes collected and
    // decided the maximum; the rest still see full channels.
    let d3 = Formula::And(vec![
        Formula::eq(Term::pending_total("Main"), Term::int(0)),
        Formula::eq(Term::pending_total("Broadcast"), Term::int(0)),
        Formula::forall(
            "i",
            Term::int(1),
            n(),
            Formula::And(vec![
                Formula::le(collect_pending("i"), Term::int(1)),
                Formula::implies(
                    Formula::eq(collect_pending("i"), Term::int(1)),
                    Formula::And(vec![
                        Formula::not(Formula::IsSome(decision_at("i"))),
                        Formula::eq(Term::size_of(channel("i")), n()),
                        Formula::forall(
                            "j",
                            Term::int(1),
                            n(),
                            Formula::eq(Term::count_in(channel("i"), value_at("j")), Term::int(1)),
                        ),
                    ]),
                ),
                Formula::implies(
                    Formula::eq(collect_pending("i"), Term::int(0)),
                    Formula::And(vec![
                        decided_max("i"),
                        Formula::eq(Term::size_of(channel("i")), Term::int(0)),
                    ]),
                ),
            ]),
        ),
    ]);

    // Safety (property (1)): when all tasks have run, everyone decided the
    // same value.
    let terminal = Formula::And(vec![
        Formula::eq(Term::pending_total("Main"), Term::int(0)),
        Formula::eq(Term::pending_total("Broadcast"), Term::int(0)),
        Formula::eq(Term::pending_total("Collect"), Term::int(0)),
    ]);
    let agreement = Formula::forall(
        "i",
        Term::int(1),
        n(),
        Formula::forall(
            "j",
            Term::int(1),
            n(),
            Formula::And(vec![
                Formula::IsSome(decision_at("i")),
                Formula::eq(decision_at("i"), decision_at("j")),
            ]),
        ),
    );

    FlatInvariant {
        name: "broadcast consensus invariant (2)".into(),
        invariant: Formula::Or(vec![d1, d2, d3]),
        safety: Formula::implies(terminal, agreement),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_flat_invariant, FlatOptions};

    #[test]
    fn invariant_2_is_inductive_and_safe_n2() {
        let artifacts = build();
        let init = init_config(&artifacts, &[3, 1]);
        let report =
            check_flat_invariant(&artifacts.p2, init, &invariant(), FlatOptions::default())
                .expect("the paper's invariant (2) holds");
        assert!(report.configs_checked > 1);
        assert!(report.conjuncts >= 3 || report.complexity > 10);
    }

    #[test]
    fn invariant_2_is_inductive_and_safe_n3() {
        let artifacts = build();
        let init = init_config(&artifacts, &[2, 5, 4]);
        check_flat_invariant(&artifacts.p2, init, &invariant(), FlatOptions::default())
            .expect("the paper's invariant (2) holds");
    }

    #[test]
    fn weakened_invariant_is_rejected() {
        // Dropping the channel-content conjuncts (the "hard part" of the
        // invariant) breaks safety or consecution.
        let artifacts = build();
        let init = init_config(&artifacts, &[3, 1]);
        let weak = FlatInvariant {
            name: "trivial".into(),
            invariant: Formula::True,
            safety: invariant().safety,
        };
        let err = check_flat_invariant(&artifacts.p2, init, &weak, FlatOptions::default())
            .expect_err("True does not imply safety");
        assert!(matches!(err, crate::BaselineError::Safety { .. }));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn distinct_values_are_required() {
        let artifacts = build();
        let _ = init_config(&artifacts, &[3, 3]);
    }
}
