//! The baseline the paper compares IS against (§5.2 "Invariant
//! complexity"): classical **flat inductive invariants** over the original
//! asynchronous program — "asynchrony-aware" formulas in the style of Ivy
//! that must describe *every* reachable intermediate configuration of every
//! interleaving at once.
//!
//! The crate provides:
//!
//! * [`FlatInvariant`] — a named configuration-logic formula
//!   ([`inseq_vc::Formula`]) together with a safety property, and
//!   [`check_flat_invariant`], which discharges initiation, consecution and
//!   safety by enumeration over the instance (plus optional random
//!   perturbations probing inductiveness beyond the reachable set);
//! * [`broadcast_flat`] — the paper's invariant (2) for broadcast consensus,
//!   written out in full; and
//! * [`paxos_flat`] — an Ivy-style flat invariant for the Paxos model of
//!   `inseq_protocols::paxos`, including the extra asynchrony-awareness
//!   conjuncts relating in-flight pending asyncs to the protocol state — the
//!   conjuncts the paper highlights as the cost of not sequentializing.
//!
//! Comparing [`FlatReport::complexity`]/[`FlatReport::conjuncts`] and check
//! time against the IS artifacts regenerates the §5.2 discussion.

#![forbid(unsafe_code)]
#![allow(clippy::result_large_err)] // baseline counterexamples carry full configurations by design
#![warn(missing_docs)]

pub mod broadcast_flat;
pub mod paxos_flat;

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use inseq_kernel::{Config, Explorer, PendingAsync, Program};
use inseq_vc::Formula;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A named flat inductive invariant with its safety property.
#[derive(Debug, Clone)]
pub struct FlatInvariant {
    /// Human-readable name.
    pub name: String,
    /// The invariant formula over configurations.
    pub invariant: Formula,
    /// The safety property the invariant must imply.
    pub safety: Formula,
}

/// A violated baseline check, with a concrete witness.
#[derive(Debug)]
pub enum BaselineError {
    /// The invariant does not hold in an initial configuration.
    Initiation {
        /// The violating configuration.
        config: Config,
    },
    /// A step leads from an invariant configuration to a non-invariant one.
    Consecution {
        /// The pre-state (satisfying the invariant).
        from: Config,
        /// The pending async that stepped.
        fired: PendingAsync,
        /// The post-state (violating the invariant).
        to: Config,
    },
    /// The invariant does not imply safety.
    Safety {
        /// The configuration satisfying the invariant but not safety.
        config: Config,
    },
    /// The program can fail (flat invariants as used here presume
    /// failure-freedom).
    Failure(String),
    /// Exploration or formula-evaluation error.
    Internal(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Initiation { config } => {
                write!(f, "invariant violated initially at {config}")
            }
            BaselineError::Consecution { from, fired, to } => write!(
                f,
                "invariant is not inductive: {fired} steps {from} to {to}"
            ),
            BaselineError::Safety { config } => {
                write!(f, "invariant does not imply safety at {config}")
            }
            BaselineError::Failure(msg) => write!(f, "program can fail: {msg}"),
            BaselineError::Internal(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for BaselineError {}

/// Statistics of a successful flat-invariant check.
#[derive(Debug, Clone)]
pub struct FlatReport {
    /// Configurations on which consecution was verified.
    pub configs_checked: usize,
    /// Steps verified.
    pub steps_checked: usize,
    /// Perturbed configurations additionally probed.
    pub perturbations_checked: usize,
    /// AST-node complexity of the invariant.
    pub complexity: usize,
    /// Top-level conjunct count of the invariant.
    pub conjuncts: usize,
    /// Wall-clock time of the check.
    pub time: Duration,
}

impl fmt::Display for FlatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flat invariant ok: {} configs, {} steps, {} perturbations, \
             complexity {} ({} conjuncts), {:.3}s",
            self.configs_checked,
            self.steps_checked,
            self.perturbations_checked,
            self.complexity,
            self.conjuncts,
            self.time.as_secs_f64()
        )
    }
}

/// Options for [`check_flat_invariant`].
#[derive(Debug, Clone, Copy)]
pub struct FlatOptions {
    /// Exploration budget (configurations).
    pub budget: usize,
    /// Number of random perturbed configurations to probe (0 disables).
    pub perturbations: usize,
    /// RNG seed for perturbation generation (determinism for tests/benches).
    pub seed: u64,
}

impl Default for FlatOptions {
    fn default() -> Self {
        FlatOptions {
            budget: 2_000_000,
            perturbations: 200,
            seed: 0x15EC,
        }
    }
}

/// Checks a flat inductive invariant on a program instance: initiation,
/// consecution along every explored step, safety, and (optionally)
/// consecution from randomly perturbed configurations that happen to satisfy
/// the invariant — probing inductiveness beyond the reachable set, which is
/// where hand-written flat invariants usually break.
///
/// # Errors
///
/// Returns the first violated check with a concrete witness.
pub fn check_flat_invariant(
    program: &Program,
    init: Config,
    inv: &FlatInvariant,
    options: FlatOptions,
) -> Result<FlatReport, BaselineError> {
    let start = Instant::now();
    let schema = program.schema().clone();
    let holds = |c: &Config| -> Result<bool, BaselineError> {
        inv.invariant
            .eval(&schema, c)
            .map_err(|e| BaselineError::Internal(e.to_string()))
    };

    // Initiation.
    if !holds(&init)? {
        return Err(BaselineError::Initiation { config: init });
    }

    let exp = Explorer::new(program)
        .with_budget(options.budget)
        .explore([init])
        .map_err(|e| BaselineError::Internal(e.to_string()))?;
    if exp.has_failure() {
        return Err(BaselineError::Failure(
            exp.failure_reports().into_iter().next().unwrap_or_default(),
        ));
    }

    // Consecution along every explored step, and safety everywhere the
    // invariant holds.
    let mut steps_checked = 0;
    for step in exp.steps() {
        if holds(&step.before)? && !holds(&step.after)? {
            return Err(BaselineError::Consecution {
                from: step.before,
                fired: step.fired,
                to: step.after,
            });
        }
        steps_checked += 1;
    }
    for config in exp.configs() {
        if holds(config)? {
            let safe = inv
                .safety
                .eval(&schema, config)
                .map_err(|e| BaselineError::Internal(e.to_string()))?;
            if !safe {
                return Err(BaselineError::Safety {
                    config: config.clone(),
                });
            }
        }
    }

    // Perturbation probing: mutate reachable configurations by adding or
    // removing pending asyncs; any mutant inside the invariant must stay
    // inside under every step.
    let mut perturbations_checked = 0;
    if options.perturbations > 0 {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let configs: Vec<&Config> = exp.configs().collect();
        let pa_pool: Vec<PendingAsync> = {
            let mut pool: Vec<PendingAsync> = Vec::new();
            for c in &configs {
                for pa in c.pending.distinct() {
                    if !pool.contains(pa) {
                        pool.push(pa.clone());
                    }
                }
            }
            pool
        };
        for _ in 0..options.perturbations {
            let Some(base) = configs.choose(&mut rng) else {
                break;
            };
            let mut mutant = (*base).clone();
            if rng.gen_bool(0.5) {
                if let Some(pa) = pa_pool.choose(&mut rng) {
                    mutant.pending.insert(pa.clone());
                }
            } else {
                let present: Vec<PendingAsync> = mutant.pending.distinct().cloned().collect();
                if let Some(pa) = present.choose(&mut rng) {
                    mutant.pending.remove_one(pa);
                }
            }
            if !holds(&mutant)? {
                continue; // outside the invariant: vacuous
            }
            perturbations_checked += 1;
            // The invariant must imply safety on the mutant too.
            let safe = inv
                .safety
                .eval(&schema, &mutant)
                .map_err(|e| BaselineError::Internal(e.to_string()))?;
            if !safe {
                return Err(BaselineError::Safety { config: mutant });
            }
            for pa in mutant.pending.distinct().cloned().collect::<Vec<_>>() {
                let outcome = program
                    .eval_pa(&mutant.globals, &pa)
                    .map_err(|e| BaselineError::Internal(e.to_string()))?;
                if let inseq_kernel::ActionOutcome::Transitions(ts) = outcome {
                    let rest = mutant.pending.without(&pa).expect("distinct PA is present");
                    for t in ts {
                        let next = Config::new(t.globals, rest.union(&t.created));
                        if !holds(&next)? {
                            return Err(BaselineError::Consecution {
                                from: mutant,
                                fired: pa,
                                to: next,
                            });
                        }
                    }
                }
            }
        }
    }

    Ok(FlatReport {
        configs_checked: exp.config_count(),
        steps_checked,
        perturbations_checked,
        complexity: inv.invariant.complexity(),
        conjuncts: inv.invariant.conjunct_count(),
        time: start.elapsed(),
    })
}
