//! An Ivy-style flat inductive invariant for the Paxos model of
//! [`inseq_protocols::paxos`] — the §5.2 baseline for the paper's most
//! significant case study.
//!
//! The paper observes that the IS proof only needs the four `PaxosInv`
//! properties (sequentialization order, quorum-before-decision,
//! voting-after-decision, safety), while the flat invariant additionally
//! needs a battery of "asynchrony-awareness" conjuncts — formulas (8)–(12)
//! of Padon et al. \[39\] — that relate *in-flight messages* to the protocol
//! state. The same effect appears here: the conjuncts in
//! [`invariant`] marked "asynchrony" tie every pending async (mirrored by
//! the ghost `pendingAsyncs` bag) to `voteInfo`/`decision`, and removing any
//! of them breaks consecution.

use inseq_protocols::paxos::{self, Instance};
use inseq_vc::{Formula, Term};

use crate::FlatInvariant;

fn vote_info(r: Term) -> Term {
    Term::map_at(Term::global("voteInfo"), r)
}

fn vote_value(r: Term) -> Term {
    Term::Proj(Box::new(Term::Unwrap(Box::new(vote_info(r)))), 0)
}

fn vote_nodes(r: Term) -> Term {
    Term::Proj(Box::new(Term::Unwrap(Box::new(vote_info(r)))), 1)
}

fn decision(r: Term) -> Term {
    Term::map_at(Term::global("decision"), r)
}

fn ghost_has(tag: i64, r: Term, n: Term) -> Formula {
    Formula::Contains(
        Term::global("pendingAsyncs"),
        Term::tuple_of(vec![Term::int(tag), r, n]),
    )
}

/// The flat invariant: core agreement facts plus the asynchrony conjuncts.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn invariant() -> FlatInvariant {
    let r_hi = Term::global("R");
    let n_hi = Term::global("N");

    // (1) Quorum before decision: a decided round has a proposal with the
    // decided value and a quorum of votes.
    let quorum_before_decision = Formula::forall(
        "r",
        Term::int(1),
        r_hi.clone(),
        Formula::implies(
            Formula::IsSome(decision(Term::bound("r"))),
            Formula::And(vec![
                Formula::IsSome(vote_info(Term::bound("r"))),
                Formula::eq(
                    Term::Unwrap(Box::new(decision(Term::bound("r")))),
                    vote_value(Term::bound("r")),
                ),
                Formula::le(
                    Term::global("quorum"),
                    Term::size_of(vote_nodes(Term::bound("r"))),
                ),
            ]),
        ),
    );

    // (2) Voting after decision: any proposal in a higher round than a
    // decision carries the decided value.
    let voting_after_decision = Formula::forall(
        "r1",
        Term::int(1),
        r_hi.clone(),
        Formula::forall(
            "r2",
            Term::add(Term::bound("r1"), Term::int(1)),
            r_hi.clone(),
            Formula::implies(
                Formula::And(vec![
                    Formula::IsSome(decision(Term::bound("r1"))),
                    Formula::IsSome(vote_info(Term::bound("r2"))),
                ]),
                Formula::eq(
                    vote_value(Term::bound("r2")),
                    Term::Unwrap(Box::new(decision(Term::bound("r1")))),
                ),
            ),
        ),
    );

    // (3) Safety, stated directly (as `PaxosInv` does).
    let agreement = Formula::forall(
        "r1",
        Term::int(1),
        r_hi.clone(),
        Formula::forall(
            "r2",
            Term::int(1),
            r_hi.clone(),
            Formula::implies(
                Formula::And(vec![
                    Formula::IsSome(decision(Term::bound("r1"))),
                    Formula::IsSome(decision(Term::bound("r2"))),
                ]),
                Formula::eq(
                    Term::Unwrap(Box::new(decision(Term::bound("r1")))),
                    Term::Unwrap(Box::new(decision(Term::bound("r2")))),
                ),
            ),
        ),
    );

    // Asynchrony conjuncts — the price of not sequentializing.
    // (4) The ghost bag mirrors Ω exactly, action by action.
    let ghost_accurate = Formula::forall(
        "r",
        Term::int(1),
        r_hi.clone(),
        Formula::And(vec![
            Formula::eq(
                Term::pending_count("StartRound", vec![Term::bound("r")]),
                Term::count_in(
                    Term::global("pendingAsyncs"),
                    Term::tuple_of(vec![Term::int(0), Term::bound("r"), Term::int(0)]),
                ),
            ),
            Formula::eq(
                Term::pending_count("Propose", vec![Term::bound("r")]),
                Term::count_in(
                    Term::global("pendingAsyncs"),
                    Term::tuple_of(vec![Term::int(2), Term::bound("r"), Term::int(0)]),
                ),
            ),
            Formula::forall(
                "n",
                Term::int(1),
                n_hi.clone(),
                Formula::And(vec![
                    Formula::eq(
                        Term::pending_count("Join", vec![Term::bound("r"), Term::bound("n")]),
                        Term::count_in(
                            Term::global("pendingAsyncs"),
                            Term::tuple_of(vec![Term::int(1), Term::bound("r"), Term::bound("n")]),
                        ),
                    ),
                    Formula::eq(
                        Term::pending_matching(
                            "Vote",
                            vec![Some(Term::bound("r")), Some(Term::bound("n")), None],
                        ),
                        Term::count_in(
                            Term::global("pendingAsyncs"),
                            Term::tuple_of(vec![Term::int(3), Term::bound("r"), Term::bound("n")]),
                        ),
                    ),
                ]),
            ),
            Formula::eq(
                Term::pending_matching("Conclude", vec![Some(Term::bound("r")), None]),
                Term::count_in(
                    Term::global("pendingAsyncs"),
                    Term::tuple_of(vec![Term::int(4), Term::bound("r"), Term::int(0)]),
                ),
            ),
        ]),
    );

    // A pending Main means nothing has happened yet.
    let main_pristine = Formula::implies(
        Formula::eq(Term::pending_total("Main"), Term::int(1)),
        Formula::And(vec![
            Formula::eq(Term::size_of(Term::global("pendingAsyncs")), Term::int(0)),
            Formula::forall(
                "r",
                Term::int(1),
                Term::global("R"),
                Formula::And(vec![
                    Formula::not(Formula::IsSome(vote_info(Term::bound("r")))),
                    Formula::not(Formula::IsSome(decision(Term::bound("r")))),
                    Formula::eq(
                        Term::size_of(Term::map_at(Term::global("joinedNodes"), Term::bound("r"))),
                        Term::int(0),
                    ),
                ]),
            ),
        ]),
    );

    // (5) In-flight votes and conclusions carry the proposed value of their
    // round (formulas (8)-(12) of \[39\] play this role in Ivy's proof).
    let inflight_votes = Formula::forall(
        "r",
        Term::int(1),
        r_hi.clone(),
        Formula::And(vec![
            Formula::forall(
                "n",
                Term::int(1),
                n_hi.clone(),
                Formula::implies(
                    ghost_has(3, Term::bound("r"), Term::bound("n")),
                    Formula::And(vec![
                        Formula::IsSome(vote_info(Term::bound("r"))),
                        Formula::eq(
                            Term::pending_count(
                                "Vote",
                                vec![
                                    Term::bound("r"),
                                    Term::bound("n"),
                                    vote_value(Term::bound("r")),
                                ],
                            ),
                            Term::int(1),
                        ),
                    ]),
                ),
            ),
            Formula::implies(
                ghost_has(4, Term::bound("r"), Term::int(0)),
                Formula::And(vec![
                    Formula::IsSome(vote_info(Term::bound("r"))),
                    Formula::eq(
                        Term::pending_count(
                            "Conclude",
                            vec![Term::bound("r"), vote_value(Term::bound("r"))],
                        ),
                        Term::int(1),
                    ),
                ]),
            ),
        ]),
    );

    // (6) A round with an unfired Propose or StartRound has no proposal and
    // no decision yet.
    let unstarted_rounds = Formula::forall(
        "r",
        Term::int(1),
        r_hi,
        Formula::implies(
            Formula::Or(vec![
                ghost_has(2, Term::bound("r"), Term::int(0)),
                ghost_has(0, Term::bound("r"), Term::int(0)),
            ]),
            Formula::And(vec![
                Formula::not(Formula::IsSome(vote_info(Term::bound("r")))),
                Formula::not(Formula::IsSome(decision(Term::bound("r")))),
            ]),
        ),
    );

    FlatInvariant {
        name: "Ivy-style Paxos invariant".into(),
        invariant: Formula::And(vec![
            quorum_before_decision,
            voting_after_decision,
            agreement.clone(),
            ghost_accurate,
            inflight_votes,
            unstarted_rounds,
            main_pristine,
        ]),
        safety: agreement,
    }
}

/// Convenience: the program and initial configuration of an instance.
#[must_use]
pub fn program_and_init(instance: Instance) -> (inseq_kernel::Program, inseq_kernel::Config) {
    let artifacts = paxos::build();
    let init = paxos::init_config(&artifacts.p2, &artifacts, instance);
    (artifacts.p2, init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_flat_invariant, FlatOptions};

    #[test]
    fn paxos_flat_invariant_holds_r2_n2() {
        let (p2, init) = program_and_init(Instance::new(2, 2));
        let report = check_flat_invariant(
            &p2,
            init,
            &invariant(),
            FlatOptions {
                perturbations: 50,
                ..FlatOptions::default()
            },
        )
        .expect("the flat Paxos invariant holds");
        assert!(
            report.conjuncts >= 6,
            "needs strictly more conjuncts than PaxosInv's 4 parts"
        );
    }

    #[test]
    fn dropping_the_asynchrony_conjuncts_breaks_the_baseline() {
        // Keeping only the "nice" protocol facts (1)-(3) — what the IS proof
        // needs — is NOT enough for the flat baseline: without the in-flight
        // conjuncts the invariant is either not inductive under perturbation
        // or fails to rule out bad mutants. We demonstrate the weaker fact
        // that the trimmed invariant no longer determines in-flight votes:
        // a perturbed config with a forged Vote PA still satisfies it.
        let (p2, init) = program_and_init(Instance::new(2, 2));
        let full = invariant();
        let trimmed = FlatInvariant {
            name: "trimmed".into(),
            invariant: match full.invariant.clone() {
                Formula::And(cs) => Formula::And(cs.into_iter().take(3).collect()),
                other => other,
            },
            safety: full.safety.clone(),
        };
        // The trimmed invariant still passes the reachable-state checks…
        check_flat_invariant(
            &p2,
            init.clone(),
            &trimmed,
            FlatOptions {
                perturbations: 0,
                ..FlatOptions::default()
            },
        )
        .expect("trimmed invariant holds on reachable states");
        // …but admits a forged in-flight vote that the full invariant
        // rejects.
        let mut forged = init;
        forged.pending.insert(inseq_kernel::PendingAsync::new(
            "Vote",
            vec![
                inseq_kernel::Value::Int(1),
                inseq_kernel::Value::Int(1),
                inseq_kernel::Value::Int(99),
            ],
        ));
        let schema = p2.schema();
        assert!(trimmed.invariant.eval(schema, &forged).unwrap());
        assert!(!full.invariant.eval(schema, &forged).unwrap());
    }
}
