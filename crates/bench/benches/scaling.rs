//! Scaling sweep: verification time as a function of instance size, for the
//! IS pipeline and for raw reachability of the concurrent program. Shows
//! (a) the expected exponential growth of explicit-state checking and
//! (b) that IS-checking on `P'` stays far below exploring `P`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inseq_kernel::Explorer;
use inseq_protocols::{broadcast, ping_pong, producer_consumer};

fn bench_broadcast_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/broadcast");
    group.sample_size(10);
    for n in [2usize, 3] {
        let values: Vec<i64> = (1..=n as i64).map(|i| i * 10 + (i % 3)).collect();
        let instance = broadcast::Instance::new(&values);
        group.bench_with_input(BenchmarkId::new("is_pipeline", n), &instance, |b, inst| {
            let artifacts = broadcast::build();
            b.iter(|| {
                broadcast::iterated_chain(&artifacts, inst)
                    .run()
                    .expect("IS holds")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("raw_reachability_p2", n),
            &instance,
            |b, inst| {
                let artifacts = broadcast::build();
                b.iter(|| {
                    let init = broadcast::init_config(&artifacts.p2, &artifacts, inst);
                    Explorer::new(&artifacts.p2)
                        .explore([init])
                        .expect("within budget")
                        .config_count()
                });
            },
        );
    }
    group.finish();
}

fn bench_pingpong_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/ping_pong");
    group.sample_size(10);
    for k in [2i64, 4, 8, 16] {
        let instance = ping_pong::Instance::new(k);
        group.bench_with_input(
            BenchmarkId::new("is_application", k),
            &instance,
            |b, inst| {
                let artifacts = ping_pong::build();
                b.iter(|| {
                    ping_pong::application(&artifacts, *inst)
                        .check()
                        .expect("IS holds")
                });
            },
        );
    }
    group.finish();
}

fn bench_prodcons_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/producer_consumer");
    group.sample_size(10);
    for k in [2i64, 4, 6, 8] {
        let instance = producer_consumer::Instance::new(k);
        group.bench_with_input(
            BenchmarkId::new("is_application", k),
            &instance,
            |b, inst| {
                let artifacts = producer_consumer::build();
                b.iter(|| {
                    producer_consumer::application(&artifacts, *inst)
                        .check()
                        .expect("IS holds")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("raw_reachability_p2", k),
            &instance,
            |b, inst| {
                let artifacts = producer_consumer::build();
                b.iter(|| {
                    let init = producer_consumer::init_config(&artifacts.p2, &artifacts, *inst);
                    Explorer::new(&artifacts.p2)
                        .explore([init])
                        .expect("within budget")
                        .config_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_broadcast_scaling,
    bench_pingpong_scaling,
    bench_prodcons_scaling
);
criterion_main!(benches);
