//! The §5.3 ablation: one-shot IS (a single application with the stronger
//! `CollectAbs` gate) vs iterated IS (two applications with the weakened
//! gate) on broadcast consensus.

use criterion::{criterion_group, criterion_main, Criterion};
use inseq_bench::instances;
use inseq_protocols::broadcast;

fn bench_iterated(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_is/broadcast");
    group.sample_size(10);
    let instance = instances::broadcast();

    group.bench_function("one_shot", |b| {
        let artifacts = broadcast::build();
        b.iter(|| {
            broadcast::oneshot_application(&artifacts, &instance)
                .check()
                .expect("one-shot IS holds")
        });
    });
    group.bench_function("iterated", |b| {
        let artifacts = broadcast::build();
        b.iter(|| {
            broadcast::iterated_chain(&artifacts, &instance)
                .run()
                .expect("iterated IS holds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_iterated);
criterion_main!(benches);
