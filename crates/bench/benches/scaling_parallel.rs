//! Sequential vs sharded-parallel reachability on the two largest state
//! spaces of Table 1 (Paxos and two-phase commit). The acceptance bar for
//! `inseq-engine` is a ≥2× speedup at 4 workers on at least one of them;
//! EXPERIMENTS.md records the measured numbers.
//!
//! The two protocols probe opposite regimes. Two-phase commit has small
//! per-action footprints, so the engine's shared evaluation memo,
//! incremental (Zobrist-style) successor hashing, and build-avoiding
//! duplicate rejection all bite: the measured speedup (≈2× at 4 workers,
//! more at 1–2 on a single hardware thread, where extra workers only add
//! cross-shard messaging) comes from doing *less work per edge* than the
//! sequential explorer, not from occupying more cores. Paxos is the honest
//! control: every action reads and writes the shared message bag, the memo
//! disables itself after probation, and the parallel explorer runs at
//! roughly sequential speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inseq_engine::ParallelExplorer;
use inseq_kernel::Explorer;
use inseq_protocols::{paxos, two_phase_commit, ExplorationCase};

fn bench_case(c: &mut Criterion, group_name: &str, case: &ExplorationCase) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            Explorer::new(&case.program)
                .explore([case.init.clone()])
                .expect("within budget")
                .config_count()
        });
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", workers), &workers, |b, &w| {
            b.iter(|| {
                ParallelExplorer::new(&case.program)
                    .with_workers(w)
                    .explore([case.init.clone()])
                    .expect("within budget")
                    .config_count()
            });
        });
    }
    group.finish();
}

fn bench_paxos_parallel(c: &mut Criterion) {
    let case = paxos::exploration_case(paxos::Instance::new(2, 2));
    bench_case(c, "scaling_parallel/paxos", &case);
}

fn bench_two_phase_commit_parallel(c: &mut Criterion) {
    let case = two_phase_commit::exploration_case(&two_phase_commit::Instance::new(&[
        true, false, true, true,
    ]));
    bench_case(c, "scaling_parallel/two_phase_commit", &case);
}

criterion_group!(
    benches,
    bench_paxos_parallel,
    bench_two_phase_commit_parallel
);
criterion_main!(benches);
