//! Bench for the Fig. 2 witness construction: rewriting every terminating
//! behaviour of `P` into an execution of the sequentialized `P'`.

use criterion::{criterion_group, criterion_main, Criterion};
use inseq_bench::instances;
use inseq_core::rewrite::find_witness_executions;
use inseq_protocols::{broadcast, two_phase_commit};

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    group.sample_size(10);

    group.bench_function("broadcast_witnesses", |b| {
        let instance = instances::broadcast();
        let artifacts = broadcast::build();
        let outcome = broadcast::iterated_chain(&artifacts, &instance)
            .run()
            .expect("IS holds");
        b.iter(|| {
            let init = broadcast::init_config(&artifacts.p2, &artifacts, &instance);
            find_witness_executions(&artifacts.p2, &outcome.program, init, 4_000_000)
                .expect("witnesses exist")
                .len()
        });
    });

    group.bench_function("two_phase_commit_witnesses", |b| {
        let instance = instances::two_phase_commit();
        let artifacts = two_phase_commit::build();
        let (p_prime, _) = two_phase_commit::application(&artifacts, &instance)
            .check_and_apply()
            .expect("IS holds");
        b.iter(|| {
            let init = two_phase_commit::init_config(&artifacts.p2, &artifacts, &instance);
            find_witness_executions(&artifacts.p2, &p_prime, init, 4_000_000)
                .expect("witnesses exist")
                .len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
