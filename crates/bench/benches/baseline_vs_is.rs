//! The §5.2 invariant-complexity comparison as a bench: checking the IS
//! artifacts vs checking the flat inductive invariant, for broadcast
//! consensus and Paxos.

use criterion::{criterion_group, criterion_main, Criterion};
use inseq_baseline::{broadcast_flat, check_flat_invariant, paxos_flat, FlatOptions};
use inseq_bench::instances;
use inseq_protocols::{broadcast, paxos};

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_is/broadcast");
    group.sample_size(10);
    let instance = instances::broadcast();

    group.bench_function("is_iterated", |b| {
        let artifacts = broadcast::build();
        b.iter(|| {
            broadcast::iterated_chain(&artifacts, &instance)
                .run()
                .expect("IS holds")
        });
    });
    group.bench_function("flat_invariant_2", |b| {
        let artifacts = broadcast_flat::build();
        let inv = broadcast_flat::invariant();
        b.iter(|| {
            let init = broadcast_flat::init_config(&artifacts, &instance.values);
            check_flat_invariant(&artifacts.p2, init, &inv, FlatOptions::default())
                .expect("invariant (2) holds")
        });
    });
    group.finish();
}

fn bench_paxos(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_is/paxos");
    group.sample_size(10);
    let instance = instances::paxos();

    group.bench_function("is_paxos_inv", |b| {
        let artifacts = paxos::build();
        b.iter(|| {
            paxos::application(&artifacts, instance)
                .check()
                .expect("IS holds")
        });
    });
    group.bench_function("flat_ivy_style", |b| {
        let inv = paxos_flat::invariant();
        b.iter(|| {
            let (p2, init) = paxos_flat::program_and_init(instance);
            check_flat_invariant(
                &p2,
                init,
                &inv,
                FlatOptions {
                    perturbations: 50,
                    ..FlatOptions::default()
                },
            )
            .expect("flat invariant holds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_paxos);
criterion_main!(benches);
