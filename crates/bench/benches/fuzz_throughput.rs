//! Fuzzing throughput: programs per second through the full oracle battery,
//! plus where inside the battery the time goes.
//!
//! Three groups:
//!
//! * `fuzz_throughput/battery` — one coverage-measured battery pass
//!   ([`inseq_fuzz::measure_battery`]) over a fixed generated program and
//!   over each scenario-zoo protocol, so regressions in any single oracle
//!   show up against a stable input.
//! * `fuzz_throughput/campaign` — short guided and blind campaigns end to
//!   end (generation/mutation + measurement + corpus bookkeeping), the
//!   number the `fuzz` binary's `programs/sec` summary reports.
//! * Before timing anything, a one-shot guided campaign prints the
//!   per-oracle wall-clock breakdown (`inseq_obs::PhaseStat` lines) and its
//!   programs/sec to stderr — the phase split is the diagnostic the timing
//!   numbers lack.

use criterion::{criterion_group, criterion_main, Criterion};
use inseq_fuzz::campaign::{run_campaign, CampaignConfig};
use inseq_fuzz::corpus::zoo_specs;
use inseq_fuzz::coverage::MeasureOptions;
use inseq_fuzz::meta::phase_breakdown;
use inseq_fuzz::{generate, measure_battery, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Budget small enough to keep one battery pass in the low milliseconds;
/// the generator's programs rarely exceed a few hundred configurations.
const BUDGET: usize = 800;

fn measure_options() -> MeasureOptions {
    MeasureOptions {
        budget: BUDGET,
        ..MeasureOptions::default()
    }
}

fn quick_campaign(guided: bool, iters: u64) -> CampaignConfig {
    CampaignConfig {
        iters,
        guided,
        budget: BUDGET,
        ..CampaignConfig::default()
    }
}

fn bench_battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput/battery");
    group.sample_size(20);
    let opts = measure_options();

    let generated = generate(&mut StdRng::seed_from_u64(0), &GenConfig::default());
    group.bench_function("generated-seed0", |b| {
        b.iter(|| measure_battery(&generated, &opts));
    });
    for (name, spec) in zoo_specs() {
        group.bench_function(&*name, |b| {
            b.iter(|| measure_battery(&spec, &opts));
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    // One-shot phase breakdown: where a guided campaign's battery time goes.
    let probe = run_campaign(&quick_campaign(true, 20), None);
    eprintln!(
        "guided probe: {:.1} programs/sec over {} iterations; per-oracle wall clock:\n{}",
        probe.programs_per_sec(),
        probe.iterations,
        phase_breakdown(&probe.oracle_wall)
    );

    let mut group = c.benchmark_group("fuzz_throughput/campaign");
    group.sample_size(10);
    group.bench_function("guided-10iters", |b| {
        b.iter(|| run_campaign(&quick_campaign(true, 10), None));
    });
    group.bench_function("blind-10iters", |b| {
        b.iter(|| run_campaign(&quick_campaign(false, 10), None));
    });
    group.finish();
}

criterion_group!(benches, bench_battery, bench_campaign);
criterion_main!(benches);
