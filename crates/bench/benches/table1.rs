//! Criterion benches for the Table 1 rows: the full verification pipeline
//! of each protocol on its reference instance.

use criterion::{criterion_group, criterion_main, Criterion};
use inseq_bench::instances;
use inseq_protocols::{
    broadcast, chang_roberts, n_buyer, paxos, ping_pong, producer_consumer, two_phase_commit,
};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("broadcast_consensus", |b| {
        let instance = instances::broadcast();
        b.iter(|| broadcast::verify(&instance).expect("verifies"));
    });
    group.bench_function("ping_pong", |b| {
        let instance = instances::ping_pong();
        b.iter(|| ping_pong::verify(instance).expect("verifies"));
    });
    group.bench_function("producer_consumer", |b| {
        let instance = instances::producer_consumer();
        b.iter(|| producer_consumer::verify(instance).expect("verifies"));
    });
    group.bench_function("n_buyer", |b| {
        let instance = instances::n_buyer();
        b.iter(|| n_buyer::verify(&instance).expect("verifies"));
    });
    group.bench_function("chang_roberts", |b| {
        let instance = instances::chang_roberts();
        b.iter(|| chang_roberts::verify(&instance).expect("verifies"));
    });
    group.bench_function("two_phase_commit", |b| {
        let instance = instances::two_phase_commit();
        b.iter(|| two_phase_commit::verify(&instance).expect("verifies"));
    });
    group.bench_function("paxos", |b| {
        let instance = instances::paxos();
        b.iter(|| paxos::verify(instance).expect("verifies"));
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
