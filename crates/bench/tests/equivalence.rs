//! End-to-end equivalence of the interned explorers with plain semantics on
//! all seven Table-1 protocols and the smallest `--large` instance: the
//! hash-consed sequential explorer and the work-stealing parallel explorer
//! (at 1, 2, 4, and 8 workers) must agree *exactly* — same reachable
//! configuration set, same verdicts, same edge count, same terminal stores.
//! This is the bit-identical-results acceptance gate for the interning
//! layer and the deque engine.

use std::collections::BTreeSet;

use inseq_engine::ParallelExplorer;
use inseq_kernel::{Config, Explorer, GlobalStore};
use inseq_protocols::common::ExplorationCase;
use inseq_protocols::{exploration_cases, large_exploration_cases};

/// Asserts the parallel explorer is bit-identical to the sequential kernel
/// on `case` at every given worker count.
fn assert_engines_agree(case: &ExplorationCase, worker_counts: &[usize]) {
    let seq = Explorer::new(&case.program)
        .explore([case.init.clone()])
        .unwrap_or_else(|e| panic!("{case}: sequential exploration failed: {e}"));
    let seq_set: BTreeSet<Config> = seq.configs().cloned().collect();
    let seq_terminal: BTreeSet<GlobalStore> = seq.terminal_stores().cloned().collect();
    assert_eq!(
        seq_set.len(),
        seq.config_count(),
        "{case}: interned visited list must be duplicate-free"
    );

    for &workers in worker_counts {
        let par = ParallelExplorer::new(&case.program)
            .with_workers(workers)
            .explore([case.init.clone()])
            .unwrap_or_else(|e| panic!("{case}: parallel exploration failed: {e}"));
        let par_set: BTreeSet<Config> = par.configs().collect();
        assert_eq!(
            par_set, seq_set,
            "{case}: reachable set differs at {workers} workers"
        );
        assert_eq!(
            par.config_count(),
            seq.config_count(),
            "{case}: shards must be duplicate-free at {workers} workers"
        );
        assert_eq!(
            par.edge_count(),
            seq.edge_count(),
            "{case}: edge count differs at {workers} workers"
        );
        assert_eq!(
            par.has_failure(),
            seq.has_failure(),
            "{case}: failure verdict differs at {workers} workers"
        );
        assert_eq!(
            par.has_deadlock(),
            seq.has_deadlock(),
            "{case}: deadlock verdict differs at {workers} workers"
        );
        let par_terminal: BTreeSet<GlobalStore> = par.terminal_stores().cloned().collect();
        assert_eq!(
            par_terminal, seq_terminal,
            "{case}: terminal stores differ at {workers} workers"
        );
        assert_eq!(
            par.summary().good,
            !seq.has_failure(),
            "{case}: summary verdict differs"
        );
    }
}

#[test]
fn interned_explorers_agree_on_all_seven_protocols() {
    for case in exploration_cases() {
        assert_engines_agree(&case, &[1, 2, 4, 8]);
    }
}

/// The large-tier gate: on the smallest `--large` instance the deque engine
/// stays bit-identical to the sequential kernel at 1/2/4/8 workers. The
/// smaller reference instances above cannot exercise deep deques or steal
/// batches; this case does (tens of thousands of configurations).
#[test]
fn work_stealing_engine_is_bit_identical_on_the_smallest_large_instance() {
    let cases = large_exploration_cases();
    let case = cases
        .iter()
        .find(|c| c.name == "Producer-Consumer")
        .expect("the large tier includes a deep producer-consumer queue");
    assert_engines_agree(case, &[1, 2, 4, 8]);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    // Interning must not introduce any run-to-run nondeterminism in the
    // sequential explorer: two explorations of the same case are identical
    // config-for-config and edge-for-edge (not merely set-equal).
    for case in exploration_cases().into_iter().take(4) {
        let a = Explorer::new(&case.program)
            .explore([case.init.clone()])
            .unwrap();
        let b = Explorer::new(&case.program)
            .explore([case.init.clone()])
            .unwrap();
        let ca: Vec<&Config> = a.configs().collect();
        let cb: Vec<&Config> = b.configs().collect();
        assert_eq!(ca, cb, "{case}: visit order must be deterministic");
        assert_eq!(a.edge_count(), b.edge_count(), "{case}");
    }
}
