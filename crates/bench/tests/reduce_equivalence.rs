//! The reduction acceptance gate: on all seven Table-1 protocols and the
//! smallest `--large` instance, every reduction mode must preserve verdicts
//! exactly — same failure verdict, same deadlock verdict, same terminal
//! behavior — on both the sequential kernel explorer and the work-stealing
//! engine, while never visiting *more* configurations than the unreduced
//! exploration.
//!
//! The terminal-store contract differs by mode. Pure `sym` is a true
//! quotient: expanding the reduced terminals through the group
//! ([`inseq_kernel::SymmetrySpec::expand_terminals`]) recovers the full
//! set exactly. `por` (and hence `both`) is one-sided: every reduced
//! terminal is a real terminal of the program (pruning cannot *invent*
//! behavior — any failure or final store it reports is genuine), but
//! pairwise joint-outcome commutation does not compose across three or
//! more pendings when actions branch nondeterministically, so some
//! interleaving-specific finals may be pruned. Verdicts are what the
//! reduction contract promises to preserve, and what this gate pins.

use std::collections::BTreeSet;

use inseq_engine::{ParallelExplorer, Reducer};
use inseq_kernel::{Explorer, GlobalStore, ReduceMode};
use inseq_protocols::common::ExplorationCase;
use inseq_protocols::{exploration_cases, large_exploration_cases};

struct Verdicts {
    visited: usize,
    edges: usize,
    failed: bool,
    deadlocked: bool,
    terminals: BTreeSet<GlobalStore>,
}

fn reducer_for(case: &ExplorationCase, mode: ReduceMode) -> Reducer {
    match &case.symmetry {
        Some(spec) => Reducer::new(mode).with_symmetry(spec.clone()),
        None => Reducer::new(mode),
    }
}

fn sequential(case: &ExplorationCase, mode: Option<ReduceMode>) -> Verdicts {
    let reducer = reducer_for(case, mode.unwrap_or(ReduceMode::Off));
    let mut explorer = Explorer::new(&case.program);
    if mode.is_some() {
        explorer = explorer.with_reduction(&reducer);
    }
    let exp = explorer
        .explore([case.init.clone()])
        .unwrap_or_else(|e| panic!("{case}: sequential exploration failed: {e}"));
    Verdicts {
        visited: exp.config_count(),
        edges: exp.edge_count(),
        failed: exp.has_failure(),
        deadlocked: exp.has_deadlock(),
        terminals: exp.terminal_stores().cloned().collect(),
    }
}

fn parallel(case: &ExplorationCase, mode: Option<ReduceMode>, workers: usize) -> Verdicts {
    let reducer = reducer_for(case, mode.unwrap_or(ReduceMode::Off));
    let mut explorer = ParallelExplorer::new(&case.program).with_workers(workers);
    if mode.is_some() {
        explorer = explorer.with_reduction(&reducer);
    }
    let exp = explorer
        .explore([case.init.clone()])
        .unwrap_or_else(|e| panic!("{case}: parallel exploration failed: {e}"));
    Verdicts {
        visited: exp.config_count(),
        edges: exp.edge_count(),
        failed: exp.has_failure(),
        deadlocked: exp.has_deadlock(),
        terminals: exp.terminal_stores().cloned().collect(),
    }
}

/// Compares a reduced run against the unreduced reference.
fn assert_verdicts_preserved(
    case: &ExplorationCase,
    mode: ReduceMode,
    label: &str,
    reference: &Verdicts,
    reduced: &Verdicts,
) {
    assert_eq!(
        reduced.failed, reference.failed,
        "{case} [{label}, --reduce {mode}]: failure verdict changed"
    );
    assert_eq!(
        reduced.deadlocked, reference.deadlocked,
        "{case} [{label}, --reduce {mode}]: deadlock verdict changed"
    );
    assert!(
        reduced.visited <= reference.visited,
        "{case} [{label}, --reduce {mode}]: reduction visited {} > unreduced {}",
        reduced.visited,
        reference.visited
    );
    assert!(
        reduced.edges <= reference.edges,
        "{case} [{label}, --reduce {mode}]: reduction explored {} edges > unreduced {}",
        reduced.edges,
        reference.edges
    );
    // Terminal stores: the group expansion of the reduced terminals must
    // never leave the true terminal set (reduction cannot invent finals),
    // and pure `sym` — a verified automorphism, no pruning — must recover
    // it exactly.
    let expanded = match (&case.symmetry, mode) {
        (Some(spec), ReduceMode::Sym | ReduceMode::Both) => {
            spec.expand_terminals(reduced.terminals.iter())
        }
        _ => reduced.terminals.clone(),
    };
    assert!(
        expanded.is_subset(&reference.terminals),
        "{case} [{label}, --reduce {mode}]: reduction invented terminal stores: {:?}",
        expanded.difference(&reference.terminals).next()
    );
    if mode == ReduceMode::Sym {
        assert_eq!(
            expanded, reference.terminals,
            "{case} [{label}, --reduce {mode}]: symmetry quotient lost terminal stores"
        );
    }
}

fn gate(case: &ExplorationCase) {
    let seq_reference = sequential(case, None);
    for mode in [ReduceMode::Por, ReduceMode::Sym, ReduceMode::Both] {
        let seq_reduced = sequential(case, Some(mode));
        assert_verdicts_preserved(case, mode, "seq", &seq_reference, &seq_reduced);
        for workers in [1, 4] {
            let par_reduced = parallel(case, Some(mode), workers);
            assert_verdicts_preserved(
                case,
                mode,
                &format!("steal w={workers}"),
                &seq_reference,
                &par_reduced,
            );
        }
    }
}

#[test]
fn reduction_preserves_verdicts_on_all_seven_protocols() {
    for case in exploration_cases() {
        gate(&case);
    }
}

/// The smallest `--large` instance (Broadcast `n = 6`) through the same
/// gate — the configuration CI's `reduce-equivalence` job runs.
#[test]
fn reduction_preserves_verdicts_on_smallest_large_instance() {
    let case = &large_exploration_cases()[0];
    assert_eq!(case.name, "Broadcast consensus");
    gate(case);
}

/// The whole `--large` tier through the gate, headline Paxos `R = 4, N = 2`
/// (2.09M unreduced configurations) included. The unreduced sequential
/// reference alone takes minutes, so CI runs only the smallest instance
/// (above); run this one explicitly when touching the reduction layer:
///
/// ```text
/// cargo test --release -p inseq-bench --test reduce_equivalence -- --ignored
/// ```
#[test]
#[ignore = "minutes-long: explores the headline instance unreduced"]
fn reduction_preserves_verdicts_on_full_large_tier() {
    for case in large_exploration_cases() {
        gate(&case);
    }
}

/// Symmetry quotienting must actually collapse something where a symmetry
/// exists: the Paxos case visits strictly fewer configurations under
/// `--reduce sym` than unreduced.
#[test]
fn symmetry_strictly_shrinks_paxos() {
    let case = exploration_cases()
        .into_iter()
        .find(|c| c.name == "Paxos")
        .expect("Paxos is among the seven");
    assert!(case.symmetry.is_some(), "Paxos carries a symmetry spec");
    let reference = sequential(&case, None);
    let reduced = sequential(&case, Some(ReduceMode::Sym));
    assert!(
        reduced.visited < reference.visited,
        "symmetry quotient did not shrink Paxos: {} vs {}",
        reduced.visited,
        reference.visited
    );
}
