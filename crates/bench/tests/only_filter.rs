//! Negative-path coverage for the `table1 --only` needle filter: a
//! misspelled or empty selection must error out instead of silently
//! shrinking the benchmark to nothing.

use inseq_bench::table1_rows_only;

#[test]
fn empty_needle_list_is_rejected() {
    let err = table1_rows_only(&[]).expect_err("--only with no needles must error");
    assert_eq!(err.case, "--only");
    assert!(
        err.message.contains("no needles given"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn unmatched_needle_is_rejected_with_the_known_protocol_list() {
    let needles = vec!["ping".to_owned(), "paxoss".to_owned()];
    let err = table1_rows_only(&needles).expect_err("misspelled needle must error");
    assert_eq!(err.case, "--only");
    assert!(
        err.message.contains("`paxoss` matches no Table-1 protocol"),
        "error must name the unmatched needle: {}",
        err.message
    );
    assert!(
        err.message.contains("Paxos") && err.message.contains("Ping-Pong"),
        "error must list the known protocols: {}",
        err.message
    );
}

#[test]
fn any_unmatched_needle_fails_even_when_others_match() {
    // A matching needle must not mask the typo next to it.
    let needles = vec!["Two-phase".to_owned(), "no-such-protocol".to_owned()];
    let err = table1_rows_only(&needles).expect_err("one bad needle poisons the selection");
    assert!(
        err.message.contains("`no-such-protocol`"),
        "unexpected message: {}",
        err.message
    );
}
