//! Negative-path coverage for the `table1 --only` needle filter — on both
//! the Table-1 rows and the `--large` tier: a misspelled or empty selection
//! must error out instead of silently shrinking the benchmark to nothing.
//! Also pins the `--large --json` row shape.

use inseq_bench::{
    large_rows, large_rows_as_json, table1_rows_only, LargeEngine, LargeOptions, LargeRow,
};

#[test]
fn empty_needle_list_is_rejected() {
    let err = table1_rows_only(&[]).expect_err("--only with no needles must error");
    assert_eq!(err.case, "--only");
    assert!(
        err.message.contains("no needles given"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn unmatched_needle_is_rejected_with_the_known_protocol_list() {
    let needles = vec!["ping".to_owned(), "paxoss".to_owned()];
    let err = table1_rows_only(&needles).expect_err("misspelled needle must error");
    assert_eq!(err.case, "--only");
    assert!(
        err.message.contains("`paxoss` matches no Table-1 protocol"),
        "error must name the unmatched needle: {}",
        err.message
    );
    assert!(
        err.message.contains("Paxos") && err.message.contains("Ping-Pong"),
        "error must list the known protocols: {}",
        err.message
    );
}

#[test]
fn any_unmatched_needle_fails_even_when_others_match() {
    // A matching needle must not mask the typo next to it.
    let needles = vec!["Two-phase".to_owned(), "no-such-protocol".to_owned()];
    let err = table1_rows_only(&needles).expect_err("one bad needle poisons the selection");
    assert!(
        err.message.contains("`no-such-protocol`"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn large_tier_rejects_unmatched_needles_the_same_way() {
    let opts = LargeOptions {
        only: Some(vec!["producer".to_owned(), "paxoss".to_owned()]),
        ..LargeOptions::default()
    };
    let err = large_rows(&opts).expect_err("misspelled --large needle must error");
    assert_eq!(err.case, "--only");
    assert!(
        err.message.contains("`paxoss` matches no --large case"),
        "error must name the unmatched needle: {}",
        err.message
    );
    assert!(
        err.message.contains("known cases") && err.message.contains("Paxos"),
        "error must list the known cases: {}",
        err.message
    );
}

#[test]
fn large_selection_runs_only_the_matched_case_and_emits_json() {
    // Broadcast `n = 6` is the smallest large case by visited count, so
    // this end-to-end pass through selection, exploration, and JSON
    // emission stays cheap.
    let opts = LargeOptions {
        engines: vec![LargeEngine::Steal],
        workers: vec![2],
        runs: 1,
        only: Some(vec!["broadcast".to_owned()]),
        reduce: inseq_kernel::ReduceMode::Off,
        zoo: false,
    };
    let rows = large_rows(&opts).expect("broadcast large case explores cleanly");
    assert_eq!(rows.len(), 1, "one case, one engine, one worker count");
    let row = &rows[0];
    assert_eq!(row.name, "Broadcast consensus");
    assert_eq!(row.engine, LargeEngine::Steal);
    assert_eq!(row.workers, 2);
    assert!(row.visited > 0 && row.edges > 0);
    assert!(row.configs_per_sec() > 0.0);

    let json = large_rows_as_json(&rows);
    for field in [
        "\"example\": \"Broadcast consensus\"",
        "\"engine\": \"steal\"",
        "\"workers\": 2",
        "\"machine_cores\": ",
        "\"configs_per_sec\": ",
        "\"visited_configs\": ",
        "\"engine_workers\": 2",
        "\"engine_expanded\": [",
    ] {
        assert!(json.contains(field), "missing `{field}` in: {json}");
    }
}

#[test]
fn large_json_rows_carry_worker_and_core_counts() {
    // Shape pin on a fabricated row: no exploration, just the emitter.
    let row = LargeRow {
        name: "X".into(),
        instance: "n = 1".into(),
        engine: LargeEngine::Mpsc,
        workers: 4,
        run: 2,
        reduce: inseq_kernel::ReduceMode::Off,
        time: std::time::Duration::from_millis(500),
        visited: 1000,
        edges: 2000,
        failed: false,
        stats: inseq_obs::EngineSnapshot {
            workers: 4,
            expanded: vec![250, 250, 250, 250],
            migrated: 900,
            migration_dups: 300,
            ..inseq_obs::EngineSnapshot::default()
        },
    };
    let json = large_rows_as_json(&[row]);
    assert!(json.contains("\"engine\": \"mpsc\""));
    assert!(json.contains("\"workers\": 4"));
    assert!(json.contains("\"run\": 2"));
    assert!(json.contains("\"configs_per_sec\": 2000.0"));
    assert!(json.contains("\"engine_migrated\": 900"));
    assert!(json.contains("\"engine_migration_dups\": 300"));
    assert!(json.contains(&format!(
        "\"machine_cores\": {}",
        inseq_bench::machine_cores()
    )));
}
