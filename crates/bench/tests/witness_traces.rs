//! The steal engine's parent forest must cover the *whole* visited set:
//! `trace_to` rebuilds a concrete firing sequence to every configuration
//! the engine interned, on all seven Table 1 protocols, at 1/2/4/8
//! workers. This pins the witness-trace restoration — an earlier engine
//! revision kept no parent forest and answered `trace: None` on every
//! parallel counterexample — at the strongest level: if *any* reachable
//! configuration lacked a parent edge, a violation at that configuration
//! would be the one that loses its witness.
//!
//! Traces are validated structurally (start at the seed, steps chain,
//! end at the target), not compared step-for-step against the sequential
//! kernel: the forest records whichever schedule interned first, so a
//! parallel trace is a real run but not necessarily the BFS-shortest one.

use inseq_engine::ParallelExplorer;
use inseq_protocols::exploration_cases;

#[test]
fn every_visited_config_has_a_witness_trace_at_1_2_4_8_workers() {
    for case in exploration_cases() {
        for workers in [1usize, 2, 4, 8] {
            let exploration = ParallelExplorer::new(&case.program)
                .with_workers(workers)
                .explore([case.init.clone()])
                .unwrap_or_else(|e| panic!("{case}: exploration failed at w={workers}: {e}"));
            for config in exploration.configs() {
                let trace = exploration.trace_to(&config).unwrap_or_else(|| {
                    panic!(
                        "{case}, w={workers}: visited configuration {config} has no \
                         witness trace"
                    )
                });
                if config == case.init {
                    assert!(trace.is_empty(), "{case}, w={workers}: seed trace");
                    continue;
                }
                let first = &trace.steps[0];
                assert_eq!(
                    first.before, case.init,
                    "{case}, w={workers}: trace must start at the seed"
                );
                for pair in trace.steps.windows(2) {
                    assert_eq!(
                        pair[0].after, pair[1].before,
                        "{case}, w={workers}: steps must chain"
                    );
                }
                assert_eq!(
                    trace.last(),
                    Some(&config),
                    "{case}, w={workers}: trace must end at its target"
                );
            }
        }
    }
}
