//! Probe: how far does the Paxos IS check scale on this machine?
//!
//! Prints the wall-clock of the full IS premise check for growing instance
//! sizes. Useful for picking bench instances; see EXPERIMENTS.md for the
//! recorded results (R=2,N=2 ≈ 0.5 s; R=3,N=2 ≈ 42 s; R=2,N=3 > 10 min).
//!
//! ```text
//! cargo run --release -p inseq-bench --example paxos_scaling_probe
//! ```

fn main() {
    let artifacts = inseq_protocols::paxos::build();
    for (r, n) in [(1i64, 2i64), (2, 2), (3, 2)] {
        let inst = inseq_protocols::paxos::Instance::new(r, n);
        let t = std::time::Instant::now();
        match inseq_protocols::paxos::application(&artifacts, inst).check() {
            Ok(rep) => println!("R={r} N={n}: ok in {:?} ({rep})", t.elapsed()),
            Err(e) => println!("R={r} N={n}: {e} after {:?}", t.elapsed()),
        }
    }
}
