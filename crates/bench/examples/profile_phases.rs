//! Scratch profiling probe: wall-time of exploration vs the rest of the
//! verification pipeline for the heavy Table-1 cases.

use std::time::Instant;

use inseq_kernel::{Explorer, StateUniverse};

fn main() {
    for case in inseq_protocols::exploration_cases() {
        let t = Instant::now();
        let exp = Explorer::new(&case.program)
            .explore([case.init.clone()])
            .unwrap();
        let explore = t.elapsed();
        let t = Instant::now();
        let u = StateUniverse::from_exploration(&exp);
        let universe = t.elapsed();
        println!(
            "{:<22} explore {:>9.3?} ({} configs, {} edges)  universe {:>9.3?} ({} stores)",
            case.name,
            explore,
            exp.config_count(),
            exp.edge_count(),
            universe,
            u.store_count()
        );
    }
    // Full pipelines for the heavy hitters.
    for (name, run) in [
        (
            "Paxos",
            Box::new(|| {
                inseq_protocols::paxos::verify(inseq_protocols::paxos::Instance::new(2, 2))
                    .map(|_| ())
                    .unwrap()
            }) as Box<dyn Fn()>,
        ),
        (
            "Broadcast",
            Box::new(|| {
                inseq_protocols::broadcast::verify(&inseq_protocols::broadcast::Instance::new(&[
                    3, 1, 2,
                ]))
                .map(|_| ())
                .unwrap()
            }),
        ),
        (
            "2PC",
            Box::new(|| {
                inseq_protocols::two_phase_commit::verify(
                    &inseq_protocols::two_phase_commit::Instance::new(&[true, false, true]),
                )
                .map(|_| ())
                .unwrap()
            }),
        ),
    ] {
        let t = Instant::now();
        run();
        println!("{name:<22} full pipeline {:>9.3?}", t.elapsed());
    }
}
