//! The `table1 --large` tier: exploration throughput on parametric
//! instances, with configs/sec as the headline metric.
//!
//! Unlike the Table 1 rows — which time the *whole* verification pipeline —
//! the large tier times exploration alone, on instances sized to visit
//! 10^4–10^6+ configurations ([`inseq_protocols::large_exploration_cases`]).
//! Each case runs on a selectable engine: the sequential kernel explorer
//! (`seq`), the channel-migration baseline (`mpsc`), or the work-stealing
//! engine (`steal`); `compare` interleaves all three per run so
//! before/after rows come from adjacent measurements, not separate
//! sessions.
//!
//! Every row cross-checks its visited/edge counts against the other engines
//! of the same case and run — a configuration dropped or duplicated by a
//! parallel engine fails the benchmark instead of silently skewing it.

use std::time::{Duration, Instant};

use inseq_engine::{MpscExplorer, ParallelExplorer, Reducer};
use inseq_kernel::{Explorer, ReduceMode};
use inseq_obs::EngineSnapshot;
use inseq_protocols::common::{CaseError, ExplorationCase};
use inseq_protocols::large_exploration_cases;

/// Which exploration engine a [`LargeRow`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LargeEngine {
    /// The sequential kernel explorer (`inseq_kernel::Explorer`).
    Seq,
    /// The channel-migration baseline (`inseq_engine::MpscExplorer`).
    Mpsc,
    /// The work-stealing engine (`inseq_engine::ParallelExplorer`).
    Steal,
}

impl LargeEngine {
    /// The CLI name of the engine (`--engine seq|mpsc|steal`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LargeEngine::Seq => "seq",
            LargeEngine::Mpsc => "mpsc",
            LargeEngine::Steal => "steal",
        }
    }
}

/// Options of one `table1 --large` invocation.
#[derive(Debug, Clone)]
pub struct LargeOptions {
    /// Engines to run, in per-case interleaving order.
    pub engines: Vec<LargeEngine>,
    /// Worker counts for the parallel engines (`seq` ignores this).
    pub workers: Vec<usize>,
    /// Measurement repetitions; rows carry their run index.
    pub runs: usize,
    /// Case-name needles (`--only`), case-insensitive; `None` = all cases.
    pub only: Option<Vec<String>>,
    /// State-space reduction (`--reduce off|por|sym|both`). `seq` and
    /// `steal` honor it; the `mpsc` baseline always explores unreduced.
    pub reduce: ReduceMode,
    /// Run over the scenario-zoo cases (`table1 --zoo`) — the protocols
    /// promoted from the coverage-guided fuzz campaign
    /// ([`inseq_protocols::zoo`]) — instead of the parametric large
    /// instances. Zoo state spaces are tiny; the tier exists so the zoo's
    /// verdicts get the same cross-engine agreement checks as everything
    /// else, not for throughput numbers.
    pub zoo: bool,
}

impl Default for LargeOptions {
    fn default() -> Self {
        LargeOptions {
            engines: vec![LargeEngine::Steal],
            workers: vec![2, 4],
            runs: 1,
            only: None,
            reduce: ReduceMode::Off,
            zoo: false,
        }
    }
}

/// One measurement: a case explored once by one engine at one worker count.
#[derive(Debug, Clone)]
pub struct LargeRow {
    /// Protocol name as in Table 1.
    pub name: String,
    /// Instance label (e.g. `R = 4, N = 2`).
    pub instance: String,
    /// Engine that ran.
    pub engine: LargeEngine,
    /// Worker threads (always 1 for `seq`).
    pub workers: usize,
    /// Zero-based measurement repetition.
    pub run: usize,
    /// Reduction the row ran under (`off` for the `mpsc` baseline).
    pub reduce: ReduceMode,
    /// Exploration wall clock.
    pub time: Duration,
    /// Visited configurations. Identical across engines when unreduced;
    /// under reduction the count depends on visit order (ample choices and
    /// orbit encounters differ per schedule), so only verdicts are
    /// cross-checked.
    pub visited: usize,
    /// Transition edges (see `visited` for the cross-engine contract).
    pub edges: usize,
    /// Whether any reachable configuration fails a gate (cross-checked
    /// across engines in every mode).
    pub failed: bool,
    /// Engine shape: per-shard occupancy and steal/migration traffic
    /// (default for `seq`).
    pub stats: EngineSnapshot,
}

impl LargeRow {
    /// The headline metric: visited configurations per second.
    #[must_use]
    pub fn configs_per_sec(&self) -> f64 {
        let secs = self.time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // display statistic only
            {
                self.visited as f64 / secs
            }
        }
    }
}

/// The machine's core count as reported by the OS, recorded in bench
/// entries so a speedup figure can be read against the hardware it ran on.
#[must_use]
pub fn machine_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn selected_cases(only: Option<&[String]>, zoo: bool) -> Result<Vec<ExplorationCase>, CaseError> {
    let (cases, tier) = if zoo {
        (inseq_protocols::zoo::zoo_exploration_cases(), "--zoo")
    } else {
        (large_exploration_cases(), "--large")
    };
    let Some(needles) = only else {
        return Ok(cases);
    };
    if needles.is_empty() {
        return Err(CaseError::new(
            "--only",
            "no needles given; pass one or more protocol-name fragments".to_owned(),
        ));
    }
    let matched_by = |needle: &String| {
        let needle = needle.to_lowercase();
        move |name: &str| name.to_lowercase().contains(&needle)
    };
    if let Some(unmatched) = needles
        .iter()
        .find(|needle| !cases.iter().any(|c| matched_by(needle)(&c.name)))
    {
        let known: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        return Err(CaseError::new(
            "--only",
            format!("needle `{unmatched}` matches no {tier} case; known cases: {known:?}"),
        ));
    }
    Ok(cases
        .into_iter()
        .filter(|c| needles.iter().any(|needle| matched_by(needle)(&c.name)))
        .collect())
}

/// The reducer for a case: the requested mode, with the case's symmetry
/// group attached when it has one.
fn reducer_for(case: &ExplorationCase, reduce: ReduceMode) -> Reducer {
    match &case.symmetry {
        Some(spec) => Reducer::new(reduce).with_symmetry(spec.clone()),
        None => Reducer::new(reduce),
    }
}

fn explore_once(
    case: &ExplorationCase,
    engine: LargeEngine,
    workers: usize,
    run: usize,
    reduce: ReduceMode,
) -> Result<LargeRow, CaseError> {
    let reducer = reducer_for(case, reduce);
    let start = Instant::now();
    let (visited, edges, failed, stats) = match engine {
        LargeEngine::Seq => {
            let mut explorer = Explorer::new(&case.program);
            if reduce != ReduceMode::Off {
                explorer = explorer.with_reduction(&reducer);
            }
            let exp = explorer
                .explore([case.init.clone()])
                .map_err(|e| CaseError::new(&case.name, e))?;
            let snapshot = EngineSnapshot {
                pruned: exp.pruned(),
                orbit_collapses: exp.orbit_collapses(),
                ..EngineSnapshot::default()
            };
            (
                exp.config_count(),
                exp.edge_count(),
                exp.has_failure(),
                snapshot,
            )
        }
        LargeEngine::Mpsc => {
            let exp = MpscExplorer::new(&case.program)
                .with_workers(workers)
                .explore([case.init.clone()])
                .map_err(|e| CaseError::new(&case.name, e))?;
            (
                exp.config_count(),
                exp.edge_count(),
                exp.has_failure(),
                exp.stats().engine_snapshot(),
            )
        }
        LargeEngine::Steal => {
            let mut explorer = ParallelExplorer::new(&case.program).with_workers(workers);
            if reduce != ReduceMode::Off {
                explorer = explorer.with_reduction(&reducer);
            }
            let exp = explorer
                .explore([case.init.clone()])
                .map_err(|e| CaseError::new(&case.name, e))?;
            (
                exp.config_count(),
                exp.edge_count(),
                exp.has_failure(),
                exp.stats().engine_snapshot(),
            )
        }
    };
    Ok(LargeRow {
        name: case.name.clone(),
        instance: case.instance.clone(),
        engine,
        workers: if engine == LargeEngine::Seq {
            1
        } else {
            workers
        },
        run,
        reduce: if engine == LargeEngine::Mpsc {
            ReduceMode::Off
        } else {
            reduce
        },
        time: start.elapsed(),
        visited,
        edges,
        failed,
        stats,
    })
}

/// Runs the large tier and returns one row per (case, run, engine, worker
/// count) in execution order. Engines of the same case and run are
/// interleaved (each engine/worker combination runs back-to-back on the
/// same case), so a before/after comparison reads adjacent measurements.
///
/// # Errors
///
/// Returns the first failing exploration, an unmatched `--only` needle, or
/// a cross-engine disagreement. Unreduced, the engines must agree on
/// visited/edge counts bit-for-bit (a dropped or duplicated configuration
/// in a parallel engine); under `--reduce` the reduced frontier is
/// schedule-dependent, so only the verdict is cross-checked.
pub fn large_rows(opts: &LargeOptions) -> Result<Vec<LargeRow>, CaseError> {
    let cases = selected_cases(opts.only.as_deref(), opts.zoo)?;
    let worker_counts = if opts.workers.is_empty() {
        vec![2]
    } else {
        opts.workers.clone()
    };
    let mut rows = Vec::new();
    for run in 0..opts.runs.max(1) {
        for case in &cases {
            let mut reference: Option<(usize, usize, bool, &'static str, usize)> = None;
            for &workers in &worker_counts {
                for &engine in &opts.engines {
                    if engine == LargeEngine::Seq && workers != worker_counts[0] {
                        continue; // seq has no worker axis; run it once per case+run
                    }
                    let row = explore_once(case, engine, workers, run, opts.reduce)?;
                    if let Some((v, e, f, ref_engine, ref_workers)) = reference {
                        if opts.reduce == ReduceMode::Off && (row.visited != v || row.edges != e) {
                            return Err(CaseError::new(
                                &case.name,
                                format!(
                                    "engine disagreement: {} at {} worker(s) visited {} configs \
                                     ({} edges) but {ref_engine} at {ref_workers} worker(s) \
                                     visited {v} ({e} edges)",
                                    row.engine.name(),
                                    row.workers,
                                    row.visited,
                                    row.edges
                                ),
                            ));
                        }
                        if row.failed != f {
                            return Err(CaseError::new(
                                &case.name,
                                format!(
                                    "verdict disagreement under --reduce {}: {} at {} worker(s) \
                                     reports failed = {} but {ref_engine} at {ref_workers} \
                                     worker(s) reports failed = {f}",
                                    opts.reduce,
                                    row.engine.name(),
                                    row.workers,
                                    row.failed
                                ),
                            ));
                        }
                    } else {
                        reference = Some((
                            row.visited,
                            row.edges,
                            row.failed,
                            row.engine.name(),
                            row.workers,
                        ));
                    }
                    rows.push(row);
                }
            }
        }
    }
    Ok(rows)
}

/// Renders large-tier rows as a text table, configs/sec last.
#[must_use]
pub fn render_large(rows: &[LargeRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<14} {:>5} {:>3} {:>3} {:>4} {:>9} {:>10} {:>10} {:>12}\n",
        "Example", "Instance", "eng", "w", "run", "red", "visited", "edges", "time", "configs/sec"
    ));
    out.push_str(&format!("{}\n", "-".repeat(101)));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<14} {:>5} {:>3} {:>3} {:>4} {:>9} {:>10} {:>9.2}s {:>12.0}\n",
            r.name,
            r.instance,
            r.engine.name(),
            r.workers,
            r.run,
            r.reduce.name(),
            r.visited,
            r.edges,
            r.time.as_secs_f64(),
            r.configs_per_sec()
        ));
    }
    out
}

/// The `--stats` section for large rows: engine shape per parallel row.
#[must_use]
pub fn render_large_stats(rows: &[LargeRow]) -> String {
    let mut out = String::from("\nEngine shape (per parallel row):\n");
    for r in rows {
        if r.stats.ran() {
            out.push_str(&format!(
                "  {:<22} {:<14} {:>5} w={}: {}\n",
                r.name,
                r.instance,
                r.engine.name(),
                r.workers,
                r.stats
            ));
        }
    }
    out
}

/// Large-tier rows as a JSON array. Every row records the machine's core
/// count and its worker count so throughput figures stay interpretable.
#[must_use]
pub fn large_rows_as_json(rows: &[LargeRow]) -> String {
    use inseq_core::json;
    let cores = machine_cores();
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"example\": \"{}\", \"instance\": \"{}\", \"engine\": \"{}\", \
             \"workers\": {}, \"machine_cores\": {cores}, \"run\": {}, \
             \"reduce\": \"{}\", \"time_seconds\": {:.6}, \"visited_configs\": {}, \
             \"edges\": {}, \"configs_per_sec\": {:.1}, {}}}",
            json::escape(&r.name),
            json::escape(&r.instance),
            r.engine.name(),
            r.workers,
            r.run,
            r.reduce.name(),
            r.time.as_secs_f64(),
            r.visited,
            r.edges,
            r.configs_per_sec(),
            json::engine_fields(&r.stats),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmatched_needle_is_an_error_not_a_silent_shrink() {
        let err = selected_cases(Some(&["no-such-protocol".to_owned()]), false)
            .expect_err("bogus needle must not silently select nothing");
        assert!(err.to_string().contains("no-such-protocol"));
        assert!(err.to_string().contains("known cases"));
    }

    #[test]
    fn needles_select_case_insensitively() {
        let cases = selected_cases(Some(&["broadcast".to_owned()]), false).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].name, "Broadcast consensus");
    }

    #[test]
    fn empty_needle_list_is_rejected() {
        assert!(selected_cases(Some(&[]), false).is_err());
    }

    #[test]
    fn zoo_tier_selects_the_zoo_roster() {
        let cases = selected_cases(None, true).unwrap();
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["starved-relay", "inc-double-race", "sum-guard"]);
        let err = selected_cases(Some(&["broadcast".to_owned()]), true)
            .expect_err("table 1 protocols are not zoo cases");
        assert!(err.to_string().contains("--zoo"));
    }

    #[test]
    fn zoo_rows_agree_across_engines_including_verdicts() {
        let rows = large_rows(&LargeOptions {
            engines: vec![LargeEngine::Seq, LargeEngine::Mpsc, LargeEngine::Steal],
            workers: vec![2],
            zoo: true,
            ..LargeOptions::default()
        })
        .expect("zoo tier must agree across engines");
        assert_eq!(rows.len(), 9, "3 cases × 3 engines");
        assert!(
            rows.iter().any(|r| r.name == "inc-double-race" && r.failed),
            "the race's failure verdict must survive every engine"
        );
        assert!(
            rows.iter().all(|r| r.name != "starved-relay" || !r.failed),
            "starved-relay deadlocks but never fails"
        );
    }

    #[test]
    fn configs_per_sec_is_visited_over_wall() {
        let row = LargeRow {
            name: "x".into(),
            instance: "y".into(),
            engine: LargeEngine::Seq,
            workers: 1,
            run: 0,
            reduce: ReduceMode::Off,
            time: Duration::from_secs(2),
            visited: 10_000,
            edges: 0,
            failed: false,
            stats: EngineSnapshot::default(),
        };
        assert!((row.configs_per_sec() - 5_000.0).abs() < 1e-9);
    }
}
