//! Regenerates the paper's Table 1 (and, with `--compare`, the §5.2
//! invariant-complexity comparison).
//!
//! ```text
//! cargo run --release -p inseq-bench --bin table1 [-- --compare] [--jobs N]
//! ```
//!
//! `--jobs N` runs the seven protocol pipelines as independent jobs on an
//! `inseq-engine` scheduler with `N` threads instead of sequentially.
//!
//! `--json [path]` emits machine-readable rows — per-protocol wall time,
//! visited-configuration count, and edge count — to `path` (conventionally
//! `BENCH_table1.json` at the repo root) or to stdout when no path follows.
//!
//! `--only a,b` restricts the run to protocols whose name contains one of
//! the comma-separated needles (case-insensitive); CI uses this for a cheap
//! bench smoke over the fastest cases.
//!
//! `--stats` appends an observability section to the rendered table:
//! per-protocol interner and mover-cache hit rates, pairwise-check counts,
//! and the slowest premises. The JSON rows always carry these counters.
//!
//! `--exec compiled|interp` selects the DSL evaluation backend for every
//! action in the run: the register-bytecode VM (the default) or the
//! tree-walk reference interpreter. Used to regenerate the before/after
//! rows of `BENCH_table1.json`.

use std::process::ExitCode;

use inseq_core::json;
use inseq_kernel::ExecStats;
use inseq_obs::HitMissSnapshot;
use inseq_protocols::common::CaseReport;

/// Interner traffic, mover-cache traffic, pairwise-check count, and
/// evaluation-backend counters of one row, summed over its IS applications.
fn row_stats(r: &CaseReport) -> (HitMissSnapshot, HitMissSnapshot, u64, ExecStats) {
    let mut intern = HitMissSnapshot::default();
    let mut mover = HitMissSnapshot::default();
    let mut pairwise = 0u64;
    let mut exec = ExecStats::default();
    for p in &r.reports {
        intern = intern.merged(p.stats.intern);
        mover = mover.merged(p.stats.mover_cache);
        pairwise += p.stats.pairwise_checks;
        exec = exec.merged(p.stats.exec);
    }
    (intern, mover, pairwise, exec)
}

fn rows_as_json(rows: &[CaseReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let visited: usize = r.reports.iter().map(|p| p.reachable_configs).sum();
        let edges: usize = r.reports.iter().map(|p| p.edges).sum();
        let (intern, mover, pairwise, exec) = row_stats(r);
        let premises: Vec<inseq_obs::PhaseStat> = r
            .reports
            .iter()
            .flat_map(|p| p.stats.premises.iter().cloned())
            .collect();
        out.push_str(&format!(
            "  {{\"example\": \"{}\", \"instance\": \"{}\", \"is_applications\": {}, \
             \"loc_total\": {}, \"loc_is\": {}, \"loc_impl\": {}, \"time_seconds\": {:.6}, \
             \"visited_configs\": {}, \"edges\": {}, {}, {}, \
             \"pairwise_checks\": {}, {}, \"premises\": {}}}",
            json::escape(&r.name),
            json::escape(&r.instance),
            r.is_applications,
            r.loc_total,
            r.loc_is,
            r.loc_impl,
            r.time.as_secs_f64(),
            visited,
            edges,
            json::hit_miss_fields("intern", &intern),
            json::hit_miss_fields("mover_cache", &mover),
            pairwise,
            json::exec_fields(&exec),
            json::phases(&premises)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// The `--stats` section: cache effectiveness and the slowest premises per
/// protocol.
fn render_stats(rows: &[CaseReport]) -> String {
    let mut out = String::from("\nObservability (summed over each row's IS applications):\n");
    for r in rows {
        let (intern, mover, pairwise, exec) = row_stats(r);
        out.push_str(&format!(
            "  {:<22} interner {intern}; mover cache {mover} over {pairwise} pairwise checks\n",
            r.name
        ));
        out.push_str(&format!(
            "    exec: {} compiled action(s) ({} ops, {:.3}ms compile), \
             {} VM / {} interp evaluations\n",
            exec.compiled_actions,
            exec.compiled_ops,
            exec.compile_nanos as f64 / 1e6,
            exec.vm_evals,
            exec.interp_evals
        ));
        let mut premises: Vec<_> = r
            .reports
            .iter()
            .flat_map(|p| p.stats.premises.iter())
            .collect();
        premises.sort_by_key(|p| std::cmp::Reverse(p.wall));
        for p in premises.iter().take(3) {
            out.push_str(&format!("    {p}\n"));
        }
    }
    out
}

/// `--json` handling: absent, bare (stdout), or with a target path.
enum JsonMode {
    Off,
    Stdout,
    File(String),
}

fn parse_json_mode(args: &[String]) -> JsonMode {
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--json=") {
            return JsonMode::File(path.to_owned());
        }
        if arg == "--json" {
            return match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => JsonMode::File(next.clone()),
                _ => JsonMode::Stdout,
            };
        }
    }
    JsonMode::Off
}

fn parse_only(args: &[String]) -> Option<Vec<String>> {
    for (i, arg) in args.iter().enumerate() {
        let list = if let Some(v) = arg.strip_prefix("--only=") {
            Some(v.to_owned())
        } else if arg == "--only" {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(list) = list {
            return Some(
                list.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect(),
            );
        }
    }
    None
}

fn parse_jobs(args: &[String]) -> Result<usize, String> {
    let mut jobs = 1usize;
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_owned())
        } else if arg == "--jobs" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .ok_or("--jobs requires a thread count")?,
            )
        } else {
            None
        };
        if let Some(v) = value {
            jobs = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                format!("invalid --jobs value `{v}` (expected a positive integer)")
            })?;
        }
    }
    Ok(jobs)
}

fn parse_exec(args: &[String]) -> Result<Option<inseq_lang::ExecMode>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(v) = arg.strip_prefix("--exec=") {
            Some(v.to_owned())
        } else if arg == "--exec" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .ok_or("--exec requires a backend (compiled|interp)")?,
            )
        } else {
            None
        };
        if let Some(v) = value {
            return match v.as_str() {
                "compiled" => Ok(Some(inseq_lang::ExecMode::Compiled)),
                "interp" => Ok(Some(inseq_lang::ExecMode::Interp)),
                other => Err(format!(
                    "invalid --exec value `{other}` (expected `compiled` or `interp`)"
                )),
            };
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compare = args.iter().any(|a| a == "--compare");
    let stats = args.iter().any(|a| a == "--stats");
    match parse_exec(&args) {
        Ok(Some(mode)) => {
            if !inseq_lang::set_default_exec_mode(mode) {
                eprintln!("--exec: evaluation backend was already fixed for this process");
                return ExitCode::FAILURE;
            }
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let json = parse_json_mode(&args);
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let only = parse_only(&args);
    let rows = || {
        if let Some(needles) = &only {
            inseq_bench::table1_rows_only(needles)
        } else if jobs > 1 {
            inseq_bench::table1_rows_with(jobs)
        } else {
            inseq_bench::table1_rows()
        }
    };

    if !matches!(json, JsonMode::Off) {
        match rows() {
            Ok(rows) => {
                let payload = rows_as_json(&rows);
                match json {
                    JsonMode::File(path) => {
                        if let Err(e) = std::fs::write(&path, &payload) {
                            eprintln!("failed to write `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {} rows to {path}", rows.len());
                    }
                    _ => print!("{payload}"),
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("Table 1 generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("Reproduction of Table 1 (Kragl et al., PLDI 2020)");
    println!("columns: #IS applications, pretty-printed LOC (total / IS artifacts / impl), time\n");
    if jobs > 1 {
        println!("(cases scheduled on {jobs} engine threads)\n");
    }
    match rows() {
        Ok(rows) => {
            print!("{}", inseq_bench::render_table1(&rows));
            if stats {
                print!("{}", render_stats(&rows));
            }
        }
        Err(e) => {
            eprintln!("Table 1 generation failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if compare {
        println!(
            "\n§5.2 invariant-complexity comparison (IS artifacts vs flat inductive invariants)\n"
        );
        match inseq_bench::broadcast_comparison() {
            Ok(c) => println!("{c}\n"),
            Err(e) => {
                eprintln!("broadcast comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match inseq_bench::paxos_comparison() {
            Ok(c) => println!("{c}"),
            Err(e) => {
                eprintln!("paxos comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
