//! Regenerates the paper's Table 1 (and, with `--compare`, the §5.2
//! invariant-complexity comparison).
//!
//! ```text
//! cargo run --release -p inseq-bench --bin table1 [-- --compare] [--jobs N]
//! ```
//!
//! `--jobs N` runs the seven protocol pipelines as independent jobs on an
//! `inseq-engine` scheduler with `N` threads instead of sequentially.

use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_as_json(rows: &[inseq_protocols::common::CaseReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"example\": \"{}\", \"instance\": \"{}\", \"is_applications\": {}, \
             \"loc_total\": {}, \"loc_is\": {}, \"loc_impl\": {}, \"time_seconds\": {:.6}}}",
            json_escape(&r.name),
            json_escape(&r.instance),
            r.is_applications,
            r.loc_total,
            r.loc_is,
            r.loc_impl,
            r.time.as_secs_f64()
        ));
    }
    out.push_str("\n]\n");
    out
}

fn parse_jobs(args: &[String]) -> Result<usize, String> {
    let mut jobs = 1usize;
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_owned())
        } else if arg == "--jobs" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .ok_or("--jobs requires a thread count")?,
            )
        } else {
            None
        };
        if let Some(v) = value {
            jobs = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --jobs value `{v}` (expected a positive integer)"))?;
        }
    }
    Ok(jobs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compare = args.iter().any(|a| a == "--compare");
    let json = args.iter().any(|a| a == "--json");
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = || {
        if jobs > 1 {
            inseq_bench::table1_rows_with(jobs)
        } else {
            inseq_bench::table1_rows()
        }
    };

    if json {
        match rows() {
            Ok(rows) => {
                print!("{}", rows_as_json(&rows));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("Table 1 generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("Reproduction of Table 1 (Kragl et al., PLDI 2020)");
    println!("columns: #IS applications, pretty-printed LOC (total / IS artifacts / impl), time\n");
    if jobs > 1 {
        println!("(cases scheduled on {jobs} engine threads)\n");
    }
    match rows() {
        Ok(rows) => print!("{}", inseq_bench::render_table1(&rows)),
        Err(e) => {
            eprintln!("Table 1 generation failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if compare {
        println!("\n§5.2 invariant-complexity comparison (IS artifacts vs flat inductive invariants)\n");
        match inseq_bench::broadcast_comparison() {
            Ok(c) => println!("{c}\n"),
            Err(e) => {
                eprintln!("broadcast comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match inseq_bench::paxos_comparison() {
            Ok(c) => println!("{c}"),
            Err(e) => {
                eprintln!("paxos comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
