//! Regenerates the paper's Table 1 (and, with `--compare`, the §5.2
//! invariant-complexity comparison).
//!
//! ```text
//! cargo run --release -p inseq-bench --bin table1 [-- --compare]
//! ```

use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_as_json(rows: &[inseq_protocols::common::CaseReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"example\": \"{}\", \"instance\": \"{}\", \"is_applications\": {}, \
             \"loc_total\": {}, \"loc_is\": {}, \"loc_impl\": {}, \"time_seconds\": {:.6}}}",
            json_escape(&r.name),
            json_escape(&r.instance),
            r.is_applications,
            r.loc_total,
            r.loc_is,
            r.loc_impl,
            r.time.as_secs_f64()
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() -> ExitCode {
    let compare = std::env::args().any(|a| a == "--compare");
    let json = std::env::args().any(|a| a == "--json");

    if json {
        match inseq_bench::table1_rows() {
            Ok(rows) => {
                print!("{}", rows_as_json(&rows));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("Table 1 generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("Reproduction of Table 1 (Kragl et al., PLDI 2020)");
    println!("columns: #IS applications, pretty-printed LOC (total / IS artifacts / impl), time\n");
    match inseq_bench::table1_rows() {
        Ok(rows) => print!("{}", inseq_bench::render_table1(&rows)),
        Err(e) => {
            eprintln!("Table 1 generation failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if compare {
        println!("\n§5.2 invariant-complexity comparison (IS artifacts vs flat inductive invariants)\n");
        match inseq_bench::broadcast_comparison() {
            Ok(c) => println!("{c}\n"),
            Err(e) => {
                eprintln!("broadcast comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match inseq_bench::paxos_comparison() {
            Ok(c) => println!("{c}"),
            Err(e) => {
                eprintln!("paxos comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
