//! Regenerates the paper's Table 1 (and, with `--compare`, the §5.2
//! invariant-complexity comparison).
//!
//! ```text
//! cargo run --release -p inseq-bench --bin table1 [-- --compare] [--jobs N]
//! ```
//!
//! `--jobs N` runs the seven protocol pipelines as independent jobs on an
//! `inseq-engine` scheduler with `N` threads instead of sequentially.
//!
//! `--json [path]` emits machine-readable rows — per-protocol wall time,
//! visited-configuration count, and edge count — to `path` (conventionally
//! `BENCH_table1.json` at the repo root) or to stdout when no path follows.
//!
//! `--only a,b` restricts the run to protocols whose name contains one of
//! the comma-separated needles (case-insensitive); CI uses this for a cheap
//! bench smoke over the fastest cases.
//!
//! `--stats` appends an observability section to the rendered table:
//! per-protocol interner and mover-cache hit rates, pairwise-check counts,
//! and the slowest premises. The JSON rows always carry these counters.
//!
//! `--exec compiled|interp` selects the DSL evaluation backend for every
//! action in the run: the register-bytecode VM (the default) or the
//! tree-walk reference interpreter. Used to regenerate the before/after
//! rows of `BENCH_table1.json`.
//!
//! `--large` switches to the exploration-throughput tier: the parametric
//! instances of `inseq_protocols::large_exploration_cases()` (10^4–10^6+
//! visited configurations), timed on a selectable engine with configs/sec
//! as the headline metric. Its companions:
//!
//! * `--engine seq|mpsc|steal|compare` — the sequential kernel, the
//!   channel-migration baseline, the work-stealing engine (default), or all
//!   three interleaved per run;
//! * `--workers a,b` — worker counts for the parallel engines (default
//!   `2,4`);
//! * `--sweep-workers a,b,c` — the scaling-sweep spelling of `--workers`
//!   (mutually exclusive with it): one row per worker count per case, e.g.
//!   `--sweep-workers 1,2,4,8` for the shard-scaling curve that
//!   `BENCH_table1.json` and the CI scaling artifact record;
//! * `--runs N` — measurement repetitions (default 1);
//! * `--reduce off|por|sym|both` — state-space reduction for the `seq` and
//!   `steal` engines (default `off`): ample-set partial-order reduction,
//!   process-id symmetry quotienting (cases with a symmetry spec, currently
//!   Paxos), or both. Rows record pruned-successor and orbit-collapse
//!   counters; cross-engine checks compare verdicts instead of exact
//!   visited counts when reduction is on. The `mpsc` baseline always runs
//!   unreduced.
//!
//! `--zoo` runs the same exploration tier over the scenario-zoo protocols
//! (`inseq_protocols::zoo` — programs promoted from the coverage-guided
//! fuzz campaign) instead of the parametric large instances. The zoo's
//! state spaces are tiny; the tier's value is the cross-engine verdict
//! agreement checks over the zoo's deadlock/failure/pass archetypes. All
//! `--large` companions (`--engine`, `--workers`, `--runs`, `--reduce`)
//! apply.
//!
//! `--only`, `--json`, and `--stats` compose with `--large` and `--zoo`;
//! `--jobs`, `--exec`, and `--compare` do not apply to them.

use std::process::ExitCode;

use inseq_core::json;
use inseq_kernel::ExecStats;
use inseq_obs::{EngineSnapshot, HitMissSnapshot};
use inseq_protocols::common::CaseReport;

/// Interner traffic, engine shape, mover-cache traffic, pairwise-check
/// count, and evaluation-backend counters of one row, summed over its IS
/// applications.
struct RowStats {
    intern: HitMissSnapshot,
    engine: EngineSnapshot,
    mover: HitMissSnapshot,
    pairwise: u64,
    exec: ExecStats,
}

fn row_stats(r: &CaseReport) -> RowStats {
    let mut stats = RowStats {
        intern: HitMissSnapshot::default(),
        engine: EngineSnapshot::default(),
        mover: HitMissSnapshot::default(),
        pairwise: 0,
        exec: ExecStats::default(),
    };
    for p in &r.reports {
        stats.intern = stats.intern.merged(p.stats.intern);
        stats.engine = stats.engine.merged(&p.stats.engine);
        stats.mover = stats.mover.merged(p.stats.mover_cache);
        stats.pairwise += p.stats.pairwise_checks;
        stats.exec = stats.exec.merged(p.stats.exec);
    }
    stats
}

fn rows_as_json(rows: &[CaseReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let visited: usize = r.reports.iter().map(|p| p.reachable_configs).sum();
        let edges: usize = r.reports.iter().map(|p| p.edges).sum();
        let stats = row_stats(r);
        let premises: Vec<inseq_obs::PhaseStat> = r
            .reports
            .iter()
            .flat_map(|p| p.stats.premises.iter().cloned())
            .collect();
        out.push_str(&format!(
            "  {{\"example\": \"{}\", \"instance\": \"{}\", \"is_applications\": {}, \
             \"loc_total\": {}, \"loc_is\": {}, \"loc_impl\": {}, \"time_seconds\": {:.6}, \
             \"visited_configs\": {}, \"edges\": {}, {}, {}, {}, \
             \"pairwise_checks\": {}, {}, \"premises\": {}}}",
            json::escape(&r.name),
            json::escape(&r.instance),
            r.is_applications,
            r.loc_total,
            r.loc_is,
            r.loc_impl,
            r.time.as_secs_f64(),
            visited,
            edges,
            json::hit_miss_fields("intern", &stats.intern),
            json::engine_fields(&stats.engine),
            json::hit_miss_fields("mover_cache", &stats.mover),
            stats.pairwise,
            json::exec_fields(&stats.exec),
            json::phases(&premises)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// The `--stats` section: cache effectiveness and the slowest premises per
/// protocol.
fn render_stats(rows: &[CaseReport]) -> String {
    let mut out = String::from("\nObservability (summed over each row's IS applications):\n");
    for r in rows {
        let RowStats {
            intern,
            engine,
            mover,
            pairwise,
            exec,
        } = row_stats(r);
        out.push_str(&format!(
            "  {:<22} interner {intern}; mover cache {mover} over {pairwise} pairwise checks\n",
            r.name
        ));
        if engine.ran() {
            out.push_str(&format!("    engine: {engine}\n"));
        }
        out.push_str(&format!(
            "    exec: {} compiled action(s) ({} ops, {:.3}ms compile), \
             {} VM / {} interp evaluations\n",
            exec.compiled_actions,
            exec.compiled_ops,
            exec.compile_nanos as f64 / 1e6,
            exec.vm_evals,
            exec.interp_evals
        ));
        let mut premises: Vec<_> = r
            .reports
            .iter()
            .flat_map(|p| p.stats.premises.iter())
            .collect();
        premises.sort_by_key(|p| std::cmp::Reverse(p.wall));
        for p in premises.iter().take(3) {
            out.push_str(&format!("    {p}\n"));
        }
    }
    out
}

/// `--json` handling: absent, bare (stdout), or with a target path.
enum JsonMode {
    Off,
    Stdout,
    File(String),
}

fn parse_json_mode(args: &[String]) -> JsonMode {
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--json=") {
            return JsonMode::File(path.to_owned());
        }
        if arg == "--json" {
            return match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => JsonMode::File(next.clone()),
                _ => JsonMode::Stdout,
            };
        }
    }
    JsonMode::Off
}

fn parse_only(args: &[String]) -> Option<Vec<String>> {
    for (i, arg) in args.iter().enumerate() {
        let list = if let Some(v) = arg.strip_prefix("--only=") {
            Some(v.to_owned())
        } else if arg == "--only" {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(list) = list {
            return Some(
                list.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect(),
            );
        }
    }
    None
}

fn parse_jobs(args: &[String]) -> Result<usize, String> {
    let mut jobs = 1usize;
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_owned())
        } else if arg == "--jobs" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .ok_or("--jobs requires a thread count")?,
            )
        } else {
            None
        };
        if let Some(v) = value {
            jobs = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                format!("invalid --jobs value `{v}` (expected a positive integer)")
            })?;
        }
    }
    Ok(jobs)
}

/// A `--flag value` / `--flag=value` string option.
fn parse_value_of(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&prefix) {
            return Ok(Some(v.to_owned()));
        }
        if arg == flag {
            return args
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{flag} requires a value"));
        }
    }
    Ok(None)
}

fn parse_engines(args: &[String]) -> Result<Vec<inseq_bench::LargeEngine>, String> {
    use inseq_bench::LargeEngine;
    match parse_value_of(args, "--engine")?.as_deref() {
        None | Some("steal") => Ok(vec![LargeEngine::Steal]),
        Some("seq") => Ok(vec![LargeEngine::Seq]),
        Some("mpsc") => Ok(vec![LargeEngine::Mpsc]),
        Some("compare") => Ok(vec![
            LargeEngine::Seq,
            LargeEngine::Mpsc,
            LargeEngine::Steal,
        ]),
        Some(other) => Err(format!(
            "invalid --engine value `{other}` (expected `seq`, `mpsc`, `steal`, or `compare`)"
        )),
    }
}

fn parse_workers(args: &[String]) -> Result<Vec<usize>, String> {
    let sweep = parse_value_of(args, "--sweep-workers")?;
    let plain = parse_value_of(args, "--workers")?;
    if sweep.is_some() && plain.is_some() {
        return Err(
            "--sweep-workers and --workers are mutually exclusive (both set worker counts)"
                .to_owned(),
        );
    }
    let Some(list) = sweep.or(plain) else {
        return Ok(vec![2, 4]);
    };
    let counts: Result<Vec<usize>, _> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                format!("invalid --workers entry `{s}` (expected positive integers)")
            })
        })
        .collect();
    let counts = counts?;
    if counts.is_empty() {
        return Err("--workers requires at least one worker count".to_owned());
    }
    Ok(counts)
}

fn parse_reduce(args: &[String]) -> Result<inseq_kernel::ReduceMode, String> {
    match parse_value_of(args, "--reduce")? {
        None => Ok(inseq_kernel::ReduceMode::Off),
        Some(v) => inseq_kernel::ReduceMode::from_name(&v).ok_or_else(|| {
            format!("invalid --reduce value `{v}` (expected `off`, `por`, `sym`, or `both`)")
        }),
    }
}

fn parse_runs(args: &[String]) -> Result<usize, String> {
    match parse_value_of(args, "--runs")? {
        None => Ok(1),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --runs value `{v}` (expected a positive integer)")),
    }
}

/// The `--large` / `--zoo` path: run the exploration tier and render or
/// emit JSON.
fn run_large(
    args: &[String],
    json: JsonMode,
    stats: bool,
    only: Option<Vec<String>>,
    zoo: bool,
) -> ExitCode {
    let opts = {
        let engines = match parse_engines(args) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let workers = match parse_workers(args) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let runs = match parse_runs(args) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let reduce = match parse_reduce(args) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        inseq_bench::LargeOptions {
            engines,
            workers,
            runs,
            only,
            reduce,
            zoo,
        }
    };
    let tier = if zoo { "zoo" } else { "large" };
    let rows = match inseq_bench::large_rows(&opts) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("{tier} tier failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match json {
        JsonMode::File(path) => {
            let payload = inseq_bench::large_rows_as_json(&rows);
            if let Err(e) = std::fs::write(&path, &payload) {
                eprintln!("failed to write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} rows to {path}", rows.len());
        }
        JsonMode::Stdout => print!("{}", inseq_bench::large_rows_as_json(&rows)),
        JsonMode::Off => {
            println!(
                "{} exploration tier ({} machine core(s); engines: {})\n",
                if zoo { "Scenario-zoo" } else { "Large" },
                inseq_bench::machine_cores(),
                opts.engines
                    .iter()
                    .map(|e| e.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            print!("{}", inseq_bench::render_large(&rows));
            if stats {
                print!("{}", inseq_bench::render_large_stats(&rows));
            }
        }
    }
    ExitCode::SUCCESS
}

fn parse_exec(args: &[String]) -> Result<Option<inseq_lang::ExecMode>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(v) = arg.strip_prefix("--exec=") {
            Some(v.to_owned())
        } else if arg == "--exec" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .ok_or("--exec requires a backend (compiled|interp)")?,
            )
        } else {
            None
        };
        if let Some(v) = value {
            return match v.as_str() {
                "compiled" => Ok(Some(inseq_lang::ExecMode::Compiled)),
                "interp" => Ok(Some(inseq_lang::ExecMode::Interp)),
                other => Err(format!(
                    "invalid --exec value `{other}` (expected `compiled` or `interp`)"
                )),
            };
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compare = args.iter().any(|a| a == "--compare");
    let stats = args.iter().any(|a| a == "--stats");
    match parse_exec(&args) {
        Ok(Some(mode)) => {
            if !inseq_lang::set_default_exec_mode(mode) {
                eprintln!("--exec: evaluation backend was already fixed for this process");
                return ExitCode::FAILURE;
            }
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let json = parse_json_mode(&args);
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let only = parse_only(&args);
    let zoo = args.iter().any(|a| a == "--zoo");
    if zoo || args.iter().any(|a| a == "--large") {
        return run_large(&args, json, stats, only, zoo);
    }
    let rows = || {
        if let Some(needles) = &only {
            inseq_bench::table1_rows_only(needles)
        } else if jobs > 1 {
            inseq_bench::table1_rows_with(jobs)
        } else {
            inseq_bench::table1_rows()
        }
    };

    if !matches!(json, JsonMode::Off) {
        match rows() {
            Ok(rows) => {
                let payload = rows_as_json(&rows);
                match json {
                    JsonMode::File(path) => {
                        if let Err(e) = std::fs::write(&path, &payload) {
                            eprintln!("failed to write `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {} rows to {path}", rows.len());
                    }
                    _ => print!("{payload}"),
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("Table 1 generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("Reproduction of Table 1 (Kragl et al., PLDI 2020)");
    println!("columns: #IS applications, pretty-printed LOC (total / IS artifacts / impl), time\n");
    if jobs > 1 {
        println!("(cases scheduled on {jobs} engine threads)\n");
    }
    match rows() {
        Ok(rows) => {
            print!("{}", inseq_bench::render_table1(&rows));
            if stats {
                print!("{}", render_stats(&rows));
            }
        }
        Err(e) => {
            eprintln!("Table 1 generation failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if compare {
        println!(
            "\n§5.2 invariant-complexity comparison (IS artifacts vs flat inductive invariants)\n"
        );
        match inseq_bench::broadcast_comparison() {
            Ok(c) => println!("{c}\n"),
            Err(e) => {
                eprintln!("broadcast comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match inseq_bench::paxos_comparison() {
            Ok(c) => println!("{c}"),
            Err(e) => {
                eprintln!("paxos comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
