//! Benchmark harness regenerating the paper's evaluation (§5): the Table 1
//! rows, the §5.2 invariant-complexity comparison, the §5.3 iterated-IS
//! ablation, and a scaling sweep over instance sizes.
//!
//! The reference instances below are the largest that our explicit-state
//! checker (the SMT substitute, see DESIGN.md §2) verifies in interactive
//! time; EXPERIMENTS.md records the measured numbers next to the paper's.

#![forbid(unsafe_code)]
#![allow(clippy::result_large_err)] // pipeline errors embed case reports
#![warn(missing_docs)]

pub mod large;

pub use large::{
    large_rows, large_rows_as_json, machine_cores, render_large, render_large_stats, LargeEngine,
    LargeOptions, LargeRow,
};

use std::time::Duration;

use inseq_baseline::{broadcast_flat, check_flat_invariant, paxos_flat, FlatOptions};
use inseq_protocols::common::{CaseError, CaseReport};
use inseq_protocols::{
    broadcast, chang_roberts, n_buyer, paxos, ping_pong, producer_consumer, two_phase_commit,
};

/// The reference instance of each protocol (the sizes used for the Table 1
/// reproduction).
pub mod instances {
    use super::*;

    /// Broadcast consensus: `n = 3`, distinct values.
    #[must_use]
    pub fn broadcast() -> broadcast::Instance {
        broadcast::Instance::new(&[3, 1, 2])
    }

    /// Ping-Pong: `K = 4` rounds.
    #[must_use]
    pub fn ping_pong() -> ping_pong::Instance {
        ping_pong::Instance::new(4)
    }

    /// Producer-Consumer: `K = 4` items.
    #[must_use]
    pub fn producer_consumer() -> producer_consumer::Instance {
        producer_consumer::Instance::new(4)
    }

    /// N-Buyer: three buyers, affordable price.
    #[must_use]
    pub fn n_buyer() -> n_buyer::Instance {
        n_buyer::Instance::new(10, &[6, 6, 9])
    }

    /// Chang-Roberts: a ring of three nodes with the maximum in the middle.
    #[must_use]
    pub fn chang_roberts() -> chang_roberts::Instance {
        chang_roberts::Instance::new(&[10, 30, 20])
    }

    /// Two-phase commit: three participants with an early abort.
    #[must_use]
    pub fn two_phase_commit() -> two_phase_commit::Instance {
        two_phase_commit::Instance::new(&[true, false, true])
    }

    /// Paxos: two rounds, two acceptors.
    #[must_use]
    pub fn paxos() -> paxos::Instance {
        paxos::Instance::new(2, 2)
    }
}

/// Runs the full verification pipeline of every protocol on its reference
/// instance — the rows of our Table 1.
///
/// # Errors
///
/// Returns the first failing case.
pub fn table1_rows() -> Result<Vec<CaseReport>, CaseError> {
    Ok(vec![
        broadcast::verify(&instances::broadcast())?,
        ping_pong::verify(instances::ping_pong())?,
        producer_consumer::verify(instances::producer_consumer())?,
        n_buyer::verify(&instances::n_buyer())?,
        chang_roberts::verify(&instances::chang_roberts())?,
        two_phase_commit::verify(&instances::two_phase_commit())?,
        paxos::verify(instances::paxos())?,
    ])
}

/// Like [`table1_rows`], but restricted to protocols whose Table-1 name
/// contains any of `needles` (case-insensitive) — the `table1 --only a,b`
/// path, used by the CI bench smoke to run just the fastest cases.
///
/// # Errors
///
/// Returns the first failing selected case, or a synthetic error when any
/// needle matches no protocol (a misspelled `--only` must not silently
/// shrink the benchmark).
pub fn table1_rows_only(needles: &[String]) -> Result<Vec<CaseReport>, CaseError> {
    type CaseRunner = Box<dyn FnOnce() -> Result<CaseReport, CaseError>>;
    let runners: Vec<(&str, CaseRunner)> = vec![
        (
            "Broadcast consensus",
            Box::new(|| broadcast::verify(&instances::broadcast())),
        ),
        (
            "Ping-Pong",
            Box::new(|| ping_pong::verify(instances::ping_pong())),
        ),
        (
            "Producer-Consumer",
            Box::new(|| producer_consumer::verify(instances::producer_consumer())),
        ),
        (
            "N-Buyer",
            Box::new(|| n_buyer::verify(&instances::n_buyer())),
        ),
        (
            "Chang-Roberts",
            Box::new(|| chang_roberts::verify(&instances::chang_roberts())),
        ),
        (
            "Two-phase commit",
            Box::new(|| two_phase_commit::verify(&instances::two_phase_commit())),
        ),
        ("Paxos", Box::new(|| paxos::verify(instances::paxos()))),
    ];
    if needles.is_empty() {
        return Err(CaseError::new(
            "--only",
            "no needles given; pass one or more protocol-name fragments".to_owned(),
        ));
    }
    let matched_by = |needle: &String| {
        let needle = needle.to_lowercase();
        move |name: &str| name.to_lowercase().contains(&needle)
    };
    if let Some(unmatched) = needles
        .iter()
        .find(|needle| !runners.iter().any(|(name, _)| matched_by(needle)(name)))
    {
        let known: Vec<&str> = runners.iter().map(|(name, _)| *name).collect();
        return Err(CaseError::new(
            "--only",
            format!("needle `{unmatched}` matches no Table-1 protocol; known protocols: {known:?}"),
        ));
    }
    let mut rows = Vec::new();
    for (name, run) in runners {
        if needles.iter().any(|needle| matched_by(needle)(name)) {
            rows.push(run()?);
        }
    }
    Ok(rows)
}

/// Like [`table1_rows`], but runs the seven protocol pipelines as
/// independent jobs on an `inseq-engine` scheduler with `jobs` threads
/// (the `table1 --jobs N` path). Row order matches [`table1_rows`].
///
/// # Errors
///
/// Returns the failing case with the smallest row index (deterministic even
/// though cases finish in parallel).
pub fn table1_rows_with(jobs: usize) -> Result<Vec<CaseReport>, CaseError> {
    use inseq_engine::{Engine, Job, JobResult};
    use std::sync::Mutex;

    type CaseRunner = Box<dyn FnOnce() -> Result<CaseReport, CaseError> + Send>;
    let runners: Vec<(&str, CaseRunner)> = vec![
        (
            "Broadcast consensus",
            Box::new(|| broadcast::verify(&instances::broadcast())),
        ),
        (
            "Ping-Pong",
            Box::new(|| ping_pong::verify(instances::ping_pong())),
        ),
        (
            "Producer-Consumer",
            Box::new(|| producer_consumer::verify(instances::producer_consumer())),
        ),
        (
            "N-Buyer",
            Box::new(|| n_buyer::verify(&instances::n_buyer())),
        ),
        (
            "Chang-Roberts",
            Box::new(|| chang_roberts::verify(&instances::chang_roberts())),
        ),
        (
            "Two-phase commit",
            Box::new(|| two_phase_commit::verify(&instances::two_phase_commit())),
        ),
        ("Paxos", Box::new(|| paxos::verify(instances::paxos()))),
    ];

    let slots: Mutex<Vec<Option<Result<CaseReport, CaseError>>>> =
        Mutex::new(runners.iter().map(|_| None).collect());
    let engine_jobs: Vec<Job<'_>> = runners
        .into_iter()
        .enumerate()
        .map(|(row, (name, run))| {
            let slots = &slots;
            Job::new(name, move || {
                let outcome = run();
                let result = match &outcome {
                    Ok(report) => JobResult::pass()
                        .with_visited(report.reports.iter().map(|r| r.reachable_configs).sum())
                        .with_detail(format!("{:.3}s", report.time.as_secs_f64())),
                    Err(e) => JobResult::fail(e.to_string()),
                };
                slots.lock().expect("table1 slot table poisoned")[row] = Some(outcome);
                result
            })
        })
        .collect();

    Engine::new().with_threads(jobs.max(1)).run(engine_jobs);
    slots
        .into_inner()
        .expect("table1 slot table poisoned")
        .into_iter()
        .map(|slot| slot.expect("every case job ran"))
        .collect()
}

/// Renders Table 1 rows in the paper's column layout.
#[must_use]
pub fn render_table1(rows: &[CaseReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>4} {:>6} {:>6} {:>6} {:>10}   {}\n",
        "Example", "#IS", "Total", "IS", "Impl", "Time", "Instance"
    ));
    out.push_str(&format!("{}\n", "-".repeat(78)));
    for row in rows {
        out.push_str(&format!("{row}\n"));
    }
    out
}

/// One side of the §5.2 invariant-complexity comparison.
#[derive(Debug, Clone)]
pub struct ComparisonSide {
    /// Which artifact this measures.
    pub label: String,
    /// Proof-artifact size: DSL LOC for IS, formula complexity for flat.
    pub artifact_size: usize,
    /// Top-level pieces: IS applications or invariant conjuncts.
    pub pieces: usize,
    /// Wall-clock checking time.
    pub time: Duration,
}

/// The §5.2 comparison for one protocol: IS artifacts vs the flat invariant.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Protocol name.
    pub protocol: String,
    /// The IS side.
    pub is_side: ComparisonSide,
    /// The flat-invariant side.
    pub flat_side: ComparisonSide,
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:\n  IS    artifacts: size {:>4}, {:>2} application(s), {:>9.3}s",
            self.protocol,
            self.is_side.artifact_size,
            self.is_side.pieces,
            self.is_side.time.as_secs_f64()
        )?;
        write!(
            f,
            "  flat  invariant: size {:>4}, {:>2} conjunct(s),    {:>9.3}s",
            self.flat_side.artifact_size,
            self.flat_side.pieces,
            self.flat_side.time.as_secs_f64()
        )
    }
}

/// The broadcast-consensus §5.2 comparison: the iterated IS proof vs the
/// paper's invariant (2).
///
/// # Errors
///
/// Returns a description of the failing side.
pub fn broadcast_comparison() -> Result<Comparison, String> {
    let instance = instances::broadcast();
    // IS side.
    let artifacts = broadcast::build();
    let (chain_result, is_time) =
        inseq_protocols::common::timed(|| broadcast::iterated_chain(&artifacts, &instance).run());
    let outcome = chain_result.map_err(|e| e.to_string())?;
    let is_loc: usize = [
        &artifacts.main_seq,
        &artifacts.inv_broadcast,
        &artifacts.main_mid,
        &artifacts.inv_collect,
        &artifacts.collect_abs_weak,
    ]
    .iter()
    .map(|a| inseq_lang::action_loc(a))
    .sum();
    // Flat side.
    let flat = broadcast_flat::build();
    let inv = broadcast_flat::invariant();
    let init = broadcast_flat::init_config(&flat, &instance.values);
    let report = check_flat_invariant(&flat.p2, init, &inv, FlatOptions::default())
        .map_err(|e| e.to_string())?;
    Ok(Comparison {
        protocol: "Broadcast consensus".into(),
        is_side: ComparisonSide {
            label: "iterated IS".into(),
            artifact_size: is_loc,
            pieces: outcome.reports.len(),
            time: is_time,
        },
        flat_side: ComparisonSide {
            label: inv.name,
            artifact_size: report.complexity,
            pieces: report.conjuncts,
            time: report.time,
        },
    })
}

/// The Paxos §5.2 comparison: `PaxosInv` + abstractions vs the Ivy-style
/// flat invariant.
///
/// # Errors
///
/// Returns a description of the failing side.
pub fn paxos_comparison() -> Result<Comparison, String> {
    let instance = instances::paxos();
    let artifacts = paxos::build();
    let (check_result, is_time) =
        inseq_protocols::common::timed(|| paxos::application(&artifacts, instance).check());
    check_result.map_err(|e| e.to_string())?;
    let is_loc: usize = [
        &artifacts.round_seq,
        &artifacts.main_seq,
        &artifacts.inv,
        &artifacts.start_round_abs,
        &artifacts.join_abs,
        &artifacts.propose_abs,
        &artifacts.vote_abs,
        &artifacts.conclude_abs,
    ]
    .iter()
    .map(|a| inseq_lang::action_loc(a))
    .sum();
    let inv = paxos_flat::invariant();
    let (p2, init) = paxos_flat::program_and_init(instance);
    let report = check_flat_invariant(
        &p2,
        init,
        &inv,
        FlatOptions {
            perturbations: 50,
            ..FlatOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    Ok(Comparison {
        protocol: "Paxos".into(),
        is_side: ComparisonSide {
            label: "IS (PaxosInv + 5 abstractions)".into(),
            artifact_size: is_loc,
            pieces: 1,
            time: is_time,
        },
        flat_side: ComparisonSide {
            label: inv.name,
            artifact_size: report.complexity,
            pieces: report.conjuncts,
            time: report.time,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_instances_are_well_formed() {
        assert_eq!(instances::broadcast().n, 3);
        assert_eq!(instances::paxos().quorum(), 2);
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let rows = vec![];
        let text = render_table1(&rows);
        assert!(text.contains("#IS"));
    }
}
