//! Lipton reduction: validating atomic sequences.
//!
//! A sequence of atomic actions executed by one thread can be summarised
//! into a single atomic action when its mover types match the pattern
//! `right*; non-mover?; left*` — any interleaving with other threads can
//! then be permuted into one where the sequence runs uninterrupted (§2.1 of
//! the paper). This module provides the pattern check and a helper that
//! infers the pattern for a whole sequence of actions.

use inseq_kernel::{ActionName, Program, StateUniverse};

use crate::check::infer_mover_type;
use crate::types::MoverType;

/// Whether a sequence of mover types matches `right*; non-mover?; left*` and
/// can therefore be summarised into one atomic action.
#[must_use]
pub fn atomic_pattern(types: &[MoverType]) -> bool {
    let mut idx = 0;
    // right* (both-movers count as right movers here)
    while idx < types.len() && types[idx].is_right() {
        idx += 1;
    }
    // non-mover?
    if idx < types.len() && types[idx] == MoverType::None {
        idx += 1;
    }
    // left*
    while idx < types.len() && types[idx].is_left() {
        idx += 1;
    }
    idx == types.len()
}

/// Infers the mover type of each named action and reports whether the whole
/// sequence forms an atomic block.
///
/// Returns the per-action mover types alongside the verdict so callers can
/// display which step broke the pattern.
#[must_use]
pub fn summarize_mover_types(
    program: &Program,
    universe: &StateUniverse,
    sequence: &[ActionName],
) -> (Vec<MoverType>, bool) {
    let types: Vec<MoverType> = sequence
        .iter()
        .map(|name| infer_mover_type(program, universe, name))
        .collect();
    let ok = atomic_pattern(&types);
    (types, ok)
}

/// Summarizes a *continuation chain* of fine-grained actions into a single
/// atomic action — the transformation Lipton reduction justifies and the
/// paper applies to obtain Fig. 1-② from Fig. 1-①.
///
/// A chain is a set of action names implementing one logical procedure in
/// continuation-passing style: each task performs one fine-grained step and
/// spawns at most its continuation(s) within the chain, plus arbitrary
/// pending asyncs to actions *outside* the chain. The summary action, from
/// an input store, runs the whole chain to completion **within one atomic
/// step**:
///
/// * a gate violation anywhere in the chain makes the summary fail;
/// * a branch on which some chain task blocks contributes no transition
///   (so e.g. a summarized receive loop blocks until all its messages are
///   available — exactly the atomic `Collect` of Fig. 1-②);
/// * pending asyncs to non-chain actions accumulate into the summary's
///   created set.
///
/// Soundness requires the chain's steps to form an atomic sequence
/// (`right*; non-mover?; left*`) — validate with [`summarize_mover_types`] /
/// [`atomic_pattern`]; this function performs only the summarisation.
///
/// # Panics
///
/// The returned action panics if invoked with an arity different from the
/// entry action's.
#[must_use]
pub fn summarize_chain(
    program: &Program,
    label: &str,
    entry: &ActionName,
    chain: &std::collections::BTreeSet<ActionName>,
) -> inseq_kernel::NativeAction {
    use inseq_kernel::{ActionOutcome, GlobalStore, Multiset, PendingAsync, Transition, Value};
    use std::collections::BTreeSet;

    let program = program.clone();
    let entry = entry.clone();
    let chain = chain.clone();
    let arity = program
        .action(&entry)
        .map(|a| a.arity())
        .unwrap_or_else(|_| panic!("entry action `{entry}` not in program"));
    inseq_kernel::NativeAction::new(label, arity, move |g: &GlobalStore, args: &[Value]| {
        // Each state: (globals, chain PAs still to run, outward created).
        type SumState = (GlobalStore, Multiset<PendingAsync>, Multiset<PendingAsync>);
        let mut states: BTreeSet<SumState> = BTreeSet::new();
        states.insert((
            g.clone(),
            Multiset::singleton(PendingAsync::new(entry.clone(), args.to_vec())),
            Multiset::new(),
        ));
        let mut done: BTreeSet<(GlobalStore, Multiset<PendingAsync>)> = BTreeSet::new();
        while let Some(state) = states.iter().next().cloned() {
            states.remove(&state);
            let (globals, pending, created) = state;
            let Some(pa) = pending.distinct().next().cloned() else {
                done.insert((globals, created));
                continue;
            };
            let rest = pending.without(&pa).expect("distinct PA present");
            match program.eval_pa(&globals, &pa) {
                Err(e) => {
                    return ActionOutcome::Failure {
                        reason: format!("chain step {pa}: {e}"),
                    }
                }
                Ok(ActionOutcome::Failure { reason }) => {
                    return ActionOutcome::Failure { reason };
                }
                Ok(ActionOutcome::Transitions(ts)) => {
                    // No transitions: this branch blocks — it contributes
                    // nothing (the summary blocks on it).
                    for t in ts {
                        let mut next_pending = rest.clone();
                        let mut next_created = created.clone();
                        for new_pa in t.created.iter() {
                            if chain.contains(&new_pa.action) {
                                next_pending.insert(new_pa.clone());
                            } else {
                                next_created.insert(new_pa.clone());
                            }
                        }
                        states.insert((t.globals, next_pending, next_created));
                    }
                }
            }
        }
        ActionOutcome::Transitions(
            done.into_iter()
                .map(|(globals, created)| Transition::new(globals, created))
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use MoverType::{Both, Left, None as NonMover, Right};

    #[test]
    fn canonical_patterns() {
        assert!(atomic_pattern(&[]));
        assert!(atomic_pattern(&[Right, Right, NonMover, Left, Left]));
        assert!(atomic_pattern(&[NonMover]));
        assert!(atomic_pattern(&[Left, Left]));
        assert!(atomic_pattern(&[Right, Right]));
        assert!(atomic_pattern(&[Both, Both, Both]));
    }

    #[test]
    fn rejected_patterns() {
        assert!(!atomic_pattern(&[Left, Right]));
        assert!(!atomic_pattern(&[NonMover, NonMover]));
        assert!(!atomic_pattern(&[Left, NonMover]));
        assert!(!atomic_pattern(&[NonMover, Right]));
    }

    #[test]
    fn both_movers_are_flexible() {
        // A both-mover may sit anywhere.
        assert!(atomic_pattern(&[Both, NonMover, Both]));
        assert!(atomic_pattern(&[Right, Both, NonMover, Both, Left]));
    }
}
