//! Parallel mover classification on the [`inseq_engine`] job scheduler.
//!
//! Mover queries are embarrassingly parallel: whether one action is a
//! left/right mover is independent of every other action's classification.
//! [`classify_actions_with`] fans the per-action pairwise sweeps out as one
//! job per (action, side) query on an [`Engine`] thread pool. Each job
//! builds its own [`MoverChecker`] so the per-checker memo cache (a
//! `RefCell`, deliberately not shared across threads) stays thread-local.

use std::collections::BTreeMap;
use std::sync::Mutex;

use inseq_engine::{Engine, EngineReport, Job, JobResult};
use inseq_kernel::{ActionName, Program, StateUniverse};

use crate::check::MoverChecker;
use crate::types::MoverType;

/// Infers the mover type of every action of the program, like
/// [`classify_actions`](crate::classify_actions), but running the per-action
/// left/right queries concurrently on `engine`.
///
/// Returns the same table as the sequential driver plus the engine's per-job
/// statistics (two jobs per action: `left:<name>` and `right:<name>`).
#[must_use]
pub fn classify_actions_with(
    program: &Program,
    universe: &StateUniverse,
    engine: &Engine,
) -> (BTreeMap<ActionName, MoverType>, EngineReport) {
    let names: Vec<ActionName> = program.action_names().cloned().collect();
    let flags: Mutex<BTreeMap<ActionName, (bool, bool)>> =
        Mutex::new(names.iter().map(|n| (n.clone(), (false, false))).collect());

    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(names.len() * 2);
    for name in &names {
        let action = program
            .action(name)
            .expect("action_names() yields defined actions")
            .clone();
        for left in [true, false] {
            let side = if left { "left" } else { "right" };
            let action = action.clone();
            let flags = &flags;
            jobs.push(Job::new(format!("{side}:{name}"), move || {
                let checker = MoverChecker::new(program, universe);
                let verdict = if left {
                    checker.check_left(&action, name)
                } else {
                    checker.check_right(&action, name)
                };
                let is_mover = verdict.is_ok();
                let mut table = flags.lock().expect("mover flag table poisoned");
                let entry = table.get_mut(name).expect("name seeded above");
                if left {
                    entry.0 = is_mover;
                } else {
                    entry.1 = is_mover;
                }
                // A "no" is a classification, not an obligation failure.
                JobResult::pass().with_detail(match verdict {
                    Ok(()) => format!("{side} mover"),
                    Err(v) => format!("not a {side} mover: {v}"),
                })
            }));
        }
    }

    let report = engine.run(jobs);
    let table = flags
        .into_inner()
        .expect("mover flag table poisoned")
        .into_iter()
        .map(|(name, (left, right))| (name, MoverType::from_flags(left, right)))
        .collect();
    (table, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify_actions;
    use inseq_kernel::demo::counter_program;
    use inseq_kernel::Explorer;

    #[test]
    fn parallel_classification_matches_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let u = StateUniverse::from_exploration(&exp);
        let sequential = classify_actions(&p, &u);
        for threads in [1, 4] {
            let engine = Engine::new().with_threads(threads);
            let (parallel, report) = classify_actions_with(&p, &u, &engine);
            assert_eq!(parallel, sequential, "threads = {threads}");
            assert_eq!(report.jobs.len(), 2 * sequential.len());
            assert!(report.all_passed());
        }
    }
}
