//! The left-mover conditions of §3 (and their right-mover duals), checked by
//! enumeration over a state universe.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;
use std::rc::Rc;
use std::sync::Arc;

use inseq_kernel::hash::FxHasher;
use inseq_kernel::{
    ActionName, ActionOutcome, ActionSemantics, ArgsId, BagId, GlobalStore, Interner, PendingAsync,
    Program, StateUniverse, StoreId,
};
use inseq_obs::HitMissSnapshot;

use crate::types::MoverType;

/// A violated mover condition, with a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoverViolation {
    /// Condition (1): the mover's gate was not forward-preserved by a step of
    /// another action.
    GateNotForwardPreserved {
        /// The candidate mover PA.
        mover: PendingAsync,
        /// The action that destroyed the gate.
        other: PendingAsync,
        /// The store at which the other action stepped.
        store: GlobalStore,
        /// The failure reason after the step.
        reason: String,
    },
    /// Condition (2): the other action's gate held after the mover but not
    /// before it.
    GateNotBackwardPreserved {
        /// The candidate mover PA.
        mover: PendingAsync,
        /// The action whose gate was manufactured by the mover.
        other: PendingAsync,
        /// The store before the mover's step.
        store: GlobalStore,
    },
    /// Condition (3): executing `other; mover` reached a state that
    /// `mover; other` cannot reach (with identical created pending asyncs).
    DoesNotCommute {
        /// The candidate mover PA.
        mover: PendingAsync,
        /// The action it fails to commute with.
        other: PendingAsync,
        /// The store at which commutation fails.
        store: GlobalStore,
        /// The end store reachable only in the original order.
        target: GlobalStore,
    },
    /// Condition (4): the mover blocks from a store satisfying its gate.
    Blocking {
        /// The candidate mover PA.
        mover: PendingAsync,
        /// The store at which the mover has no transition.
        store: GlobalStore,
    },
}

impl MoverViolation {
    /// The store at which the violated condition was observed. Every
    /// variant carries one; when the store entered the universe from an
    /// exploration, [`inseq_kernel::StateUniverse::provenance`] names a
    /// reachable configuration exhibiting it, from which the originating
    /// exploration can reconstruct a concrete witness run.
    #[must_use]
    pub fn store(&self) -> &GlobalStore {
        match self {
            MoverViolation::GateNotForwardPreserved { store, .. }
            | MoverViolation::GateNotBackwardPreserved { store, .. }
            | MoverViolation::DoesNotCommute { store, .. }
            | MoverViolation::Blocking { store, .. } => store,
        }
    }
}

impl fmt::Display for MoverViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoverViolation::GateNotForwardPreserved {
                mover,
                other,
                store,
                reason,
            } => write!(
                f,
                "gate of {mover} is not forward-preserved by {other} at {store}: {reason}"
            ),
            MoverViolation::GateNotBackwardPreserved {
                mover,
                other,
                store,
            } => write!(
                f,
                "gate of {other} is not backward-preserved by {mover} at {store}"
            ),
            MoverViolation::DoesNotCommute {
                mover,
                other,
                store,
                target,
            } => write!(
                f,
                "{mover} does not commute past {other} at {store}: end store {target} \
                 is unreachable in the commuted order"
            ),
            MoverViolation::Blocking { mover, store } => {
                write!(f, "{mover} blocks at {store} although its gate holds")
            }
        }
    }
}

/// Memoization key: action identity (by `Arc` address) plus *interned* input
/// store and argument-list ids. The same `(store, args)` inputs recur across
/// many co-enabled pairs, so caching turns the quadratic pairwise sweep into
/// mostly lookups — and with id keys a lookup hashes three machine words
/// instead of a store-and-arguments tree.
type EvalKey = (usize, StoreId, ArgsId);

type EvalCache = HashMap<EvalKey, Rc<CachedOutcome>, BuildHasherDefault<FxHasher>>;

/// An action outcome with interned post-stores and created bags. Cached
/// behind `Rc` so a memo hit is a pointer bump, not an outcome deep-clone,
/// and so the pairwise conditions compare end stores and created multisets
/// by id equality.
#[derive(Debug)]
enum CachedOutcome {
    Failure(String),
    Transitions(Vec<CachedTransition>),
}

#[derive(Debug, Clone, Copy)]
struct CachedTransition {
    globals: StoreId,
    created: BagId,
}

/// Observability counters of one [`MoverChecker`]: evaluation-cache
/// effectiveness plus the number of pairwise condition checks performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoverStats {
    /// Hits/misses of the `(action, store, args)` evaluation cache.
    pub eval_cache: HitMissSnapshot,
    /// `(mover, partner, store)` triples checked against conditions (1)-(3)
    /// or their right-mover duals.
    pub pairwise_checks: u64,
}

impl MoverStats {
    /// Component-wise sum, for aggregating per-job checkers.
    #[must_use]
    pub fn merged(self, other: MoverStats) -> MoverStats {
        MoverStats {
            eval_cache: self.eval_cache.merged(other.eval_cache),
            pairwise_checks: self.pairwise_checks + other.pairwise_checks,
        }
    }
}

/// A mover-condition checker bound to a program and a quantification
/// universe. Action evaluations are memoized for the checker's lifetime.
#[derive(Debug)]
pub struct MoverChecker<'a> {
    program: &'a Program,
    universe: &'a StateUniverse,
    interner: RefCell<Interner>,
    cache: RefCell<EvalCache>,
    /// Stats live in `Cell`s (the checker is single-threaded by
    /// construction — `RefCell` everywhere) so read-only checking methods
    /// can count without widening their borrows.
    eval_hits: Cell<u64>,
    eval_misses: Cell<u64>,
    pairwise: Cell<u64>,
}

impl<'a> MoverChecker<'a> {
    /// Creates a checker for `program` quantifying over `universe`.
    #[must_use]
    pub fn new(program: &'a Program, universe: &'a StateUniverse) -> Self {
        // One-time action setup (e.g. compiling to bytecode) ahead of the
        // quadratic pairwise-eval loops.
        program.prepare_actions();
        MoverChecker {
            program,
            universe,
            interner: RefCell::new(Interner::new()),
            cache: RefCell::new(EvalCache::default()),
            eval_hits: Cell::new(0),
            eval_misses: Cell::new(0),
            pairwise: Cell::new(0),
        }
    }

    /// The checker's counters so far. Observability data only; resetting or
    /// ignoring them never changes a verdict.
    #[must_use]
    pub fn stats(&self) -> MoverStats {
        MoverStats {
            eval_cache: HitMissSnapshot::new(self.eval_hits.get(), self.eval_misses.get()),
            pairwise_checks: self.pairwise.get(),
        }
    }

    fn outcome_at(
        &self,
        action: &Arc<dyn ActionSemantics>,
        store: StoreId,
        args: ArgsId,
    ) -> Rc<CachedOutcome> {
        let key = (Arc::as_ptr(action).cast::<()>() as usize, store, args);
        if let Some(hit) = self.cache.borrow().get(&key) {
            self.eval_hits.set(self.eval_hits.get() + 1);
            return Rc::clone(hit);
        }
        self.eval_misses.set(self.eval_misses.get() + 1);
        let out = {
            let interner = self.interner.borrow();
            action.eval(interner.store(store), interner.args(args))
        };
        let cached = Rc::new(match out {
            ActionOutcome::Failure { reason } => CachedOutcome::Failure(reason),
            ActionOutcome::Transitions(ts) => {
                let mut interner = self.interner.borrow_mut();
                CachedOutcome::Transitions(
                    ts.iter()
                        .map(|t| CachedTransition {
                            globals: interner.intern_store(&t.globals),
                            created: interner.intern_bag(&t.created),
                        })
                        .collect(),
                )
            }
        });
        self.cache.borrow_mut().insert(key, Rc::clone(&cached));
        cached
    }

    /// Checks that `mover` (which executes wherever PAs named `mover_name`
    /// appear in the universe) is a **left mover** w.r.t. every action of the
    /// program — the paper's `LeftMover(l, P)`.
    ///
    /// `mover` may be an *abstraction* of the action named `mover_name`; the
    /// paper's (LM) condition checks exactly this situation.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition with a concrete witness.
    pub fn check_left(
        &self,
        mover: &Arc<dyn ActionSemantics>,
        mover_name: &ActionName,
    ) -> Result<(), MoverViolation> {
        // The mover may be an abstraction outside the program's action map,
        // so it gets its own setup call.
        mover.prepare();
        // Conditions (1)-(3): pairwise against every co-enabled partner.
        for (pa_l, pa_x, stores) in self.universe.coenabled_with_first(mover_name) {
            let x = match self.program.action(&pa_x.action) {
                Ok(x) => x,
                Err(_) => continue, // partner no longer in the pool
            };
            for g in stores {
                self.check_pair_left(mover, pa_l, x, pa_x, g)?;
            }
        }
        // Condition (4): non-blocking from every store where the gate holds.
        for (g, args) in self.universe.enabled_at(mover_name) {
            let (g_id, args_id) = {
                let mut interner = self.interner.borrow_mut();
                (interner.intern_store(g), interner.intern_args(args))
            };
            match &*self.outcome_at(mover, g_id, args_id) {
                CachedOutcome::Failure(_) => {} // outside the gate: vacuous
                CachedOutcome::Transitions(ts) => {
                    if ts.is_empty() {
                        return Err(MoverViolation::Blocking {
                            mover: PendingAsync::new(mover_name.clone(), args.clone()),
                            store: g.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_pair_left(
        &self,
        l: &Arc<dyn ActionSemantics>,
        pa_l: &PendingAsync,
        x: &Arc<dyn ActionSemantics>,
        pa_x: &PendingAsync,
        g: &GlobalStore,
    ) -> Result<(), MoverViolation> {
        self.pairwise.set(self.pairwise.get() + 1);
        let (g_id, l_args, x_args) = {
            let mut interner = self.interner.borrow_mut();
            (
                interner.intern_store(g),
                interner.intern_args(&pa_l.args),
                interner.intern_args(&pa_x.args),
            )
        };
        let l_out = self.outcome_at(l, g_id, l_args);
        let x_out = self.outcome_at(x, g_id, x_args);
        let l_fails = matches!(*l_out, CachedOutcome::Failure(_));

        // (1) Forward preservation of ρ_l by x: if ρ_l holds at g and x steps
        // g → g′, then ρ_l holds at g′.
        if !l_fails {
            if let CachedOutcome::Transitions(x_ts) = &*x_out {
                for t in x_ts {
                    if let CachedOutcome::Failure(reason) = &*self.outcome_at(l, t.globals, l_args)
                    {
                        return Err(MoverViolation::GateNotForwardPreserved {
                            mover: pa_l.clone(),
                            other: pa_x.clone(),
                            store: g.clone(),
                            reason: reason.clone(),
                        });
                    }
                }
            }
        }

        // (2) Backward preservation of ρ_x by l: if l steps g → g′ and ρ_x
        // holds at g′, then ρ_x already held at g.
        if let CachedOutcome::Transitions(l_ts) = &*l_out {
            if matches!(*x_out, CachedOutcome::Failure(_)) {
                for t in l_ts {
                    if !matches!(
                        *self.outcome_at(x, t.globals, x_args),
                        CachedOutcome::Failure(_)
                    ) {
                        return Err(MoverViolation::GateNotBackwardPreserved {
                            mover: pa_l.clone(),
                            other: pa_x.clone(),
                            store: g.clone(),
                        });
                    }
                }
            }
        }

        // (3) Commutativity: every outcome of x; l is an outcome of l; x
        // (same end store, same created PAs on both sides — compared by
        // interned id, so each comparison is O(1)).
        if !l_fails {
            if let CachedOutcome::Transitions(x_ts) = &*x_out {
                for tx in x_ts {
                    let l_after = self.outcome_at(l, tx.globals, l_args);
                    if let CachedOutcome::Transitions(l_after) = &*l_after {
                        for tl in l_after {
                            if !self.commuted_order_reaches(
                                l, l_args, x, x_args, g_id, tl.globals, tl.created, tx.created,
                            ) {
                                return Err(MoverViolation::DoesNotCommute {
                                    mover: pa_l.clone(),
                                    other: pa_x.clone(),
                                    store: g.clone(),
                                    target: self.interner.borrow().store(tl.globals).clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Is there a path l; x from `g` to `target` creating exactly
    /// (`omega_l`, `omega_x`)? All states and bags are interned ids, so the
    /// membership test is a scan of id comparisons.
    #[allow(clippy::too_many_arguments)]
    fn commuted_order_reaches(
        &self,
        l: &Arc<dyn ActionSemantics>,
        l_args: ArgsId,
        x: &Arc<dyn ActionSemantics>,
        x_args: ArgsId,
        g: StoreId,
        target: StoreId,
        omega_l: BagId,
        omega_x: BagId,
    ) -> bool {
        let l_first = self.outcome_at(l, g, l_args);
        let l_ts = match &*l_first {
            CachedOutcome::Transitions(ts) => ts,
            CachedOutcome::Failure(_) => return false,
        };
        for tl in l_ts {
            if tl.created != omega_l {
                continue;
            }
            let x_after = self.outcome_at(x, tl.globals, x_args);
            if let CachedOutcome::Transitions(x_ts) = &*x_after {
                if x_ts
                    .iter()
                    .any(|tx| tx.globals == target && tx.created == omega_x)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Checks that `mover` is a **right mover** w.r.t. every action of the
    /// program: every outcome of `mover; x` is an outcome of `x; mover`, and
    /// gates are preserved in the dual directions.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition with a concrete witness.
    pub fn check_right(
        &self,
        mover: &Arc<dyn ActionSemantics>,
        mover_name: &ActionName,
    ) -> Result<(), MoverViolation> {
        mover.prepare();
        for (pa_r, pa_x, stores) in self.universe.coenabled_with_first(mover_name) {
            let x = match self.program.action(&pa_x.action) {
                Ok(x) => x,
                Err(_) => continue,
            };
            for g in stores {
                self.check_pair_right(mover, pa_r, x, pa_x, g)?;
            }
        }
        Ok(())
    }

    fn check_pair_right(
        &self,
        r: &Arc<dyn ActionSemantics>,
        pa_r: &PendingAsync,
        x: &Arc<dyn ActionSemantics>,
        pa_x: &PendingAsync,
        g: &GlobalStore,
    ) -> Result<(), MoverViolation> {
        self.pairwise.set(self.pairwise.get() + 1);
        let (g_id, r_args, x_args) = {
            let mut interner = self.interner.borrow_mut();
            (
                interner.intern_store(g),
                interner.intern_args(&pa_r.args),
                interner.intern_args(&pa_x.args),
            )
        };
        let r_out = self.outcome_at(r, g_id, r_args);
        // Dual of (1): ρ_x forward-preserved by r — if ρ_x holds at g and r
        // steps g → g1, ρ_x must hold at g1 (else x's failure is lost when x
        // moves before r).
        if let CachedOutcome::Transitions(r_ts) = &*r_out {
            if !matches!(*self.outcome_at(x, g_id, x_args), CachedOutcome::Failure(_)) {
                for t in r_ts {
                    if let CachedOutcome::Failure(reason) = &*self.outcome_at(x, t.globals, x_args)
                    {
                        return Err(MoverViolation::GateNotForwardPreserved {
                            mover: pa_r.clone(),
                            other: pa_x.clone(),
                            store: g.clone(),
                            reason: reason.clone(),
                        });
                    }
                }
            }
            // Commutation r; x ⊑ x; r.
            for tr in r_ts {
                let x_after = self.outcome_at(x, tr.globals, x_args);
                if let CachedOutcome::Transitions(x_ts) = &*x_after {
                    for tx in x_ts {
                        if !self.commuted_order_reaches(
                            x, x_args, r, r_args, g_id, tx.globals, tx.created, tr.created,
                        ) {
                            return Err(MoverViolation::DoesNotCommute {
                                mover: pa_r.clone(),
                                other: pa_x.clone(),
                                store: g.clone(),
                                target: self.interner.borrow().store(tx.globals).clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convenience wrapper: checks `LeftMover(action, program)` for an action of
/// the program itself.
///
/// # Errors
///
/// Returns the first violated condition with a concrete witness.
pub fn check_left_mover(
    program: &Program,
    universe: &StateUniverse,
    name: &ActionName,
) -> Result<(), MoverViolation> {
    let action = program
        .action(name)
        .unwrap_or_else(|_| panic!("action `{name}` not in program"));
    MoverChecker::new(program, universe).check_left(action, name)
}

/// Convenience wrapper: checks that `name` is a right mover in `program`.
///
/// # Errors
///
/// Returns the first violated condition with a concrete witness.
pub fn check_right_mover(
    program: &Program,
    universe: &StateUniverse,
    name: &ActionName,
) -> Result<(), MoverViolation> {
    let action = program
        .action(name)
        .unwrap_or_else(|_| panic!("action `{name}` not in program"));
    MoverChecker::new(program, universe).check_right(action, name)
}

/// Infers the strongest mover type of `name` over the universe.
#[must_use]
pub fn infer_mover_type(
    program: &Program,
    universe: &StateUniverse,
    name: &ActionName,
) -> MoverType {
    let left = check_left_mover(program, universe, name).is_ok();
    let right = check_right_mover(program, universe, name).is_ok();
    MoverType::from_flags(left, right)
}

/// Infers the mover type of **every** action of the program — the mover
/// annotation table CIVL's type checker would produce.
///
/// # Example
///
/// ```
/// use inseq_kernel::demo::counter_program;
/// use inseq_kernel::{Explorer, StateUniverse};
/// use inseq_mover::{classify_actions, MoverType};
///
/// let p = counter_program();
/// let init = p.initial_config(vec![]).unwrap();
/// let exp = Explorer::new(&p).explore([init]).unwrap();
/// let u = StateUniverse::from_exploration(&exp);
/// let table = classify_actions(&p, &u);
/// // Increments of a shared counter commute with each other.
/// assert_eq!(table[&"Inc".into()], MoverType::Both);
/// ```
#[must_use]
pub fn classify_actions(
    program: &Program,
    universe: &StateUniverse,
) -> std::collections::BTreeMap<ActionName, MoverType> {
    program
        .action_names()
        .map(|name| (name.clone(), infer_mover_type(program, universe, name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::counter_program;
    use inseq_kernel::Explorer;

    #[test]
    fn stats_count_pairwise_checks_and_cache_traffic() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        let u = StateUniverse::from_exploration(&exp);
        let checker = MoverChecker::new(&p, &u);
        assert_eq!(checker.stats(), MoverStats::default());
        let inc = p.action(&"Inc".into()).unwrap();
        checker.check_left(inc, &"Inc".into()).unwrap();
        let stats = checker.stats();
        // Inc is co-enabled with itself at at least one store, so at least
        // one pairwise triple was checked, and the same (action, store,
        // args) evaluations recur across conditions (1)-(3).
        assert!(stats.pairwise_checks > 0);
        assert!(stats.eval_cache.misses > 0);
        assert!(stats.eval_cache.hits > 0);
        // A second pass over identical queries is answered from the cache.
        let before = checker.stats();
        checker.check_left(inc, &"Inc".into()).unwrap();
        let after = checker.stats();
        assert_eq!(after.eval_cache.misses, before.eval_cache.misses);
        assert!(after.eval_cache.hits > before.eval_cache.hits);
        // Merging is component-wise.
        let merged = before.merged(after);
        assert_eq!(
            merged.pairwise_checks,
            before.pairwise_checks + after.pairwise_checks
        );
    }

    #[test]
    fn every_violation_variant_exposes_its_store() {
        let store = GlobalStore::default();
        let pa = PendingAsync::new("A", vec![]);
        let violations = [
            MoverViolation::GateNotForwardPreserved {
                mover: pa.clone(),
                other: pa.clone(),
                store: store.clone(),
                reason: "r".into(),
            },
            MoverViolation::GateNotBackwardPreserved {
                mover: pa.clone(),
                other: pa.clone(),
                store: store.clone(),
            },
            MoverViolation::DoesNotCommute {
                mover: pa.clone(),
                other: pa.clone(),
                store: store.clone(),
                target: store.clone(),
            },
            MoverViolation::Blocking {
                mover: pa,
                store: store.clone(),
            },
        ];
        for v in &violations {
            assert_eq!(v.store(), &store);
        }
    }
}
