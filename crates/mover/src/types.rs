//! The four mover types of Lipton's reduction theory.

use std::fmt;

/// The mover type of an atomic action, in the sense of Lipton/Flanagan-Qadeer
/// as used by the paper (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MoverType {
    /// Commutes in both directions (e.g. accesses to thread-local data).
    Both,
    /// Commutes to the left of concurrent actions (e.g. a bag `send`).
    Left,
    /// Commutes to the right of concurrent actions (e.g. a bag `receive`).
    Right,
    /// Commutes in neither direction.
    None,
}

impl MoverType {
    /// Whether the action may move left.
    #[must_use]
    pub fn is_left(self) -> bool {
        matches!(self, MoverType::Left | MoverType::Both)
    }

    /// Whether the action may move right.
    #[must_use]
    pub fn is_right(self) -> bool {
        matches!(self, MoverType::Right | MoverType::Both)
    }

    /// Combines independent left/right verdicts into a mover type.
    #[must_use]
    pub fn from_flags(left: bool, right: bool) -> Self {
        match (left, right) {
            (true, true) => MoverType::Both,
            (true, false) => MoverType::Left,
            (false, true) => MoverType::Right,
            (false, false) => MoverType::None,
        }
    }
}

impl fmt::Display for MoverType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoverType::Both => "both-mover",
            MoverType::Left => "left-mover",
            MoverType::Right => "right-mover",
            MoverType::None => "non-mover",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip() {
        assert_eq!(MoverType::from_flags(true, true), MoverType::Both);
        assert_eq!(MoverType::from_flags(true, false), MoverType::Left);
        assert_eq!(MoverType::from_flags(false, true), MoverType::Right);
        assert_eq!(MoverType::from_flags(false, false), MoverType::None);
        assert!(MoverType::Both.is_left() && MoverType::Both.is_right());
        assert!(MoverType::Left.is_left() && !MoverType::Left.is_right());
    }

    #[test]
    fn display() {
        assert_eq!(MoverType::Right.to_string(), "right-mover");
    }
}
