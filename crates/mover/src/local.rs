//! Localized commutation: the per-store pair verdicts behind `--reduce por`,
//! surfaced next to the global mover machinery they approximate.
//!
//! [`MoverChecker`](crate::MoverChecker) discharges the paper's mover
//! conditions *universally* over a [`StateUniverse`]: an action is a
//! left/right mover when the commutation conditions hold at **every**
//! enumerated store. Partial-order reduction needs the opposite
//! quantification — at **this** store, do these two pending asyncs commute?
//! — because an ample singleton is chosen per configuration, not per
//! action. The kernel owns that primitive
//! ([`inseq_kernel::pair_commutes_at`], closed under creation by
//! [`inseq_kernel::pair_commutes_within`]); this module re-exports it from
//! the mover crate's vocabulary and adds the universe-level bridge
//! [`commutes_over`], which requantifies the localized check so it can be
//! compared — and is regression-tested — against `MoverChecker` verdicts:
//! a both-mover commutes pairwise at every universe store, and a pair that
//! fails the localized check at some reachable store cannot be a
//! both-mover pair.
//!
//! The localized check is *symmetric and exact at its store* (it compares
//! the full joint outcome sets of both orders, counting a gate failure or
//! an asymmetric block as a conflict), whereas the mover conditions are
//! directional and quantified; neither subsumes the other. Reduction
//! soundness is argued in DESIGN.md §4g and enforced empirically by the
//! reduced-vs-unreduced fuzz oracle.

pub use inseq_kernel::{pair_commutes_at, pair_commutes_within, PAIR_CLOSURE_DEPTH};

use inseq_kernel::{GlobalStore, PendingAsync, Program, StateUniverse};

/// Whether `p` and `q` commute — including creation closure to
/// [`PAIR_CLOSURE_DEPTH`] — at **every** store of the universe where both
/// are co-enabled (falling back to all stores when the universe records no
/// co-enabled pairs).
///
/// This is the universe-quantified form of the localized check, directly
/// comparable with [`crate::MoverChecker`] verdicts: a pair of both-movers
/// satisfies it, and a counterexample store here is a commutation conflict
/// the mover conditions would also reject.
#[must_use]
pub fn commutes_over(
    program: &Program,
    universe: &StateUniverse,
    p: &PendingAsync,
    q: &PendingAsync,
) -> bool {
    let mut saw_coenabled = false;
    for store in coenabled_stores(universe, p, q) {
        saw_coenabled = true;
        if !pair_commutes_within(program, p, q, store, PAIR_CLOSURE_DEPTH) {
            return false;
        }
    }
    if saw_coenabled {
        return true;
    }
    universe
        .stores()
        .all(|store| pair_commutes_within(program, p, q, store, PAIR_CLOSURE_DEPTH))
}

/// Stores at which the universe records `p` and `q` as co-enabled.
fn coenabled_stores<'u>(
    universe: &'u StateUniverse,
    p: &PendingAsync,
    q: &PendingAsync,
) -> impl Iterator<Item = &'u GlobalStore> {
    let (p, q) = (p.clone(), q.clone());
    universe
        .coenabled()
        .filter(move |(a, b, _)| (**a == p && **b == q) || (**a == q && **b == p))
        .flat_map(|(_, _, stores)| stores.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_mover_type;
    use crate::MoverType;
    use inseq_kernel::{ActionOutcome, Explorer, GlobalSchema, NativeAction, Transition, Value};

    /// Two slot-writers: disjoint slots commute, the same slot conflicts.
    fn program(other_slot: usize) -> Program {
        let mut b = Program::builder(GlobalSchema::new(["x", "y"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                let mut created = inseq_kernel::Multiset::new();
                created.insert(PendingAsync::new("WriteX", vec![]));
                created.insert(PendingAsync::new("Other", vec![]));
                ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
            }),
        );
        b.action(
            "WriteX",
            NativeAction::new("WriteX", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(1)))])
            }),
        );
        b.action(
            "Other",
            NativeAction::new("Other", 0, move |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(
                    g.with(other_slot, Value::Int(2)),
                )])
            }),
        );
        b.build().unwrap()
    }

    fn universe_of(p: &Program) -> StateUniverse {
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(p).explore([init]).unwrap();
        StateUniverse::from_exploration(&exp)
    }

    /// The localized verdict, quantified over the universe, agrees with the
    /// global mover classification on both the commuting and the
    /// conflicting pair.
    #[test]
    fn universe_quantified_verdict_is_consistent_with_mover_checker() {
        // Disjoint slots: both actions are both-movers, and the localized
        // check agrees at every store.
        let p = program(1);
        let u = universe_of(&p);
        assert_eq!(infer_mover_type(&p, &u, &"WriteX".into()), MoverType::Both);
        assert_eq!(infer_mover_type(&p, &u, &"Other".into()), MoverType::Both);
        assert!(commutes_over(
            &p,
            &u,
            &PendingAsync::new("WriteX", vec![]),
            &PendingAsync::new("Other", vec![]),
        ));

        // Same slot: the writers conflict — the localized check refutes
        // commutation at some reachable store, and the mover checker
        // likewise refuses to classify them as both-movers.
        let p = program(0);
        let u = universe_of(&p);
        assert!(!commutes_over(
            &p,
            &u,
            &PendingAsync::new("WriteX", vec![]),
            &PendingAsync::new("Other", vec![]),
        ));
        assert_ne!(infer_mover_type(&p, &u, &"WriteX".into()), MoverType::Both);
    }

    /// The re-exported primitive is the kernel's: a conflict at one store
    /// does not depend on the universe at all.
    #[test]
    fn reexported_primitive_matches_kernel() {
        let p = program(0);
        let store = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let a = PendingAsync::new("WriteX", vec![]);
        let b = PendingAsync::new("Other", vec![]);
        assert!(!pair_commutes_at(&p, &a, &b, &store));
        assert_eq!(
            pair_commutes_at(&p, &a, &b, &store),
            inseq_kernel::pair_commutes_at(&p, &a, &b, &store)
        );
    }
}
