//! Mover types, commutativity checking, and Lipton reduction.
//!
//! This crate implements §3's "Left movers" conditions (and their right-mover
//! duals) as exhaustive checks over a [`inseq_kernel::StateUniverse`],
//! playing the role of CIVL's SMT-backed mover engine. It also provides the
//! atomic-sequence validation of Lipton reduction
//! (`right*; non-mover?; left*`), which the paper applies to turn
//! fine-grained procedures into atomic actions (Fig. 1-① → Fig. 1-②) before
//! inductive sequentialization.
//!
//! # Example
//!
//! ```
//! use inseq_mover::{atomic_pattern, MoverType};
//!
//! // receive*; local* — a right-mover prefix followed by both-movers is atomic.
//! let seq = [MoverType::Right, MoverType::Right, MoverType::Both];
//! assert!(atomic_pattern(&seq));
//! // left; right — a left mover before a right mover is NOT atomic.
//! assert!(!atomic_pattern(&[MoverType::Left, MoverType::Right]));
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::result_large_err)] // verification counterexamples carry full stores by design
#![warn(missing_docs)]

mod check;
pub mod local;
mod parallel;
mod reduction;
mod types;

pub use check::{
    check_left_mover, check_right_mover, classify_actions, infer_mover_type, MoverChecker,
    MoverStats, MoverViolation,
};
pub use parallel::classify_actions_with;
pub use reduction::{atomic_pattern, summarize_chain, summarize_mover_types};
pub use types::MoverType;
