//! Integration tests: mover types of send/receive over bag channels, as
//! claimed in §2.1 of the paper ("receive is a right mover and send is a
//! left mover").

use std::sync::Arc;

use inseq_kernel::{Explorer, StateUniverse};
use inseq_lang::build::*;
use inseq_lang::{program_of, DslAction, GlobalDecls, Sort};
use inseq_mover::{
    check_left_mover, check_right_mover, infer_mover_type, summarize_mover_types, MoverType,
    MoverViolation,
};

/// Main spawns two senders and one receiver over a bag channel.
fn bag_program() -> (inseq_kernel::Program, StateUniverse) {
    let mut decls = GlobalDecls::new();
    decls.declare("ch", Sort::bag(Sort::Int));
    decls.declare("got", Sort::map(Sort::Int, Sort::Bool));
    let g = Arc::new(decls);

    let send_a = DslAction::build("Send", &g)
        .param("v", Sort::Int)
        .body(vec![send("ch", var("v"))])
        .finish()
        .unwrap();
    let recv_a = DslAction::build("Recv", &g)
        .local("v", Sort::Int)
        .body(vec![
            recv("v", "ch"),
            assign_at("got", var("v"), boolean(true)),
        ])
        .finish()
        .unwrap();
    let main = DslAction::build("Main", &g)
        .body(vec![
            async_call(&send_a, vec![int(1)]),
            async_call(&send_a, vec![int(2)]),
            async_call(&recv_a, vec![]),
        ])
        .finish()
        .unwrap();

    let p = program_of(&g, [send_a, recv_a, main], "Main").unwrap();
    let init = p.initial_config_with(g.initial_store(), vec![]).unwrap();
    let exp = Explorer::new(&p).explore([init]).unwrap();
    let u = StateUniverse::from_exploration(&exp);
    (p, u)
}

#[test]
fn send_is_a_left_mover() {
    let (p, u) = bag_program();
    check_left_mover(&p, &u, &"Send".into()).expect("bag send must be a left mover");
}

#[test]
fn receive_is_a_right_mover() {
    let (p, u) = bag_program();
    check_right_mover(&p, &u, &"Recv".into()).expect("bag receive must be a right mover");
}

#[test]
fn receive_is_not_a_left_mover() {
    let (p, u) = bag_program();
    let err = check_left_mover(&p, &u, &"Recv".into())
        .expect_err("receive must not commute to the left of send");
    // Either commutation fails or blocking is detected — both witness the
    // paper's claim.
    match err {
        MoverViolation::DoesNotCommute { .. } | MoverViolation::Blocking { .. } => {}
        other => panic!("unexpected violation kind: {other}"),
    }
}

#[test]
fn send_is_not_a_right_mover() {
    let (p, u) = bag_program();
    // send; recv can deliver the just-sent message; recv; send cannot when
    // the channel would otherwise be empty.
    let verdict = check_right_mover(&p, &u, &"Send".into());
    assert!(verdict.is_err(), "send must not be a right mover here");
}

#[test]
fn inferred_types_match_the_paper() {
    let (p, u) = bag_program();
    assert_eq!(infer_mover_type(&p, &u, &"Send".into()), MoverType::Left);
    assert_eq!(infer_mover_type(&p, &u, &"Recv".into()), MoverType::Right);
}

#[test]
fn receive_then_send_sequences_are_atomic() {
    let (p, u) = bag_program();
    // Recv; Send matches right*; left* — atomic.
    let (types, ok) = summarize_mover_types(&p, &u, &["Recv".into(), "Send".into()]);
    assert_eq!(types, vec![MoverType::Right, MoverType::Left]);
    assert!(ok);
    // Send; Recv does not.
    let (_, ok) = summarize_mover_types(&p, &u, &["Send".into(), "Recv".into()]);
    assert!(!ok);
}

#[test]
fn violations_render_readable_witnesses() {
    let (p, u) = bag_program();
    let err = check_left_mover(&p, &u, &"Recv".into()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("Recv"), "witness must name the mover: {text}");
}
