//! Property-based tests for the mover engine: algebraically commutative
//! actions must classify as both-movers, non-commutative ones must not, and
//! classification is stable across equivalent universes.

use proptest::prelude::*;

use inseq_kernel::{
    ActionOutcome, GlobalSchema, GlobalStore, Multiset, NativeAction, PendingAsync, Program,
    StateUniverse, Transition, Value,
};
use inseq_mover::{classify_actions, infer_mover_type, MoverType};

/// Builds a program whose Main spawns one `A` task and one `B` task, where
/// `A` is `x := x + a` and `B` is `x := x (+|*) b`.
fn two_task_program(a: i64, b: i64, b_multiplies: bool) -> (Program, inseq_kernel::Config) {
    let mut builder = Program::builder(GlobalSchema::new(["x"]));
    builder.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            let mut created = Multiset::new();
            created.insert(PendingAsync::new("A", vec![]));
            created.insert(PendingAsync::new("B", vec![]));
            ActionOutcome::Transitions(vec![Transition::new(g.clone(), created)])
        }),
    );
    builder.action(
        "A",
        NativeAction::new("A", 0, move |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::pure(
                g.with(0, Value::Int(g.get(0).as_int() + a)),
            )])
        }),
    );
    builder.action(
        "B",
        NativeAction::new("B", 0, move |g: &GlobalStore, _: &[Value]| {
            let x = g.get(0).as_int();
            let next = if b_multiplies { x * b } else { x + b };
            ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(next)))])
        }),
    );
    let p = builder.build().unwrap();
    let init = p
        .initial_config_with(GlobalStore::new(vec![Value::Int(1)]), vec![])
        .unwrap();
    (p, init)
}

fn universe_of(p: &Program, init: inseq_kernel::Config) -> StateUniverse {
    let exp = inseq_kernel::Explorer::new(p).explore([init]).unwrap();
    StateUniverse::from_exploration(&exp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn additions_commute_so_both_tasks_are_both_movers(a in -4i64..5, b in -4i64..5) {
        let (p, init) = two_task_program(a, b, false);
        let u = universe_of(&p, init);
        prop_assert_eq!(infer_mover_type(&p, &u, &"A".into()), MoverType::Both);
        prop_assert_eq!(infer_mover_type(&p, &u, &"B".into()), MoverType::Both);
    }

    #[test]
    fn add_and_multiply_do_not_commute(a in 1i64..5, b in 2i64..5) {
        // (x + a) * b ≠ x * b + a whenever a ≠ 0 and b ≠ 1.
        let (p, init) = two_task_program(a, b, true);
        let u = universe_of(&p, init);
        let ta = infer_mover_type(&p, &u, &"A".into());
        let tb = infer_mover_type(&p, &u, &"B".into());
        prop_assert_eq!(ta, MoverType::None, "add is no mover against multiply");
        prop_assert_eq!(tb, MoverType::None);
    }

    #[test]
    fn multiply_by_one_commutes(a in -4i64..5) {
        let (p, init) = two_task_program(a, 1, true);
        let u = universe_of(&p, init);
        prop_assert_eq!(infer_mover_type(&p, &u, &"A".into()), MoverType::Both);
    }

    #[test]
    fn classification_covers_every_action(a in -2i64..3, b in -2i64..3) {
        let (p, init) = two_task_program(a, b, false);
        let u = universe_of(&p, init);
        let table = classify_actions(&p, &u);
        prop_assert_eq!(table.len(), 3);
        prop_assert!(table.contains_key(&"Main".into()));
        // Main is never co-enabled with anything (it is the only initial
        // PA), so it is vacuously a both-mover.
        prop_assert_eq!(table[&"Main".into()], MoverType::Both);
    }
}

#[test]
fn blocking_actions_are_not_left_movers() {
    // A task that blocks forever fails the non-blocking condition if its
    // gate holds, unless it never becomes enabled… a blocked action has an
    // empty transition set, so the (4) check flags it.
    let mut builder = Program::builder(GlobalSchema::default());
    builder.action(
        "Main",
        NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
            ActionOutcome::Transitions(vec![Transition::new(
                g.clone(),
                Multiset::singleton(PendingAsync::new("Stuck", vec![])),
            )])
        }),
    );
    builder.action(
        "Stuck",
        NativeAction::new("Stuck", 0, |_: &GlobalStore, _: &[Value]| {
            ActionOutcome::blocked()
        }),
    );
    let p = builder.build().unwrap();
    let init = p.initial_config(vec![]).unwrap();
    let u = universe_of(&p, init);
    let verdict = inseq_mover::check_left_mover(&p, &u, &"Stuck".into());
    assert!(matches!(
        verdict,
        Err(inseq_mover::MoverViolation::Blocking { .. })
    ));
}
