//! # inseq-engine — parallel exploration and check scheduling
//!
//! This crate makes the explicit-state substitute for the paper's CIVL
//! backend scale: everything in the workspace that enumerates reachable
//! configurations or discharges independent proof obligations can do so on
//! multiple threads through the two layers here.
//!
//! * **Layer 1 — [`ParallelExplorer`]**: a work-stealing explorer that is a
//!   drop-in alternative to [`inseq_kernel::Explorer`]. All workers share
//!   one hash-consing arena, so a successor is deduplicated *before* any
//!   cross-worker handoff and moving work between shards copies three ids —
//!   never a materialized configuration. Each worker owns a deque (push/pop
//!   at the back); idle workers steal batches from the front. The reachable
//!   set, verdict, terminal stores, and edge count are identical to the
//!   sequential explorer's. The previous channel-migration engine survives
//!   as [`MpscExplorer`], the before-baseline of `table1 --large --engine
//!   compare`.
//! * **Layer 2 — [`Engine`]**: a job-DAG scheduler running independent
//!   obligations — the Fig. 3 conditions of an IS application, per-pair
//!   mover queries, whole Table 1 rows — concurrently on a fixed thread
//!   pool, collecting per-job wall clock and configuration counts into an
//!   [`EngineReport`].
//!
//! The crate deliberately depends only on `inseq-kernel` and the
//! `inseq-obs` counters (and the standard library): higher layers
//! (`inseq-core`, `inseq-mover`, `inseq-bench`) build their parallel
//! drivers on top of it, not the other way around.
//!
//! ```
//! use inseq_engine::ParallelExplorer;
//! use inseq_kernel::demo::counter_program;
//!
//! let program = counter_program();
//! let init = program.initial_config(vec![]).unwrap();
//! let summary = ParallelExplorer::new(&program)
//!     .with_workers(4)
//!     .summarize(init)
//!     .unwrap();
//! assert!(summary.good);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod hash;
mod memo;
mod mpsc;
mod reduce;
mod schedule;
mod stats;

pub use explore::{ParallelExploration, ParallelExplorer};
pub use mpsc::{MpscExploration, MpscExplorer};
pub use reduce::Reducer;
pub use schedule::{Engine, EngineReport, Job, JobResult, JobStats, JobStatus};
pub use stats::{ExploreStats, ShardStats};
