//! Layer 1: parallel exploration over a lock-free concurrent interner with
//! per-shard work-stealing deques.
//!
//! [`ParallelExplorer`] is a drop-in alternative to
//! [`inseq_kernel::Explorer`]: it enumerates exactly the same reachable
//! configuration set and produces the same `Good`/`Trans` summary, but
//! expands configurations on `N` worker threads. Three structural decisions
//! distinguish it from the channel-migration baseline it replaced (kept as
//! [`crate::MpscExplorer`] for benchmarking):
//!
//! 1. **One shared [`ConcurrentInterner`]** instead of a private interner
//!    per shard — and instead of the global `Mutex<Arena>` this engine
//!    itself used before. Ids are meaningful to every worker, so a
//!    successor is deduplicated *before* any cross-worker handoff, and
//!    handing work to another worker moves three ids, not a materialized
//!    [`Config`]. Resolution is entirely lock-free: arenas are segmented
//!    and pointer-stable, so a worker borrows the parent's `GlobalStore`,
//!    slot ids, and bag entries straight from the interner for the whole
//!    expansion — the old phase-1 snapshot lock (and the per-worker
//!    pending-async cache that grew to the global `PaId` universe per
//!    worker) is gone wholesale. Dedup locks only the hashed value's index
//!    shard, so inserts of distinct values proceed in parallel.
//! 2. **Batched phase-3 interning.** A worker stages a whole expansion's
//!    successors thread-locally — strictly-changed store slots, bag entry
//!    diffs, created pending asyncs — then interns them through the
//!    interner's batch API, which groups each kind by dedup shard and locks
//!    every affected shard at most once per pass. An expansion with a dozen
//!    successors pays O(affected shards) lock acquisitions, not
//!    O(successors), and nothing is interned at all on an evaluation
//!    fault. Batch sizes and shard-lock contention surface as engine
//!    counters (`--stats`).
//! 3. **Per-shard work-stealing deques** instead of channels. Each worker
//!    owns a deque of `(config, store, bag)` id triples: it pushes and pops
//!    work at the *back* (LIFO, cache-warm), and an idle worker steals
//!    `⌈len/2⌉` (capped at [`STEAL_BATCH`]) from the *front* of a victim's
//!    deque — one `drain` buffer operation, not a per-config send. There is
//!    no ownership routing: whichever worker interns a fresh configuration
//!    queues it locally, and load balance emerges from stealing.
//!
//! # Witness traces
//!
//! Alongside each interned configuration the interner records a **parent
//! edge** embedded in the config arena entry: the predecessor's
//! [`ConfigId`], the fired pending async, and the recorded firing distance
//! from a seed, packed into atomics written only under the config's dedup
//! shard lock. A fresh intern records its discovering edge; a duplicate
//! intern *relaxes* the stored parent when it arrived via a shorter
//! recorded path. Recorded distances strictly decrease along parent chains
//! (relaxation only ever lowers a target's distance), so every chain is
//! acyclic and terminates at a seed even while other workers relax edges
//! mid-walk — walking it lock-free yields a concrete, replayable firing
//! sequence for any configuration of interest: gate failures
//! ([`ParallelExploration::failure_witnesses`]), deadlocks
//! ([`ParallelExploration::deadlock_witnesses`]), budget exhaustion (the
//! `trace` inside [`ExploreError::BudgetExceeded`]), or any reachable
//! configuration ([`ParallelExploration::trace_to`]). Traces are valid
//! paths but not guaranteed globally shortest: a relaxation does not
//! propagate to already-recorded descendants.
//!
//! # Reduction
//!
//! [`ParallelExplorer::with_reduction`] applies the same
//! [`ReductionPolicy`] contract as the sequential explorer: when the policy
//! proves an ample singleton sound at a configuration, only that pending
//! async is expanded, with the cycle proviso that an ample round which
//! interns nothing fresh falls back to expanding the remaining pendings.
//! The ample decision sees owned pending-async values through a *bounded*
//! per-worker cache (capacity [`PA_CACHE_CAP`], epoch-evicted, peak size
//! reported in stats). Successors are canonicalized under the policy's
//! symmetry quotient (if any) before interning, with a per-worker
//! canonicalization cache. Reduced traces under a symmetry quotient are
//! valid modulo node renaming only.
//!
//! # Expansion pipeline
//!
//! A worker expands one configuration in three phases: (1) borrow the
//! parent's store, slot ids, and bag entries from the interner — lock-free,
//! the references stay valid for the interner's lifetime; (2) evaluate
//! every selected pending async, consulting the shared footprint memo
//! ([`crate::memo`]) exactly like the sequential path; (3) stage every
//! successor as a small diff against the parent's ids (changed slots
//! compared value-by-value against the footprint's write set, bag entries
//! rebuilt by a sorted merge) and intern the whole batch — values, stores,
//! created pendings, bags, then configs with their parent edges — through
//! one shard-grouped pass per kind. Fresh successors are pushed onto the
//! worker's own deque in one batch.
//!
//! # Termination
//!
//! A shared in-flight counter tracks configurations that are queued or
//! being expanded: it is incremented for every fresh successor *before* the
//! parent's own decrement, so the counter can only reach zero when no work
//! exists anywhere — at which point every spinning worker observes the zero
//! and exits. Stolen batches move between locked deques and are never
//! uncounted in transit.
//!
//! # Cancellation and budget
//!
//! A shared cancellation flag stops all workers early on the first kernel
//! error, on budget exhaustion, or — when
//! [`ParallelExplorer::stop_on_first_failure`] is set — on the first gate
//! violation. The budget is checked against the shared interner's exact
//! config count at each fresh intern (seeds exempt), mirroring the
//! sequential explorer; exhaustion reports the post-join visited total via
//! [`ExploreError::BudgetExceeded`], with a concrete witness trace to the
//! exhaustion point walked lock-free from the parent-edge log. Per-shard
//! counters survive every error path:
//! [`ParallelExplorer::explore_with_stats`] aggregates them after the join
//! even when the run is cut short mid-steal.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::hash::FxHashMap;
use crate::memo::{build_plans, MemoPlan, Resolved, SharedMemo, View};
use crate::stats::{ExploreStats, ShardStats};

use inseq_obs::HitMissSnapshot;

use inseq_kernel::{
    canonical_parts_concurrent, ActionName, BagId, ConcurrentInterner, Config, ConfigId, ConfigReq,
    ExploreError, FailureWitness, GlobalStore, Multiset, PaId, PendingAsync, Program,
    ReductionPolicy, Step, StoreId, StoreReq, Summary, Trace, Value, ValueId,
    DEFAULT_CONFIG_BUDGET,
};

/// Upper bound on the configurations moved by one steal. Half the victim's
/// deque is taken up to this cap: enough to amortize the steal far beyond
/// its two lock acquisitions, small enough that a thief cannot starve a
/// victim that is about to pop its own back end.
const STEAL_BATCH: usize = 64;

/// Capacity bound of the per-worker pending-async value cache used on the
/// reduction path (the ample decision needs owned values). The cache is
/// epoch-evicted — cleared wholesale when full — so a worker's footprint is
/// bounded by the cap instead of growing to the global `PaId` universe;
/// re-warming reads the lock-free arena. The high-water mark is reported
/// per worker via `ShardStats::pa_cache_peak`.
const PA_CACHE_CAP: usize = 8192;

/// Capacity of the per-worker successor cache (`(store, pending async)` →
/// interned firing outcome). Epoch-evicted like the pending-async cache:
/// cleared wholesale before an expansion that could overflow it, never
/// mid-expansion, so every selected pending async of the round in progress
/// stays resident.
const SUCC_CACHE_CAP: usize = 1 << 18;

/// Probes a worker observes before judging whether its successor cache
/// earns its keep on this program.
const SUCC_WARMUP_PROBES: u64 = 8192;

/// Minimum hit percentage after warmup. Below it the worker flips the
/// cache to *bypass*: probing stops and the map is cleared after every
/// expansion, so entries only ever span the expansion that needs them and
/// the map stays small and cache-hot. Protocols whose stores never repeat
/// across configurations (each `(store, pending)` pair is seen once —
/// Paxos is the extreme) would otherwise grow a hundreds-of-thousands-
/// entry map per worker whose cold inserts cost more than the evaluations
/// they can never save.
const SUCC_MIN_HIT_PCT: u64 = 10;

/// A unit of work: an interned configuration and its parts. Ids are global
/// (one shared interner), so handing this to another worker is a copy of
/// three `u32`s — no materialization, no re-interning.
type WorkItem = (ConfigId, StoreId, BagId);

/// A parallel exhaustive explorer for a [`Program`].
///
/// Mirrors the sequential [`inseq_kernel::Explorer`] API: construct with
/// [`ParallelExplorer::new`], optionally configure, then call
/// [`explore`](ParallelExplorer::explore) or
/// [`summarize`](ParallelExplorer::summarize).
pub struct ParallelExplorer<'p> {
    program: &'p Program,
    workers: usize,
    budget: usize,
    stop_on_failure: bool,
    reduction: Option<&'p dyn ReductionPolicy>,
}

impl fmt::Debug for ParallelExplorer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelExplorer")
            .field("workers", &self.workers)
            .field("budget", &self.budget)
            .field("stop_on_failure", &self.stop_on_failure)
            .field("reduced", &self.reduction.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> ParallelExplorer<'p> {
    /// Creates a parallel explorer with one worker per available hardware
    /// thread and the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        ParallelExplorer {
            program,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            budget: DEFAULT_CONFIG_BUDGET,
            stop_on_failure: false,
            reduction: None,
        }
    }

    /// Sets the number of worker threads (and therefore deques). Clamped to
    /// at least one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the maximum number of distinct configurations to visit before
    /// giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Explores under a reduction policy, with the same semantics as
    /// [`inseq_kernel::Explorer::with_reduction`]: ample singletons where
    /// the policy proves them sound, successor canonicalization under the
    /// policy's symmetry quotient. Verdicts are preserved; visited/edge
    /// counts refer to the *reduced* graph.
    #[must_use]
    pub fn with_reduction(mut self, policy: &'p dyn ReductionPolicy) -> Self {
        self.reduction = Some(policy);
        self
    }

    /// When enabled, the first gate violation cancels all workers instead of
    /// letting the exploration run to completion. The verdict (`good =
    /// false`) is unaffected, but the reachable set in the result is then a
    /// *subset* of the true one — leave this off (the default) when the full
    /// set matters, e.g. for equivalence with the sequential explorer.
    #[must_use]
    pub fn stop_on_first_failure(mut self, stop: bool) -> Self {
        self.stop_on_failure = stop;
        self
    }

    /// The configured number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Explores all configurations reachable from the given initial
    /// configurations, in parallel.
    ///
    /// The resulting reachable set, failure verdict, deadlock set, terminal
    /// stores, and edge count are identical to those of
    /// [`inseq_kernel::Explorer::explore`] on the same input.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the visited set
    /// exceeds the budget and [`ExploreError::Kernel`] when a pending async
    /// refers to an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<ParallelExploration, ExploreError> {
        self.explore_with_stats(initial).0
    }

    /// Like [`explore`](Self::explore), but also returns the aggregated
    /// per-shard counters even when the exploration fails: on
    /// `BudgetExceeded` (or any other error) the workers' outputs are still
    /// joined and merged, so steal/expansion accounting is never lost to
    /// the error path.
    pub fn explore_with_stats(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> (Result<ParallelExploration, ExploreError>, ExploreStats) {
        // Force one-time action setup (e.g. compiling to bytecode) before
        // spawning workers, so they never race on first-eval compilation.
        self.program.prepare_actions();
        let n = self.workers;

        // Seeds are interned up front by the calling thread — exempt from
        // the budget check, like the sequential explorer's — and dealt
        // round-robin across the deques. Seeds carry no parent edge.
        let interner = ConcurrentInterner::new();
        let mut seed_items: Vec<WorkItem> = Vec::new();
        let mut seed_hits = 0u64;
        for config in initial {
            let (id, fresh) = interner.intern_config(&config, None);
            if fresh {
                let (sid, bagid) = interner.config_parts(id);
                seed_items.push((id, sid, bagid));
            } else {
                seed_hits += 1;
            }
        }
        if seed_items.is_empty() {
            let stats = ExploreStats {
                shards: vec![ShardStats::default(); n],
                memo: HitMissSnapshot::default(),
                contention: interner.contention(),
            };
            return (
                Ok(ParallelExploration::empty(interner, stats.clone())),
                stats,
            );
        }
        let seed_count = seed_items.len();

        let deques: Vec<Deque> = (0..n).map(|_| Deque::default()).collect();
        for (k, item) in seed_items.into_iter().enumerate() {
            deques[k % n]
                .queue
                .lock()
                .expect("deque poisoned")
                .push_back(item);
        }
        let shared = Shared {
            interner,
            deques,
            in_flight: AtomicUsize::new(seed_count),
            cancelled: AtomicBool::new(false),
            error: Mutex::new(None),
        };
        let plans = build_plans(self.program);
        let memo = SharedMemo::for_plans(plans.is_empty());

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|me| {
                    let worker = Worker {
                        me,
                        program: self.program,
                        budget: self.budget,
                        stop_on_failure: self.stop_on_failure,
                        reduction: self.reduction,
                        shared: &shared,
                        plans: &plans,
                        memo: memo.as_ref(),
                        pa_cache: FxHashMap::default(),
                        pa_buf: Vec::new(),
                        counts: Vec::new(),
                        outcomes: Vec::new(),
                        succ_cache: FxHashMap::default(),
                        succ_probes: 0,
                        succ_hits: 0,
                        succ_bypass: false,
                        fresh: Vec::new(),
                        canon_cache: FxHashMap::default(),
                        out: WorkerOutput::default(),
                    };
                    scope.spawn(move || worker.run())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exploration worker panicked"))
                .collect()
        });

        // Post-join aggregation: per-shard counters survive every exit path
        // (normal, cancelled, budget-exceeded mid-steal). Work a shard lost
        // to thieves is counted at its deque, not in the thieves' outputs.
        let mut stats = ExploreStats {
            shards: Vec::with_capacity(n),
            memo: memo
                .as_ref()
                .map_or_else(HitMissSnapshot::default, SharedMemo::snapshot),
            contention: shared.interner.contention(),
        };
        let mut failures = Vec::new();
        let mut deadlocks = Vec::new();
        let mut terminal_ids: BTreeSet<StoreId> = BTreeSet::new();
        let mut edges = 0usize;
        for (i, out) in outputs.into_iter().enumerate() {
            let mut shard = out.stats;
            shard.migrated_out = shared.deques[i].stolen_from.load(Ordering::Relaxed);
            if i == 0 {
                // Seed interning ran on the calling thread; credit it to
                // shard 0 so summed misses equal the visited-set size.
                shard.intern = shard
                    .intern
                    .merged(HitMissSnapshot::new(seed_hits, seed_count as u64));
            }
            stats.shards.push(shard);
            failures.extend(out.failures);
            deadlocks.extend(out.deadlocks);
            terminal_ids.extend(out.terminal);
            edges += out.edges;
        }

        let Shared {
            interner, error, ..
        } = shared;
        if let Some(mut err) = error.into_inner().expect("error slot poisoned") {
            if let ExploreError::BudgetExceeded { visited, .. } = &mut err {
                // Racing workers may have interned past the recording
                // worker's observation; report the post-join exact total.
                *visited = interner.config_count();
            }
            return (Err(err), stats);
        }
        // Terminal stores were recorded as ids only — no store was ever
        // cloned inside the hot loop; materialize them once, after the join.
        let terminal: BTreeSet<GlobalStore> = terminal_ids
            .iter()
            .map(|&sid| interner.store(sid).clone())
            .collect();
        (
            Ok(ParallelExploration {
                interner,
                failures,
                deadlocks,
                terminal,
                edges,
                stats: stats.clone(),
            }),
            stats,
        )
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration, like [`inseq_kernel::Explorer::summarize`].
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        Ok(self.explore([initial])?.summary())
    }
}

/// One worker's work-stealing deque. The owner pushes and pops at the back
/// under the mutex; thieves drain a batch from the front under the same
/// mutex, so an item is delivered to exactly one worker.
#[derive(Debug, Default)]
struct Deque {
    queue: Mutex<VecDeque<WorkItem>>,
    /// Configurations stolen *from* this deque over the whole run — the
    /// deque engine's migration counter, read after the join.
    stolen_from: AtomicU64,
}

struct Shared {
    /// The shared arenas, dedup shards, and parent-edge log. No wrapping
    /// mutex: reads are lock-free and writes lock only the hashed value's
    /// dedup shard.
    interner: ConcurrentInterner,
    deques: Vec<Deque>,
    /// Configurations queued or currently being expanded. Zero is
    /// conclusive: fresh successors are counted before their parent's
    /// decrement, and steals move items between locked deques.
    in_flight: AtomicUsize,
    cancelled: AtomicBool,
    /// First error observed by any worker.
    error: Mutex<Option<ExploreError>>,
}

/// Per-worker results, moved out of the worker when it exits. Failures and
/// deadlocks carry the [`ConfigId`] at which they occurred, so witness
/// traces resolve against the parent-edge log after the join; terminals
/// carry the [`StoreId`] only and are materialized after the join.
#[derive(Debug, Default)]
struct WorkerOutput {
    failures: Vec<(ConfigId, Config, PendingAsync, String)>,
    deadlocks: Vec<(ConfigId, Config)>,
    terminal: BTreeSet<StoreId>,
    edges: usize,
    stats: ShardStats,
}

/// One staged transition of the cache-fill in progress: the strictly-
/// changed store slots (post-values) and the created pending multiset,
/// borrowed from the evaluation outcome. Which pending fired is tracked
/// alongside, per outcome, by the fill's span list. Nothing is interned
/// until the whole round's stage is complete.
struct Staged<'a> {
    writes: Vec<(usize, Value)>,
    created: &'a Multiset<PendingAsync>,
}

/// The interned outcome of firing one pending async on one store — the
/// payload of the per-worker successor cache. Firing is a pure function of
/// the `(store, pending async)` pair, both already canonical ids, and ids
/// are append-only, so an entry stays sound for the whole run and across
/// every configuration that shares the store.
enum CachedSucc {
    /// The firing violates its gate. Cached so repeat encounters skip
    /// re-evaluation; the failure is *reported* (with a witness) at every
    /// configuration that can fire it, exactly like the uncached path.
    Failure(String),
    /// Per nondeterministic transition: the interned successor store and
    /// the interned created pendings in the bag's canonical (resolved)
    /// order, ready for the per-configuration bag merge.
    Steps {
        stores: Vec<StoreId>,
        created: Vec<Box<[(PaId, u32)]>>,
    },
}

struct Worker<'p, 'sh> {
    me: usize,
    program: &'p Program,
    budget: usize,
    stop_on_failure: bool,
    /// The reduction policy, if any — consulted on lock-free borrows.
    reduction: Option<&'p dyn ReductionPolicy>,
    shared: &'sh Shared,
    /// Per-action memoization plans (absent for opaque actions).
    plans: &'sh HashMap<ActionName, MemoPlan>,
    /// The shared evaluation memo; `None` when no action has a footprint.
    memo: Option<&'sh SharedMemo>,
    /// Bounded pending-async value cache for the reduction path (the ample
    /// decision needs owned values). Capacity [`PA_CACHE_CAP`],
    /// epoch-evicted; unused on unreduced runs, where workers borrow
    /// pending asyncs lock-free from the interner instead.
    pa_cache: FxHashMap<PaId, PendingAsync>,
    /// Reusable buffer of the distinct pending-async ids of the
    /// configuration under expansion.
    pa_buf: Vec<PaId>,
    /// Multiplicities aligned with `pa_buf`, so the ample decision sees the
    /// full bag.
    counts: Vec<u32>,
    /// Reusable buffer of evaluated outcomes, staged and batch-interned in
    /// phase 3.
    outcomes: Vec<(PaId, Resolved)>,
    /// Successor cache: `(store, pending async)` → the interned result of
    /// firing that pending async on that store. Many configurations share
    /// a store, so hits skip evaluation, write-diffing, and value/store
    /// interning entirely — only the per-configuration stages (bag merge,
    /// config interning, parent edge) remain. Capacity
    /// [`SUCC_CACHE_CAP`], epoch-evicted between expansions.
    succ_cache: FxHashMap<(StoreId, PaId), CachedSucc>,
    /// Lifetime probe/hit counts of the successor cache, driving the
    /// post-warmup bypass decision.
    succ_probes: u64,
    succ_hits: u64,
    /// Set once the warmup showed the cache cannot pay for itself on this
    /// program; see [`SUCC_MIN_HIT_PCT`].
    succ_bypass: bool,
    /// Fresh successors of the current expansion, queued in one batch.
    fresh: Vec<WorkItem>,
    /// Raw successor parts → canonical orbit parts, per worker. Sound to
    /// cache because interner ids are append-only.
    canon_cache: FxHashMap<(StoreId, BagId), (StoreId, BagId)>,
    out: WorkerOutput,
}

/// A non-failure reason to abandon the current configuration mid-step.
enum StepFault {
    Kernel(ExploreError),
    StopOnFailure,
}

/// Walks the parent-edge log from `target` back to a seed and resolves it
/// into concrete steps — entirely lock-free. Chains are acyclic (recorded
/// distances strictly decrease along them, even under concurrent
/// relaxation), so this terminates.
fn trace_from(interner: &ConcurrentInterner, target: ConfigId) -> Trace {
    let mut steps = Vec::new();
    let mut cursor = target;
    while let Some((parent, fired)) = interner.parent_edge(cursor) {
        steps.push(Step {
            before: interner.resolve_config(parent),
            fired: interner.pa(fired).clone(),
            after: interner.resolve_config(cursor),
        });
        cursor = parent;
    }
    steps.reverse();
    Trace { steps }
}

impl Worker<'_, '_> {
    fn run(mut self) -> WorkerOutput {
        loop {
            if self.shared.cancelled.load(Ordering::Acquire) {
                break;
            }
            match self.pop_or_steal() {
                Some(item) => {
                    self.expand(item);
                    // The parent is done only now; its fresh successors were
                    // counted inside `expand`, so a zero stays conclusive.
                    self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if self.shared.in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Another worker holds counted work; let it run (this
                    // matters on fewer cores than workers).
                    std::thread::yield_now();
                }
            }
        }
        self.out
    }

    /// Pops from the back of the own deque, or steals a batch from the
    /// front of the first non-empty victim. Returns `None` only when every
    /// deque was observed empty.
    fn pop_or_steal(&mut self) -> Option<WorkItem> {
        if let Some(item) = self.shared.deques[self.me]
            .queue
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(item);
        }
        let n = self.shared.deques.len();
        for k in 1..n {
            let victim = &self.shared.deques[(self.me + k) % n];
            let mut stolen: Vec<WorkItem> = {
                let mut q = victim.queue.lock().expect("deque poisoned");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                let take = len.div_ceil(2).min(STEAL_BATCH);
                victim.stolen_from.fetch_add(take as u64, Ordering::Relaxed);
                q.drain(..take).collect()
            };
            self.out.stats.steals += 1;
            self.out.stats.stolen_in += stolen.len() as u64;
            let first = stolen.pop();
            if !stolen.is_empty() {
                self.shared.deques[self.me]
                    .queue
                    .lock()
                    .expect("deque poisoned")
                    .extend(stolen);
            }
            return first;
        }
        None
    }

    /// An owned copy of a pending async through the bounded per-worker
    /// cache (reduction path only — the hot path borrows lock-free).
    fn cached_pa(&mut self, paid: PaId) -> PendingAsync {
        if let Some(pa) = self.pa_cache.get(&paid) {
            return pa.clone();
        }
        let pa = self.shared.interner.pa(paid).clone();
        if self.pa_cache.len() >= PA_CACHE_CAP {
            // Epoch eviction: drop the whole map instead of tracking
            // recency per entry; the cap bounds worst-case memory and
            // re-warming reads the lock-free arena.
            self.pa_cache.clear();
        }
        self.pa_cache.insert(paid, pa.clone());
        self.out.stats.pa_cache_peak = self.out.stats.pa_cache_peak.max(self.pa_cache.len() as u64);
        pa
    }

    /// The pending bag of the configuration under expansion, rebuilt from
    /// the lock-free arena.
    fn snapshot_bag(&self) -> Multiset<PendingAsync> {
        let interner = &self.shared.interner;
        let mut bag = Multiset::new();
        for (&paid, &count) in self.pa_buf.iter().zip(&self.counts) {
            bag.insert_n(interner.pa(paid).clone(), count as usize);
        }
        bag
    }

    /// Expands one configuration: borrow the parent's parts (lock-free) →
    /// choose an ample set → evaluate → stage and batch-intern successors
    /// with their parent edges → queue fresh work. With a reduction policy
    /// the evaluate/intern rounds may run twice: the cycle proviso falls
    /// back to the pruned pendings when the ample round interns nothing
    /// fresh.
    fn expand(&mut self, (cid, sid, bagid): WorkItem) {
        self.out.stats.expanded += 1;
        let interner = &self.shared.interner;

        // Phase 1: borrow the parent's parts straight from the pointer-
        // stable arenas. No lock, no snapshot clone — the references stay
        // valid for the whole expansion.
        let store: &GlobalStore = interner.store(sid);
        self.pa_buf.clear();
        self.counts.clear();
        for &(p, count) in interner.bag_entries(bagid) {
            self.pa_buf.push(p);
            self.counts.push(count);
        }
        if self.pa_buf.is_empty() {
            // Terminal: record the id only; stores materialize post-join.
            self.out.terminal.insert(sid);
        }

        // Post-warmup verdict on the successor cache, then epoch eviction —
        // both decided before anything of this expansion is cached, and at
        // most one entry per distinct pending is inserted below, so a clear
        // here (and only here) keeps the whole round resident.
        if !self.succ_bypass
            && self.succ_probes >= SUCC_WARMUP_PROBES
            && self.succ_hits * 100 < self.succ_probes * SUCC_MIN_HIT_PCT
        {
            self.succ_bypass = true;
            self.succ_cache.clear();
        }
        if self.succ_cache.len() + self.pa_buf.len() > SUCC_CACHE_CAP {
            self.succ_cache.clear();
        }

        // Ample decision: the policy sees the full bag (owned values via
        // the bounded cache + multiplicities).
        let ample: Option<PaId> = match self.reduction {
            Some(policy) if self.pa_buf.len() >= 2 => {
                let mut pending: Vec<(PendingAsync, usize)> = Vec::with_capacity(self.pa_buf.len());
                for k in 0..self.pa_buf.len() {
                    let paid = self.pa_buf[k];
                    let count = self.counts[k] as usize;
                    let pa = self.cached_pa(paid);
                    pending.push((pa, count));
                }
                policy
                    .ample(self.program, store, &pending)
                    .map(|i| self.pa_buf[i])
            }
            _ => None,
        };
        let mut selected: Vec<PaId> = match ample {
            Some(p) => vec![p],
            None => self.pa_buf.clone(),
        };
        let mut ample_round = ample.is_some();

        let mut fault = None;
        let mut progressed = self.pa_buf.is_empty();
        loop {
            // Phase 2: evaluate the selected pending asyncs whose firing
            // outcome the successor cache does not already hold (the
            // footprint memo takes its own short lock per probe/insert).
            // Firing is a pure function of `(store, pending async)`, so a
            // cached pair skips evaluation altogether.
            self.outcomes.clear();
            for &paid in &selected {
                if !self.succ_bypass {
                    self.succ_probes += 1;
                    if self.succ_cache.contains_key(&(sid, paid)) {
                        self.succ_hits += 1;
                        continue;
                    }
                }
                let pa = interner.pa(paid);
                let plan = self.plans.get(&pa.action);
                let active = match (self.memo, plan) {
                    (Some(memo), Some(plan)) if memo.enabled.load(Ordering::Relaxed) => {
                        Some((memo, plan))
                    }
                    _ => None,
                };
                let outcome = if let Some((memo, plan)) = active {
                    if let Some(cached) = memo.probe(pa, plan, store) {
                        Resolved::Cached(cached)
                    } else {
                        match self.program.eval_pa(store, pa) {
                            Ok(out) => {
                                memo.publish(pa, plan, store, &out);
                                Resolved::Owned(out)
                            }
                            Err(e) => {
                                fault = Some(StepFault::Kernel(e.into()));
                                break;
                            }
                        }
                    }
                } else {
                    match self.program.eval_pa(store, pa) {
                        Ok(out) => Resolved::Owned(out),
                        Err(e) => {
                            fault = Some(StepFault::Kernel(e.into()));
                            break;
                        }
                    }
                };
                self.outcomes.push((paid, outcome));
            }

            // Phase 3: fill the successor cache from the freshly evaluated
            // outcomes (staging store diffs and batch-interning values,
            // stores, and created pendings once per `(store, pending)`
            // pair), then apply the cached successors of *every* selected
            // pending to this configuration. On a phase-2 fault nothing is
            // staged and nothing is interned — the expansion leaves no
            // partial successors behind.
            let fresh_before = self.fresh.len();
            if fault.is_none() {
                let outcomes = std::mem::take(&mut self.outcomes);
                self.fill_succ_cache(sid, &outcomes);
                self.outcomes = outcomes;
                self.outcomes.clear();
                if let Err(f) = self.apply_round(cid, sid, bagid, &selected, &mut progressed) {
                    fault = Some(f);
                }
            }

            if fault.is_some() || !ample_round {
                break;
            }
            if self.fresh.len() > fresh_before {
                // The ample expansion discovered a new configuration; the
                // pruned pendings fire from there eventually.
                self.out.stats.pruned += (self.pa_buf.len() - 1) as u64;
                break;
            }
            // Cycle proviso: every ample successor was already visited, so
            // postponing the others could starve them around a cycle. Fall
            // back to full expansion of the remaining pendings. (Racing
            // workers make this an over-approximation — a successor another
            // worker interned first also triggers the fallback — which only
            // ever expands more, never less.)
            let chosen = selected[0];
            selected = self
                .pa_buf
                .iter()
                .copied()
                .filter(|&p| p != chosen)
                .collect();
            ample_round = false;
        }

        if fault.is_none() && !progressed {
            let witness = Config::new(store.clone(), self.snapshot_bag());
            self.out.deadlocks.push((cid, witness));
        }

        match fault {
            None => {
                // Count the fresh successors in-flight *before* queueing
                // them (and before the caller decrements the parent), then
                // hand them to the own deque in one batch.
                if !self.fresh.is_empty() {
                    self.shared
                        .in_flight
                        .fetch_add(self.fresh.len(), Ordering::AcqRel);
                    self.shared.deques[self.me]
                        .queue
                        .lock()
                        .expect("deque poisoned")
                        .extend(self.fresh.drain(..));
                }
            }
            Some(StepFault::Kernel(err)) => {
                self.fresh.clear();
                self.fail(err);
            }
            Some(StepFault::StopOnFailure) => {
                self.fresh.clear();
                self.cancel();
            }
        }

        // In bypass the successor cache is a per-expansion scratch map:
        // entries outlive only the rounds that needed them, and the map
        // stays small enough to live in cache.
        if self.succ_bypass {
            self.succ_cache.clear();
        }
    }

    /// Evaluation → cache: stages each freshly evaluated outcome's
    /// transitions as strict diffs against the parent store (bounded by
    /// the action's footprint write set when one exists), batch-interns
    /// the changed values, the successor stores, and the created pending
    /// asyncs — one pass over each kind's dedup shards — and records the
    /// resulting ids in the per-worker successor cache. Failure outcomes
    /// are cached immediately (they intern nothing); they are *reported*,
    /// with a per-configuration witness, by [`Worker::apply_round`].
    fn fill_succ_cache(&mut self, sid: StoreId, outcomes: &[(PaId, Resolved)]) {
        if outcomes.is_empty() {
            return;
        }
        let interner = &self.shared.interner;
        let parent_slots: &[ValueId] = interner.store_slots(sid);

        // Stage A: reduce every transition to (fired, changed slots,
        // created), comparing candidate values against the parent's
        // resolved slots. The footprint's write set bounds which slots can
        // differ, letting the stage skip the rest.
        let mut staged: Vec<Staged<'_>> = Vec::new();
        let mut spans: Vec<(PaId, usize)> = Vec::with_capacity(outcomes.len());
        for (paid, outcome) in outcomes {
            let paid = *paid;
            let plan = self.plans.get(&interner.pa(paid).action);
            let fp_writes: Option<&[usize]> = plan.map(|p| p.writes.as_slice());
            match outcome.view() {
                View::Failure(reason) => {
                    self.succ_cache
                        .insert((sid, paid), CachedSucc::Failure(reason.to_owned()));
                }
                View::Full(transitions) => {
                    spans.push((paid, transitions.len()));
                    for t in transitions {
                        let mut writes = Vec::new();
                        match fp_writes {
                            Some(ws) => {
                                for &i in ws {
                                    let v = t.globals.get(i);
                                    if interner.value(parent_slots[i]) != v {
                                        writes.push((i, v.clone()));
                                    }
                                }
                            }
                            None => {
                                for (i, v) in t.globals.iter().enumerate() {
                                    if interner.value(parent_slots[i]) != v {
                                        writes.push((i, v.clone()));
                                    }
                                }
                            }
                        }
                        staged.push(Staged {
                            writes,
                            created: &t.created,
                        });
                    }
                }
                View::Delta(transitions) => {
                    spans.push((paid, transitions.len()));
                    for t in transitions {
                        // Replay the memoized write-delta; by the footprint
                        // contract the result is exactly what `eval` would
                        // have produced here.
                        let mut writes = Vec::new();
                        for (i, v) in &t.writes {
                            if interner.value(parent_slots[*i]) != v {
                                writes.push((*i, v.clone()));
                            }
                        }
                        staged.push(Staged {
                            writes,
                            created: &t.created,
                        });
                    }
                }
            }
        }
        if spans.is_empty() {
            return;
        }

        // Stage B: intern all changed-slot values, one pass over their
        // shards.
        let value_refs: Vec<&Value> = staged
            .iter()
            .flat_map(|s| s.writes.iter().map(|(_, v)| v))
            .collect();
        let mut value_ids: Vec<ValueId> = Vec::new();
        interner.intern_values(&value_refs, &mut value_ids);

        // Stage C: intern the *changed* successors' stores from diff
        // requests — parent id plus slot patches — one pass over their
        // shards. The interner derives each request's hash incrementally
        // from the parent's (O(writes), not O(slots)) and compares through
        // the parent on probe, so no full slot key is built here at all; a
        // miss materializes inside the interner by cloning the parent and
        // applying the staged writes. A write-free transition reuses the
        // parent's id outright — canonicality makes that exact.
        let mut store_ids: Vec<StoreId> = vec![sid; staged.len()];
        let mut patches: Vec<(usize, ValueId)> = Vec::with_capacity(value_ids.len());
        let mut dirty: Vec<(usize, usize, usize)> = Vec::new();
        {
            let mut vi = 0;
            for (k, s) in staged.iter().enumerate() {
                if s.writes.is_empty() {
                    continue;
                }
                let start = patches.len();
                for (i, _) in &s.writes {
                    patches.push((*i, value_ids[vi]));
                    vi += 1;
                }
                dirty.push((k, start, patches.len()));
            }
        }
        let store_reqs: Vec<StoreReq<'_>> = dirty
            .iter()
            .map(|&(k, start, end)| StoreReq {
                parent: sid,
                patches: &patches[start..end],
                writes: &staged[k].writes,
            })
            .collect();
        let mut dirty_ids: Vec<StoreId> = Vec::new();
        interner.intern_stores(&store_reqs, &mut dirty_ids);
        for (&(k, _, _), &id) in dirty.iter().zip(&dirty_ids) {
            store_ids[k] = id;
        }

        // Stage D: intern all created pending asyncs, one pass over their
        // shards.
        let pa_refs: Vec<&PendingAsync> = staged
            .iter()
            .flat_map(|s| s.created.iter_counts().map(|(pa, _)| pa))
            .collect();
        let mut pa_ids: Vec<PaId> = Vec::new();
        interner.intern_pas(&pa_refs, &mut pa_ids);

        // Stage E: assemble one cache entry per evaluated pending — its
        // transitions' successor stores plus created entries in the bag's
        // canonical (resolved) order, which `iter_counts` yields and the
        // per-configuration bag merge consumes.
        let mut ti = 0;
        let mut pi = 0;
        for &(paid, ntrans) in &spans {
            let mut stores = Vec::with_capacity(ntrans);
            let mut created: Vec<Box<[(PaId, u32)]>> = Vec::with_capacity(ntrans);
            for _ in 0..ntrans {
                stores.push(store_ids[ti]);
                let mut entries: Vec<(PaId, u32)> = Vec::new();
                for (_, count) in staged[ti].created.iter_counts() {
                    let count = u32::try_from(count).expect("count exceeds u32");
                    entries.push((pa_ids[pi], count));
                    pi += 1;
                }
                created.push(entries.into_boxed_slice());
                ti += 1;
            }
            self.succ_cache
                .insert((sid, paid), CachedSucc::Steps { stores, created });
        }
    }

    /// Cache → configuration: applies the cached firing outcome of every
    /// selected pending async to the configuration under expansion. Only
    /// the configuration-dependent stages run here — failure reports with
    /// their witnesses, the bag merge (remove one occurrence of the fired
    /// pending, splice the created ones into the canonical order),
    /// symmetry canonicalization, and one batched config intern carrying
    /// the discovering parent edges. Fresh configs are budget-checked
    /// against the exact shared count and staged for the own deque;
    /// duplicates cost one id-pair probe plus a possible parent-edge
    /// relaxation inside the interner.
    fn apply_round(
        &mut self,
        cid: ConfigId,
        sid: StoreId,
        bagid: BagId,
        selected: &[PaId],
        progressed: &mut bool,
    ) -> Result<(), StepFault> {
        let interner = &self.shared.interner;
        let parent_entries: &[(PaId, u32)] = interner.bag_entries(bagid);

        let mut fired: Vec<PaId> = Vec::new();
        let mut store_ids: Vec<StoreId> = Vec::new();
        let mut bag_vecs: Vec<Vec<(PaId, u32)>> = Vec::new();
        for &paid in selected {
            let entry = self
                .succ_cache
                .get(&(sid, paid))
                .expect("selected pending async must have a cached outcome");
            match entry {
                CachedSucc::Failure(reason) => {
                    *progressed = true;
                    let witness = Config::new(interner.store(sid).clone(), self.snapshot_bag());
                    self.out.failures.push((
                        cid,
                        witness,
                        interner.pa(paid).clone(),
                        reason.clone(),
                    ));
                    if self.stop_on_failure {
                        // No configuration of this round has been interned
                        // yet; the round is dropped wholesale.
                        return Err(StepFault::StopOnFailure);
                    }
                }
                CachedSucc::Steps { stores, created } => {
                    if !stores.is_empty() {
                        *progressed = true;
                    }
                    for (k, &succ) in stores.iter().enumerate() {
                        self.out.edges += 1;
                        let mut entries = parent_entries.to_vec();
                        let pos = entries
                            .iter()
                            .position(|&(p, _)| p == paid)
                            .expect("fired pending async must occur in the parent bag");
                        if entries[pos].1 > 1 {
                            entries[pos].1 -= 1;
                        } else {
                            entries.remove(pos);
                        }
                        for &(pid, count) in created[k].iter() {
                            let pa = interner.pa(pid);
                            match entries.binary_search_by(|&(p, _)| interner.pa(p).cmp(pa)) {
                                Ok(at) => entries[at].1 += count,
                                Err(at) => entries.insert(at, (pid, count)),
                            }
                        }
                        fired.push(paid);
                        store_ids.push(succ);
                        bag_vecs.push(entries);
                    }
                }
            }
        }
        if fired.is_empty() {
            return Ok(());
        }

        // Intern the merged bags, one pass over their shards.
        let bag_refs: Vec<&[(PaId, u32)]> = bag_vecs.iter().map(Vec::as_slice).collect();
        let mut bag_ids: Vec<BagId> = Vec::new();
        interner.intern_bags(&bag_refs, &mut bag_ids);

        // Canonicalize under the symmetry quotient, when active.
        let mut parts: Vec<(StoreId, BagId)> = store_ids
            .iter()
            .zip(&bag_ids)
            .map(|(&s, &b)| (s, b))
            .collect();
        if let Some(spec) = self.reduction.and_then(ReductionPolicy::symmetry) {
            for part in &mut parts {
                let canon =
                    canonical_parts_concurrent(interner, &mut self.canon_cache, spec, *part);
                if canon != *part {
                    self.out.stats.orbit_collapses += 1;
                    *part = canon;
                }
            }
        }

        // Intern the configs with their discovering edges, one pass over
        // their shards. Within-batch duplicates resolve like sequential
        // repeats: first fresh, rest hits (with relaxation).
        let config_reqs: Vec<ConfigReq> = parts
            .iter()
            .zip(&fired)
            .map(|(&(store, bag), &f)| ConfigReq {
                store,
                bag,
                edge: Some((cid, f)),
            })
            .collect();
        let mut results: Vec<(ConfigId, bool)> = Vec::new();
        interner.intern_configs(&config_reqs, &mut results);
        self.out.stats.note_intern_batch(config_reqs.len());
        for (k, &(id, fresh)) in results.iter().enumerate() {
            if fresh {
                self.out.stats.intern.misses += 1;
                if interner.config_count() > self.budget {
                    // The parent edge to `id` is already recorded, so the
                    // exhaustion point has a concrete witness run.
                    let trace = trace_from(interner, id);
                    return Err(StepFault::Kernel(ExploreError::BudgetExceeded {
                        limit: self.budget,
                        visited: interner.config_count(),
                        trace: Some(trace),
                    }));
                }
                let (s, b) = parts[k];
                self.fresh.push((id, s, b));
            } else {
                self.out.stats.intern.hits += 1;
            }
        }
        Ok(())
    }

    fn fail(&mut self, err: ExploreError) {
        let mut slot = self.shared.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.cancel();
    }

    fn cancel(&mut self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }
}

/// The result of a parallel exploration: the concurrent interner (from
/// which the reachable set is resolved on demand and witness traces are
/// rebuilt out of the embedded parent-edge log), plus all gate violations
/// and deadlocks encountered.
///
/// Unlike [`inseq_kernel::Exploration`] this does not record the full
/// transition graph — one parent edge per configuration suffices for
/// witness reconstruction — and it does not materialize the visited set at
/// all: [`configs`](ParallelExploration::configs) resolves configurations
/// lazily from the arenas, so a multi-million-config run pays for
/// materialization only if someone iterates it. Traces are valid firing
/// sequences but, unlike the sequential explorer's BFS reconstruction, not
/// guaranteed globally shortest.
#[derive(Debug)]
pub struct ParallelExploration {
    interner: ConcurrentInterner,
    failures: Vec<(ConfigId, Config, PendingAsync, String)>,
    deadlocks: Vec<(ConfigId, Config)>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ExploreStats,
}

impl ParallelExploration {
    fn empty(interner: ConcurrentInterner, stats: ExploreStats) -> Self {
        ParallelExploration {
            interner,
            failures: Vec::new(),
            deadlocks: Vec::new(),
            terminal: BTreeSet::new(),
            edges: 0,
            stats,
        }
    }

    /// Observability counters of this exploration: per-shard interner
    /// hits/misses, expansion occupancy, steal traffic, reduction pruning,
    /// intern batching, shard-lock contention, and footprint-memo
    /// effectiveness.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.interner.config_count()
    }

    /// Number of transitions in the explored graph (counted, not stored).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterates over all reachable configurations, resolving each from the
    /// shared arenas on demand. The order is not meaningful; compare as a
    /// set.
    pub fn configs(&self) -> impl Iterator<Item = Config> + '_ {
        self.interner
            .config_ids()
            .map(|id| self.interner.resolve_config(id))
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found, in the same
    /// format as [`inseq_kernel::Exploration::failure_reports`].
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|(_, config, fired, reason)| {
                format!("executing {fired} from {config} fails: {reason}")
            })
            .collect()
    }

    /// A concrete firing sequence from a seed to `target`, or `None` when
    /// `target` was not visited. The trace replays step by step but is not
    /// guaranteed shortest.
    #[must_use]
    pub fn trace_to(&self, target: &Config) -> Option<Trace> {
        let id = self.interner.find_config(target)?;
        Some(trace_from(&self.interner, id))
    }

    /// All gate violations, each with a concrete firing sequence reaching
    /// the configuration at which the gate fails — the parallel analogue of
    /// [`inseq_kernel::Exploration::failure_witnesses`].
    #[must_use]
    pub fn failure_witnesses(&self) -> Vec<FailureWitness> {
        self.failures
            .iter()
            .map(|(cid, _, fired, reason)| FailureWitness {
                trace: trace_from(&self.interner, *cid),
                fired: fired.clone(),
                reason: reason.clone(),
            })
            .collect()
    }

    /// A concrete firing sequence reaching each deadlocked configuration.
    #[must_use]
    pub fn deadlock_witnesses(&self) -> Vec<Trace> {
        self.deadlocks
            .iter()
            .map(|(cid, _)| trace_from(&self.interner, *cid))
            .collect()
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure.
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter().map(|(_, c)| c)
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.terminal.iter()
    }

    /// The program summary over the explored set: `good` iff no gate
    /// violation was found, plus the set of terminating stores.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            good: !self.has_failure(),
            terminal: self.terminal.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::{counter_program, failing_program};
    use inseq_kernel::Explorer;

    fn reachable_set(program: &Program) -> BTreeSet<Config> {
        let init = program.initial_config(vec![]).unwrap();
        Explorer::new(program)
            .explore([init])
            .unwrap()
            .configs()
            .cloned()
            .collect()
    }

    /// Replays a trace step by step: steps chain, each `before` has the
    /// fired pending async, and firing it can produce each `after`.
    fn assert_replays(program: &Program, trace: &Trace) {
        for pair in trace.steps.windows(2) {
            assert_eq!(pair[0].after, pair[1].before, "steps must chain");
        }
        for step in &trace.steps {
            assert!(
                step.before.pending.contains(&step.fired),
                "fired {} not pending in {}",
                step.fired,
                step.before
            );
            let outcome = program
                .eval_pa(&step.before.globals, &step.fired)
                .expect("trace step must evaluate");
            let successors: Vec<Config> = match outcome {
                inseq_kernel::ActionOutcome::Transitions(ts) => ts
                    .into_iter()
                    .map(|t| {
                        let mut bag = step.before.pending.clone();
                        bag.remove_one(&step.fired);
                        Config::new(t.globals, bag.union(&t.created))
                    })
                    .collect(),
                inseq_kernel::ActionOutcome::Failure { .. } => Vec::new(),
            };
            assert!(
                successors.contains(&step.after),
                "step does not replay: {} --{}-> {}",
                step.before,
                step.fired,
                step.after
            );
        }
    }

    #[test]
    fn matches_sequential_on_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4, 8] {
            let exp = ParallelExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let parallel: BTreeSet<Config> = exp.configs().collect();
            assert_eq!(parallel, reachable_set(&p), "workers = {workers}");
            assert!(!exp.has_failure());
            assert!(!exp.has_deadlock());
        }
    }

    #[test]
    fn summary_matches_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).summarize(init.clone()).unwrap();
        for workers in [1, 3] {
            let par = ParallelExplorer::new(&p)
                .with_workers(workers)
                .summarize(init.clone())
                .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn edge_counts_match_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).explore([init.clone()]).unwrap();
        let par = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert_eq!(par.edge_count(), seq.edge_count());
        assert_eq!(par.config_count(), seq.config_count());
    }

    #[test]
    fn failures_are_found() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
        assert!(exp
            .failure_reports()
            .iter()
            .any(|r| r.contains("assert false")));
        assert!(!exp.summary().good);
    }

    #[test]
    fn failure_witnesses_carry_replayable_traces() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4, 8] {
            let exp = ParallelExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let witnesses = exp.failure_witnesses();
            assert!(!witnesses.is_empty(), "workers = {workers}");
            for w in &witnesses {
                assert_replays(&p, &w.trace);
                // The trace ends at the failing configuration: the fired
                // pending async must be enabled there and actually fail.
                let at = w.trace.last().cloned().unwrap_or_else(|| init.clone());
                assert!(at.pending.contains(&w.fired));
                assert!(matches!(
                    p.eval_pa(&at.globals, &w.fired).unwrap(),
                    inseq_kernel::ActionOutcome::Failure { .. }
                ));
            }
        }
    }

    #[test]
    fn trace_to_reaches_every_visited_config() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(4)
            .explore([init.clone()])
            .unwrap();
        for config in exp.configs() {
            let trace = exp.trace_to(&config).expect("visited config has a trace");
            assert_replays(&p, &trace);
            let end = trace.last().cloned().unwrap_or_else(|| init.clone());
            assert_eq!(end, config);
        }
        assert!(exp
            .trace_to(&Config::new(GlobalStore::new(vec![]), Multiset::new()))
            .is_none());
    }

    #[test]
    fn stop_on_first_failure_cancels_early() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .stop_on_first_failure(true)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
    }

    #[test]
    fn budget_is_enforced_and_reports_exhaustion_point() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = ParallelExplorer::new(&p)
            .with_workers(2)
            .with_budget(1)
            .explore([init.clone()])
            .unwrap_err();
        match err {
            ExploreError::BudgetExceeded {
                limit: 1,
                visited,
                trace,
            } => {
                assert!(visited > 1);
                let trace = trace.expect("budget exhaustion carries a witness trace");
                assert!(!trace.is_empty());
                assert_replays(&p, &trace);
                assert_eq!(trace.steps[0].before, init);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_for_all_interned_configs() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        let stats = exp.stats();
        assert_eq!(stats.shards.len(), 2);
        // Every distinct config is exactly one interner miss, credited to
        // the worker that interned it first (seeds go to shard 0).
        assert_eq!(stats.intern().misses as usize, exp.config_count());
        // Every config is expanded exactly once — no item is lost or
        // duplicated by stealing.
        assert_eq!(stats.expanded() as usize, exp.config_count());
        // Steal conservation: everything stolen in was stolen from some
        // deque, and the deque engine never re-interns migrated work.
        assert_eq!(stats.stolen(), stats.migrated());
        assert_eq!(stats.migration_dups(), 0);
        assert!(stats.migration_dups() <= stats.migrated());
        // No reduction policy: nothing pruned, nothing collapsed, and the
        // bounded pa cache (reduction path only) stays untouched.
        assert_eq!(stats.pruned(), 0);
        assert_eq!(stats.orbit_collapses(), 0);
        assert_eq!(stats.pa_cache_peak(), 0);
        for shard in &stats.shards {
            assert_eq!(shard.received, 0);
            assert_eq!(shard.received_dups, 0);
        }
        // Batch accounting: every non-terminal expansion staged at least
        // one batch, and the histogram covers exactly the batches.
        assert!(stats.intern_batches() > 0);
        let hist_total: u64 = stats.intern_batch_hist().iter().sum();
        assert_eq!(hist_total, stats.intern_batches());
        // Contention counters flow from the shared interner: every
        // distinct id allocation is a shard insert (configs + stores +
        // bags + values + pending asyncs ≥ configs).
        assert!(stats.contention.inserts_total() >= exp.config_count() as u64);
    }

    #[test]
    fn explore_with_stats_aggregates_on_budget_error() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let (result, stats) = ParallelExplorer::new(&p)
            .with_workers(4)
            .with_budget(2)
            .explore_with_stats([init]);
        let err = result.unwrap_err();
        assert!(matches!(err, ExploreError::BudgetExceeded { limit: 2, .. }));
        // The error path still joins all workers and aggregates their
        // counters: expansions happened, and the steal/migration invariant
        // holds even for a run cut short mid-flight.
        assert_eq!(stats.shards.len(), 4);
        assert!(stats.expanded() >= 1);
        assert!(stats.migration_dups() <= stats.migrated());
        assert_eq!(stats.stolen(), stats.migrated());
    }

    #[test]
    fn empty_initial_set_is_trivially_good() {
        let p = counter_program();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([])
            .unwrap();
        assert_eq!(exp.config_count(), 0);
        assert!(exp.summary().good);
    }

    #[test]
    fn deadlocks_match_sequential() {
        use inseq_kernel::{
            ActionOutcome, GlobalSchema, Multiset, NativeAction, Program as KProgram, Transition,
            Value,
        };
        let mut b = KProgram::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(
                    g.clone(),
                    Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_deadlock());
        assert_eq!(exp.deadlocked_configs().count(), 1);
        // The deadlock carries a replayable witness ending at the stuck
        // configuration.
        let witnesses = exp.deadlock_witnesses();
        assert_eq!(witnesses.len(), 1);
        assert_replays(&p, &witnesses[0]);
        assert_eq!(
            witnesses[0].last().unwrap(),
            exp.deadlocked_configs().next().unwrap()
        );
    }
}
