//! Layer 1: parallel exploration over shared arenas with per-shard
//! work-stealing deques.
//!
//! [`ParallelExplorer`] is a drop-in alternative to
//! [`inseq_kernel::Explorer`]: it enumerates exactly the same reachable
//! configuration set and produces the same `Good`/`Trans` summary, but
//! expands configurations on `N` worker threads. Two structural decisions
//! distinguish it from the channel-migration baseline it replaced (kept as
//! [`crate::MpscExplorer`] for benchmarking):
//!
//! 1. **One shared hash-consing [`Interner`]** behind a mutex, instead of a
//!    private interner per shard. Ids are meaningful to every worker, so a
//!    successor is deduplicated *before* any cross-worker handoff — by
//!    hashing two `u32` ids under the lock — and handing work to another
//!    worker moves three ids, not a materialized [`Config`]. The mpsc
//!    engine's dominant waste disappears wholesale: it materialized,
//!    shipped, and structurally re-interned every cross-shard successor,
//!    ~80% of which the receiver then rejected as duplicates on
//!    duplicate-heavy frontiers (measured on 2PC and Paxos; see
//!    `received_dups`). The lock is short — evaluation, the expensive part,
//!    runs outside it — so contention stays far below the per-config
//!    savings.
//! 2. **Per-shard work-stealing deques** instead of channels. Each worker
//!    owns a deque of `(config, store, bag)` id triples: it pushes and pops
//!    work at the *back* (LIFO, cache-warm), and an idle worker steals
//!    `⌈len/2⌉` (capped at [`STEAL_BATCH`]) from the *front* of a victim's
//!    deque — one `drain` buffer operation, not a per-config send. There is
//!    no ownership routing: whichever worker interns a fresh configuration
//!    queues it locally, and load balance emerges from stealing.
//!
//! # Witness traces
//!
//! Alongside each interned configuration the shared arena records a
//! **parent pointer**: the predecessor's [`ConfigId`], the fired pending
//! async, and the recorded firing distance from a seed. A fresh intern
//! appends its discovering edge; a duplicate intern *relaxes* the stored
//! parent when it arrived via a shorter recorded path. Recorded distances
//! strictly decrease along parent chains (relaxation only ever lowers a
//! target's distance), so every chain is acyclic and terminates at a seed —
//! walking it yields a concrete, replayable firing sequence for any
//! configuration of interest: gate failures
//! ([`ParallelExploration::failure_witnesses`]), deadlocks
//! ([`ParallelExploration::deadlock_witnesses`]), budget exhaustion (the
//! `trace` inside [`ExploreError::BudgetExceeded`]), or any reachable
//! configuration ([`ParallelExploration::trace_to`]). Traces are valid
//! paths but not guaranteed globally shortest: a relaxation does not
//! propagate to already-recorded descendants.
//!
//! # Reduction
//!
//! [`ParallelExplorer::with_reduction`] applies the same
//! [`ReductionPolicy`] contract as the sequential explorer: when the policy
//! proves an ample singleton sound at a configuration, only that pending
//! async is expanded, with the cycle proviso that an ample round which
//! interns nothing fresh falls back to expanding the remaining pendings.
//! The ample decision runs *outside* the arena lock, on the phase-1
//! snapshot. Successors are canonicalized under the policy's symmetry
//! quotient (if any) before interning, under the phase-3 lock, with a
//! per-worker canonicalization cache. Reduced traces under a symmetry
//! quotient are valid modulo node renaming only.
//!
//! # Expansion pipeline
//!
//! A worker expands one configuration in three phases: (1) under one short
//! arena lock, snapshot the pending-async ids and multiplicities, the
//! (cheap, sub-part shared) global store, and any uncached [`PendingAsync`]
//! values — each worker memoizes resolved pending asyncs by id, which is
//! sound because arenas are append-only; (2) with **no locks held**,
//! evaluate every selected pending async, consulting the shared footprint
//! memo ([`crate::memo`]) exactly like the sequential path; (3) under a
//! second arena lock, intern all successor stores/bags/configs as small
//! diffs against the parent's ids and record their parent edges. Fresh
//! successors are pushed onto the worker's own deque in one batch.
//!
//! # Termination
//!
//! A shared in-flight counter tracks configurations that are queued or
//! being expanded: it is incremented for every fresh successor *before* the
//! parent's own decrement, so the counter can only reach zero when no work
//! exists anywhere — at which point every spinning worker observes the zero
//! and exits. Stolen batches move between locked deques and are never
//! uncounted in transit.
//!
//! # Cancellation and budget
//!
//! A shared cancellation flag stops all workers early on the first kernel
//! error, on budget exhaustion, or — when
//! [`ParallelExplorer::stop_on_first_failure`] is set — on the first gate
//! violation. The budget is checked against the shared interner's exact
//! config count at each fresh intern (seeds exempt), mirroring the
//! sequential explorer; exhaustion reports the post-join visited total via
//! [`ExploreError::BudgetExceeded`], with a concrete witness trace to the
//! exhaustion point built from the parent forest under the held lock.
//! Per-shard counters survive every error path:
//! [`ParallelExplorer::explore_with_stats`] aggregates them after the join
//! even when the run is cut short mid-steal.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::memo::{build_plans, MemoPlan, Resolved, SharedMemo, View};
use crate::stats::{ExploreStats, ShardStats};

use inseq_obs::HitMissSnapshot;

use inseq_kernel::{
    canonical_parts, ActionName, BagId, Config, ConfigId, ExploreError, FailureWitness,
    GlobalStore, Interner, Multiset, PaId, PendingAsync, Program, ReductionPolicy, Step, StoreId,
    Summary, Trace, DEFAULT_CONFIG_BUDGET,
};

/// Upper bound on the configurations moved by one steal. Half the victim's
/// deque is taken up to this cap: enough to amortize the steal far beyond
/// its two lock acquisitions, small enough that a thief cannot starve a
/// victim that is about to pop its own back end.
const STEAL_BATCH: usize = 64;

/// A unit of work: an interned configuration and its parts. Ids are global
/// (one shared interner), so handing this to another worker is a copy of
/// three `u32`s — no materialization, no re-interning.
type WorkItem = (ConfigId, StoreId, BagId);

/// One recorded parent edge: the predecessor configuration, the pending
/// async fired to get here, and the recorded firing distance from a seed.
/// `None` marks a seed (distance zero).
type ParentEdge = Option<(ConfigId, PaId, u32)>;

/// A parallel exhaustive explorer for a [`Program`].
///
/// Mirrors the sequential [`inseq_kernel::Explorer`] API: construct with
/// [`ParallelExplorer::new`], optionally configure, then call
/// [`explore`](ParallelExplorer::explore) or
/// [`summarize`](ParallelExplorer::summarize).
pub struct ParallelExplorer<'p> {
    program: &'p Program,
    workers: usize,
    budget: usize,
    stop_on_failure: bool,
    reduction: Option<&'p dyn ReductionPolicy>,
}

impl fmt::Debug for ParallelExplorer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelExplorer")
            .field("workers", &self.workers)
            .field("budget", &self.budget)
            .field("stop_on_failure", &self.stop_on_failure)
            .field("reduced", &self.reduction.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> ParallelExplorer<'p> {
    /// Creates a parallel explorer with one worker per available hardware
    /// thread and the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        ParallelExplorer {
            program,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            budget: DEFAULT_CONFIG_BUDGET,
            stop_on_failure: false,
            reduction: None,
        }
    }

    /// Sets the number of worker threads (and therefore deques). Clamped to
    /// at least one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the maximum number of distinct configurations to visit before
    /// giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Explores under a reduction policy, with the same semantics as
    /// [`inseq_kernel::Explorer::with_reduction`]: ample singletons where
    /// the policy proves them sound, successor canonicalization under the
    /// policy's symmetry quotient. Verdicts are preserved; visited/edge
    /// counts refer to the *reduced* graph.
    #[must_use]
    pub fn with_reduction(mut self, policy: &'p dyn ReductionPolicy) -> Self {
        self.reduction = Some(policy);
        self
    }

    /// When enabled, the first gate violation cancels all workers instead of
    /// letting the exploration run to completion. The verdict (`good =
    /// false`) is unaffected, but the reachable set in the result is then a
    /// *subset* of the true one — leave this off (the default) when the full
    /// set matters, e.g. for equivalence with the sequential explorer.
    #[must_use]
    pub fn stop_on_first_failure(mut self, stop: bool) -> Self {
        self.stop_on_failure = stop;
        self
    }

    /// The configured number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Explores all configurations reachable from the given initial
    /// configurations, in parallel.
    ///
    /// The resulting reachable set, failure verdict, deadlock set, terminal
    /// stores, and edge count are identical to those of
    /// [`inseq_kernel::Explorer::explore`] on the same input.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the visited set
    /// exceeds the budget and [`ExploreError::Kernel`] when a pending async
    /// refers to an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<ParallelExploration, ExploreError> {
        self.explore_with_stats(initial).0
    }

    /// Like [`explore`](Self::explore), but also returns the aggregated
    /// per-shard counters even when the exploration fails: on
    /// `BudgetExceeded` (or any other error) the workers' outputs are still
    /// joined and merged, so steal/expansion accounting is never lost to
    /// the error path.
    pub fn explore_with_stats(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> (Result<ParallelExploration, ExploreError>, ExploreStats) {
        // Force one-time action setup (e.g. compiling to bytecode) before
        // spawning workers, so they never race on first-eval compilation.
        self.program.prepare_actions();
        let n = self.workers;

        // Seeds are interned up front by the calling thread — exempt from
        // the budget check, like the sequential explorer's — and dealt
        // round-robin across the deques. Seeds carry no parent edge.
        let mut arena = Arena {
            interner: Interner::new(),
            parents: Vec::new(),
        };
        let mut seed_items: Vec<WorkItem> = Vec::new();
        let mut seed_hits = 0u64;
        for config in initial {
            let (id, fresh) = arena.interner.intern_config(&config);
            if fresh {
                arena.parents.push(None);
                let (sid, bagid) = arena.interner.config_parts(id);
                seed_items.push((id, sid, bagid));
            } else {
                seed_hits += 1;
            }
        }
        if seed_items.is_empty() {
            let stats = ExploreStats {
                shards: vec![ShardStats::default(); n],
                memo: HitMissSnapshot::default(),
            };
            return (Ok(ParallelExploration::empty(arena, stats.clone())), stats);
        }
        let seed_count = seed_items.len();

        let deques: Vec<Deque> = (0..n).map(|_| Deque::default()).collect();
        for (k, item) in seed_items.into_iter().enumerate() {
            deques[k % n]
                .queue
                .lock()
                .expect("deque poisoned")
                .push_back(item);
        }
        let shared = Shared {
            arena: Mutex::new(arena),
            deques,
            in_flight: AtomicUsize::new(seed_count),
            cancelled: AtomicBool::new(false),
            error: Mutex::new(None),
        };
        let plans = build_plans(self.program);
        let memo = SharedMemo::for_plans(plans.is_empty());

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|me| {
                    let worker = Worker {
                        me,
                        program: self.program,
                        budget: self.budget,
                        stop_on_failure: self.stop_on_failure,
                        reduction: self.reduction,
                        shared: &shared,
                        plans: &plans,
                        memo: memo.as_ref(),
                        pa_cache: Vec::new(),
                        pa_buf: Vec::new(),
                        counts: Vec::new(),
                        outcomes: Vec::new(),
                        fresh: Vec::new(),
                        canon_cache: HashMap::new(),
                        out: WorkerOutput::default(),
                    };
                    scope.spawn(move || worker.run())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exploration worker panicked"))
                .collect()
        });

        // Post-join aggregation: per-shard counters survive every exit path
        // (normal, cancelled, budget-exceeded mid-steal). Work a shard lost
        // to thieves is counted at its deque, not in the thieves' outputs.
        let mut stats = ExploreStats {
            shards: Vec::with_capacity(n),
            memo: memo
                .as_ref()
                .map_or_else(HitMissSnapshot::default, SharedMemo::snapshot),
        };
        let mut failures = Vec::new();
        let mut deadlocks = Vec::new();
        let mut terminal = BTreeSet::new();
        let mut edges = 0usize;
        for (i, out) in outputs.into_iter().enumerate() {
            let mut shard = out.stats;
            shard.migrated_out = shared.deques[i].stolen_from.load(Ordering::Relaxed);
            if i == 0 {
                // Seed interning ran on the calling thread; credit it to
                // shard 0 so summed misses equal the visited-set size.
                shard.intern = shard
                    .intern
                    .merged(HitMissSnapshot::new(seed_hits, seed_count as u64));
            }
            stats.shards.push(shard);
            failures.extend(out.failures);
            deadlocks.extend(out.deadlocks);
            terminal.extend(out.terminal);
            edges += out.edges;
        }

        let arena = shared.arena.into_inner().expect("arena lock poisoned");
        if let Some(mut err) = shared.error.into_inner().expect("error slot poisoned") {
            if let ExploreError::BudgetExceeded { visited, .. } = &mut err {
                // Racing workers may have interned past the recording
                // worker's observation; report the post-join exact total.
                *visited = arena.interner.config_count();
            }
            return (Err(err), stats);
        }
        (
            Ok(ParallelExploration {
                interner: arena.interner,
                parents: arena.parents,
                failures,
                deadlocks,
                terminal,
                edges,
                stats: stats.clone(),
            }),
            stats,
        )
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration, like [`inseq_kernel::Explorer::summarize`].
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        Ok(self.explore([initial])?.summary())
    }
}

/// One worker's work-stealing deque. The owner pushes and pops at the back
/// under the mutex; thieves drain a batch from the front under the same
/// mutex, so an item is delivered to exactly one worker.
#[derive(Debug, Default)]
struct Deque {
    queue: Mutex<VecDeque<WorkItem>>,
    /// Configurations stolen *from* this deque over the whole run — the
    /// deque engine's migration counter, read after the join.
    stolen_from: AtomicU64,
}

/// The shared hash-consing arenas plus the parent forest, guarded by one
/// mutex: the visited set *is* the config arena, ids are global, and the
/// parent vector is kept aligned with the dense config ids.
#[derive(Debug)]
struct Arena {
    interner: Interner,
    /// Parent edge per interned configuration, indexed by `ConfigId`.
    parents: Vec<ParentEdge>,
}

impl Arena {
    /// The recorded firing distance of a configuration from a seed.
    fn depth(&self, id: ConfigId) -> u32 {
        self.parents[id.index()].map_or(0, |(_, _, d)| d)
    }

    /// Walks the parent chain from `target` back to a seed and resolves it
    /// into concrete steps. Chains are acyclic — recorded distances
    /// strictly decrease along them — so this terminates.
    fn trace_from(&self, target: ConfigId) -> Trace {
        let mut steps = Vec::new();
        let mut cursor = target;
        while let Some((parent, fired, _)) = self.parents[cursor.index()] {
            steps.push(Step {
                before: self.interner.resolve_config(parent),
                fired: self.interner.pa(fired).clone(),
                after: self.interner.resolve_config(cursor),
            });
            cursor = parent;
        }
        steps.reverse();
        Trace { steps }
    }
}

struct Shared {
    arena: Mutex<Arena>,
    deques: Vec<Deque>,
    /// Configurations queued or currently being expanded. Zero is
    /// conclusive: fresh successors are counted before their parent's
    /// decrement, and steals move items between locked deques.
    in_flight: AtomicUsize,
    cancelled: AtomicBool,
    /// First error observed by any worker.
    error: Mutex<Option<ExploreError>>,
}

/// Per-worker results, moved out of the worker when it exits. Failures and
/// deadlocks carry the [`ConfigId`] at which they occurred, so witness
/// traces resolve against the parent forest after the join.
#[derive(Debug, Default)]
struct WorkerOutput {
    failures: Vec<(ConfigId, Config, PendingAsync, String)>,
    deadlocks: Vec<(ConfigId, Config)>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ShardStats,
}

struct Worker<'p, 'sh> {
    me: usize,
    program: &'p Program,
    budget: usize,
    stop_on_failure: bool,
    /// The reduction policy, if any — consulted outside the arena lock.
    reduction: Option<&'p dyn ReductionPolicy>,
    shared: &'sh Shared,
    /// Per-action memoization plans (absent for opaque actions).
    plans: &'sh HashMap<ActionName, MemoPlan>,
    /// The shared evaluation memo; `None` when no action has a footprint.
    memo: Option<&'sh SharedMemo>,
    /// Pending asyncs resolved from the shared arenas, cached by id —
    /// sound because the arenas are append-only, and it keeps repeat
    /// expansions of the same async off the interner lock.
    pa_cache: Vec<Option<PendingAsync>>,
    /// Reusable buffer of the distinct pending-async ids of the
    /// configuration under expansion.
    pa_buf: Vec<PaId>,
    /// Multiplicities aligned with `pa_buf`, snapshot in phase 1 so the
    /// ample decision sees the full bag without re-locking.
    counts: Vec<u32>,
    /// Reusable buffer of evaluated outcomes, applied under the intern
    /// lock in phase 3.
    outcomes: Vec<(PaId, Resolved)>,
    /// Fresh successors of the current expansion, queued in one batch.
    fresh: Vec<WorkItem>,
    /// Raw successor parts → canonical orbit parts, per worker. Sound to
    /// cache because interner ids are append-only.
    canon_cache: HashMap<(StoreId, BagId), (StoreId, BagId)>,
    out: WorkerOutput,
}

/// A non-failure reason to abandon the current configuration mid-step.
enum StepFault {
    Kernel(ExploreError),
    StopOnFailure,
}

impl Worker<'_, '_> {
    fn run(mut self) -> WorkerOutput {
        loop {
            if self.shared.cancelled.load(Ordering::Acquire) {
                break;
            }
            match self.pop_or_steal() {
                Some(item) => {
                    self.expand(item);
                    // The parent is done only now; its fresh successors were
                    // counted inside `expand`, so a zero stays conclusive.
                    self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if self.shared.in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Another worker holds counted work; let it run (this
                    // matters on fewer cores than workers).
                    std::thread::yield_now();
                }
            }
        }
        self.out
    }

    /// Pops from the back of the own deque, or steals a batch from the
    /// front of the first non-empty victim. Returns `None` only when every
    /// deque was observed empty.
    fn pop_or_steal(&mut self) -> Option<WorkItem> {
        if let Some(item) = self.shared.deques[self.me]
            .queue
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(item);
        }
        let n = self.shared.deques.len();
        for k in 1..n {
            let victim = &self.shared.deques[(self.me + k) % n];
            let mut stolen: Vec<WorkItem> = {
                let mut q = victim.queue.lock().expect("deque poisoned");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                let take = len.div_ceil(2).min(STEAL_BATCH);
                victim.stolen_from.fetch_add(take as u64, Ordering::Relaxed);
                q.drain(..take).collect()
            };
            self.out.stats.steals += 1;
            self.out.stats.stolen_in += stolen.len() as u64;
            let first = stolen.pop();
            if !stolen.is_empty() {
                self.shared.deques[self.me]
                    .queue
                    .lock()
                    .expect("deque poisoned")
                    .extend(stolen);
            }
            return first;
        }
        None
    }

    /// The pending bag of the configuration under expansion, rebuilt from
    /// the phase-1 snapshot — no lock needed.
    fn snapshot_bag(&self) -> Multiset<PendingAsync> {
        let mut bag = Multiset::new();
        for (&paid, &count) in self.pa_buf.iter().zip(&self.counts) {
            bag.insert_n(
                self.pa_cache[paid.index()].clone().expect("pa cached"),
                count as usize,
            );
        }
        bag
    }

    /// Expands one configuration: snapshot (locked) → choose an ample set
    /// (unlocked) → evaluate (unlocked) → intern successors and record
    /// parent edges (locked) → queue fresh work. With a reduction policy
    /// the evaluate/intern rounds may run twice: the cycle proviso falls
    /// back to the pruned pendings when the ample round interns nothing
    /// fresh.
    fn expand(&mut self, (cid, sid, bagid): WorkItem) {
        self.out.stats.expanded += 1;

        // Phase 1: snapshot everything evaluation needs under one short
        // lock. The store clone is cheap (slots are shared sub-parts); the
        // pending asyncs come from the per-worker id cache.
        let store: GlobalStore = {
            let g = self.shared.arena.lock().expect("arena poisoned");
            self.pa_buf.clear();
            self.counts.clear();
            for &(p, count) in g.interner.bag_entries(bagid) {
                self.pa_buf.push(p);
                self.counts.push(count);
            }
            for &paid in &self.pa_buf {
                let at = paid.index();
                if self.pa_cache.len() <= at {
                    self.pa_cache.resize(at + 1, None);
                }
                if self.pa_cache[at].is_none() {
                    self.pa_cache[at] = Some(g.interner.pa(paid).clone());
                }
            }
            if self.pa_buf.is_empty() {
                self.out.terminal.insert(g.interner.store(sid).clone());
            }
            g.interner.store(sid).clone()
        };

        // Ample decision, with no locks held: the policy sees the full bag
        // (values + multiplicities) from the snapshot.
        let ample: Option<PaId> = match self.reduction {
            Some(policy) if self.pa_buf.len() >= 2 => {
                let pending: Vec<(PendingAsync, usize)> = self
                    .pa_buf
                    .iter()
                    .zip(&self.counts)
                    .map(|(&p, &count)| {
                        (
                            self.pa_cache[p.index()].clone().expect("pa cached"),
                            count as usize,
                        )
                    })
                    .collect();
                policy
                    .ample(self.program, &store, &pending)
                    .map(|i| self.pa_buf[i])
            }
            _ => None,
        };
        let mut selected: Vec<PaId> = match ample {
            Some(p) => vec![p],
            None => self.pa_buf.clone(),
        };
        let mut ample_round = ample.is_some();

        let mut fault = None;
        let mut progressed = self.pa_buf.is_empty();
        loop {
            // Phase 2: evaluate the selected pending asyncs with no locks
            // held (the footprint memo takes its own short lock per
            // probe/insert).
            self.outcomes.clear();
            for &paid in &selected {
                let pa = self.pa_cache[paid.index()]
                    .as_ref()
                    .expect("pa cached in phase 1");
                let plan = self.plans.get(&pa.action);
                let active = match (self.memo, plan) {
                    (Some(memo), Some(plan)) if memo.enabled.load(Ordering::Relaxed) => {
                        Some((memo, plan))
                    }
                    _ => None,
                };
                let outcome = if let Some((memo, plan)) = active {
                    if let Some(cached) = memo.probe(pa, plan, &store) {
                        Resolved::Cached(cached)
                    } else {
                        match self.program.eval_pa(&store, pa) {
                            Ok(out) => {
                                memo.publish(pa, plan, &store, &out);
                                Resolved::Owned(out)
                            }
                            Err(e) => {
                                fault = Some(StepFault::Kernel(e.into()));
                                break;
                            }
                        }
                    }
                } else {
                    match self.program.eval_pa(&store, pa) {
                        Ok(out) => Resolved::Owned(out),
                        Err(e) => {
                            fault = Some(StepFault::Kernel(e.into()));
                            break;
                        }
                    }
                };
                self.outcomes.push((paid, outcome));
            }

            // Phase 3: intern all successors under a second lock, as small
            // diffs against the parent's interned parts.
            let fresh_before = self.fresh.len();
            if fault.is_none() {
                let outcomes = std::mem::take(&mut self.outcomes);
                {
                    let mut guard = self.shared.arena.lock().expect("arena poisoned");
                    let arena = &mut *guard;
                    'apply: for (paid, outcome) in &outcomes {
                        let paid = *paid;
                        let plan = self
                            .plans
                            .get(&self.pa_cache[paid.index()].as_ref().unwrap().action);
                        // The footprint's write set bounds which slots a
                        // successor store can differ in, letting the interner
                        // skip re-hashing the rest.
                        let fp_writes: Option<&[usize]> = plan.map(|p| p.writes.as_slice());
                        match outcome.view() {
                            View::Failure(reason) => {
                                progressed = true;
                                let witness = Config::new(store.clone(), self.snapshot_bag());
                                self.out.failures.push((
                                    cid,
                                    witness,
                                    self.pa_cache[paid.index()].clone().expect("pa cached"),
                                    reason.to_owned(),
                                ));
                                if self.stop_on_failure {
                                    fault = Some(StepFault::StopOnFailure);
                                    break 'apply;
                                }
                            }
                            View::Full(transitions) => {
                                if !transitions.is_empty() {
                                    progressed = true;
                                }
                                for t in transitions {
                                    self.out.edges += 1;
                                    let next_sid = arena
                                        .interner
                                        .intern_store_diff(sid, &t.globals, fp_writes);
                                    let next_bag =
                                        arena.interner.bag_after(bagid, paid, &t.created);
                                    if let Err(f) =
                                        self.intern_next(arena, cid, paid, next_sid, next_bag)
                                    {
                                        fault = Some(f);
                                        break 'apply;
                                    }
                                }
                            }
                            View::Delta(transitions) => {
                                if !transitions.is_empty() {
                                    progressed = true;
                                }
                                for t in transitions {
                                    self.out.edges += 1;
                                    // Replay the memoized write-delta; by the
                                    // footprint contract the result is exactly
                                    // what `eval` would have produced here.
                                    let next_sid =
                                        arena.interner.intern_store_writes(sid, &t.writes);
                                    let next_bag =
                                        arena.interner.bag_after(bagid, paid, &t.created);
                                    if let Err(f) =
                                        self.intern_next(arena, cid, paid, next_sid, next_bag)
                                    {
                                        fault = Some(f);
                                        break 'apply;
                                    }
                                }
                            }
                        }
                    }
                }
                self.outcomes = outcomes;
                self.outcomes.clear();
            }

            if fault.is_some() || !ample_round {
                break;
            }
            if self.fresh.len() > fresh_before {
                // The ample expansion discovered a new configuration; the
                // pruned pendings fire from there eventually.
                self.out.stats.pruned += (self.pa_buf.len() - 1) as u64;
                break;
            }
            // Cycle proviso: every ample successor was already visited, so
            // postponing the others could starve them around a cycle. Fall
            // back to full expansion of the remaining pendings. (Racing
            // workers make this an over-approximation — a successor another
            // worker interned first also triggers the fallback — which only
            // ever expands more, never less.)
            let chosen = selected[0];
            selected = self
                .pa_buf
                .iter()
                .copied()
                .filter(|&p| p != chosen)
                .collect();
            ample_round = false;
        }

        if fault.is_none() && !progressed {
            let witness = Config::new(store.clone(), self.snapshot_bag());
            self.out.deadlocks.push((cid, witness));
        }

        match fault {
            None => {
                // Count the fresh successors in-flight *before* queueing
                // them (and before the caller decrements the parent), then
                // hand them to the own deque in one batch.
                if !self.fresh.is_empty() {
                    self.shared
                        .in_flight
                        .fetch_add(self.fresh.len(), Ordering::AcqRel);
                    self.shared.deques[self.me]
                        .queue
                        .lock()
                        .expect("deque poisoned")
                        .extend(self.fresh.drain(..));
                }
            }
            Some(StepFault::Kernel(err)) => {
                self.fresh.clear();
                self.fail(err);
            }
            Some(StepFault::StopOnFailure) => {
                self.fresh.clear();
                self.cancel();
            }
        }
    }

    /// Interns one successor config from already-interned parts —
    /// canonicalized under the symmetry quotient first, when one is active —
    /// and records its parent edge; fresh ones are budget-checked against
    /// the exact shared count and staged for the own deque. Dedup happens
    /// *here*, before any handoff — a duplicate costs one id-pair hash plus
    /// a possible parent relaxation, never a materialization.
    fn intern_next(
        &mut self,
        arena: &mut Arena,
        parent: ConfigId,
        fired: PaId,
        sid: StoreId,
        bagid: BagId,
    ) -> Result<(), StepFault> {
        let (sid, bagid) = match self.reduction.and_then(ReductionPolicy::symmetry) {
            Some(spec) => {
                let canon = canonical_parts(
                    &mut arena.interner,
                    &mut self.canon_cache,
                    spec,
                    (sid, bagid),
                );
                if canon != (sid, bagid) {
                    self.out.stats.orbit_collapses += 1;
                }
                canon
            }
            None => (sid, bagid),
        };
        let (id, fresh) = arena.interner.intern_config_parts(sid, bagid);
        let depth = arena.depth(parent).saturating_add(1);
        if fresh {
            self.out.stats.intern.misses += 1;
            arena.parents.push(Some((parent, fired, depth)));
            if arena.interner.config_count() > self.budget {
                // The parent edge to `id` is already recorded, so the
                // exhaustion point has a concrete witness run.
                let trace = arena.trace_from(id);
                return Err(StepFault::Kernel(ExploreError::BudgetExceeded {
                    limit: self.budget,
                    visited: arena.interner.config_count(),
                    trace: Some(trace),
                }));
            }
            self.fresh.push((id, sid, bagid));
        } else {
            self.out.stats.intern.hits += 1;
            // Relax the stored parent when this edge arrives via a shorter
            // recorded path, keeping witness traces short. Seeds (`None`)
            // are never replaced, and a relaxation only ever lowers the
            // target's recorded distance, so parent chains stay acyclic.
            let slot = &mut arena.parents[id.index()];
            if let Some((_, _, d)) = slot {
                if depth < *d {
                    *slot = Some((parent, fired, depth));
                }
            }
        }
        Ok(())
    }

    fn fail(&mut self, err: ExploreError) {
        let mut slot = self.shared.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.cancel();
    }

    fn cancel(&mut self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }
}

/// The result of a parallel exploration: the shared arenas (from which the
/// reachable set is resolved on demand), the parent forest (from which
/// witness traces are rebuilt), plus all gate violations and deadlocks
/// encountered.
///
/// Unlike [`inseq_kernel::Exploration`] this does not record the full
/// transition graph — one parent edge per configuration suffices for
/// witness reconstruction — and it does not materialize the visited set at
/// all: [`configs`](ParallelExploration::configs) resolves configurations
/// lazily from the arenas, so a multi-million-config run pays for
/// materialization only if someone iterates it. Traces are valid firing
/// sequences but, unlike the sequential explorer's BFS reconstruction, not
/// guaranteed globally shortest.
#[derive(Debug)]
pub struct ParallelExploration {
    interner: Interner,
    parents: Vec<ParentEdge>,
    failures: Vec<(ConfigId, Config, PendingAsync, String)>,
    deadlocks: Vec<(ConfigId, Config)>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ExploreStats,
}

impl ParallelExploration {
    fn empty(arena: Arena, stats: ExploreStats) -> Self {
        ParallelExploration {
            interner: arena.interner,
            parents: arena.parents,
            failures: Vec::new(),
            deadlocks: Vec::new(),
            terminal: BTreeSet::new(),
            edges: 0,
            stats,
        }
    }

    /// Observability counters of this exploration: per-shard interner
    /// hits/misses, expansion occupancy, steal traffic, reduction pruning,
    /// and footprint-memo effectiveness.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.interner.config_count()
    }

    /// Number of transitions in the explored graph (counted, not stored).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterates over all reachable configurations, resolving each from the
    /// shared arenas on demand. The order is not meaningful; compare as a
    /// set.
    pub fn configs(&self) -> impl Iterator<Item = Config> + '_ {
        self.interner
            .config_ids()
            .map(|id| self.interner.resolve_config(id))
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found, in the same
    /// format as [`inseq_kernel::Exploration::failure_reports`].
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|(_, config, fired, reason)| {
                format!("executing {fired} from {config} fails: {reason}")
            })
            .collect()
    }

    /// Rebuilds the recorded firing sequence from a parent-forest walk.
    fn trace_from(&self, target: ConfigId) -> Trace {
        let mut steps = Vec::new();
        let mut cursor = target;
        while let Some((parent, fired, _)) = self.parents[cursor.index()] {
            steps.push(Step {
                before: self.interner.resolve_config(parent),
                fired: self.interner.pa(fired).clone(),
                after: self.interner.resolve_config(cursor),
            });
            cursor = parent;
        }
        steps.reverse();
        Trace { steps }
    }

    /// A concrete firing sequence from a seed to `target`, or `None` when
    /// `target` was not visited. The trace replays step by step but is not
    /// guaranteed shortest.
    #[must_use]
    pub fn trace_to(&self, target: &Config) -> Option<Trace> {
        let id = self.interner.find_config(target)?;
        Some(self.trace_from(id))
    }

    /// All gate violations, each with a concrete firing sequence reaching
    /// the configuration at which the gate fails — the parallel analogue of
    /// [`inseq_kernel::Exploration::failure_witnesses`].
    #[must_use]
    pub fn failure_witnesses(&self) -> Vec<FailureWitness> {
        self.failures
            .iter()
            .map(|(cid, _, fired, reason)| FailureWitness {
                trace: self.trace_from(*cid),
                fired: fired.clone(),
                reason: reason.clone(),
            })
            .collect()
    }

    /// A concrete firing sequence reaching each deadlocked configuration.
    #[must_use]
    pub fn deadlock_witnesses(&self) -> Vec<Trace> {
        self.deadlocks
            .iter()
            .map(|(cid, _)| self.trace_from(*cid))
            .collect()
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure.
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter().map(|(_, c)| c)
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.terminal.iter()
    }

    /// The program summary over the explored set: `good` iff no gate
    /// violation was found, plus the set of terminating stores.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            good: !self.has_failure(),
            terminal: self.terminal.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::{counter_program, failing_program};
    use inseq_kernel::Explorer;

    fn reachable_set(program: &Program) -> BTreeSet<Config> {
        let init = program.initial_config(vec![]).unwrap();
        Explorer::new(program)
            .explore([init])
            .unwrap()
            .configs()
            .cloned()
            .collect()
    }

    /// Replays a trace step by step: steps chain, each `before` has the
    /// fired pending async, and firing it can produce each `after`.
    fn assert_replays(program: &Program, trace: &Trace) {
        for pair in trace.steps.windows(2) {
            assert_eq!(pair[0].after, pair[1].before, "steps must chain");
        }
        for step in &trace.steps {
            assert!(
                step.before.pending.contains(&step.fired),
                "fired {} not pending in {}",
                step.fired,
                step.before
            );
            let outcome = program
                .eval_pa(&step.before.globals, &step.fired)
                .expect("trace step must evaluate");
            let successors: Vec<Config> = match outcome {
                inseq_kernel::ActionOutcome::Transitions(ts) => ts
                    .into_iter()
                    .map(|t| {
                        let mut bag = step.before.pending.clone();
                        bag.remove_one(&step.fired);
                        Config::new(t.globals, bag.union(&t.created))
                    })
                    .collect(),
                inseq_kernel::ActionOutcome::Failure { .. } => Vec::new(),
            };
            assert!(
                successors.contains(&step.after),
                "step does not replay: {} --{}-> {}",
                step.before,
                step.fired,
                step.after
            );
        }
    }

    #[test]
    fn matches_sequential_on_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4, 8] {
            let exp = ParallelExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let parallel: BTreeSet<Config> = exp.configs().collect();
            assert_eq!(parallel, reachable_set(&p), "workers = {workers}");
            assert!(!exp.has_failure());
            assert!(!exp.has_deadlock());
        }
    }

    #[test]
    fn summary_matches_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).summarize(init.clone()).unwrap();
        for workers in [1, 3] {
            let par = ParallelExplorer::new(&p)
                .with_workers(workers)
                .summarize(init.clone())
                .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn edge_counts_match_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).explore([init.clone()]).unwrap();
        let par = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert_eq!(par.edge_count(), seq.edge_count());
        assert_eq!(par.config_count(), seq.config_count());
    }

    #[test]
    fn failures_are_found() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
        assert!(exp
            .failure_reports()
            .iter()
            .any(|r| r.contains("assert false")));
        assert!(!exp.summary().good);
    }

    #[test]
    fn failure_witnesses_carry_replayable_traces() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4, 8] {
            let exp = ParallelExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let witnesses = exp.failure_witnesses();
            assert!(!witnesses.is_empty(), "workers = {workers}");
            for w in &witnesses {
                assert_replays(&p, &w.trace);
                // The trace ends at the failing configuration: the fired
                // pending async must be enabled there and actually fail.
                let at = w.trace.last().cloned().unwrap_or_else(|| init.clone());
                assert!(at.pending.contains(&w.fired));
                assert!(matches!(
                    p.eval_pa(&at.globals, &w.fired).unwrap(),
                    inseq_kernel::ActionOutcome::Failure { .. }
                ));
            }
        }
    }

    #[test]
    fn trace_to_reaches_every_visited_config() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(4)
            .explore([init.clone()])
            .unwrap();
        for config in exp.configs() {
            let trace = exp.trace_to(&config).expect("visited config has a trace");
            assert_replays(&p, &trace);
            let end = trace.last().cloned().unwrap_or_else(|| init.clone());
            assert_eq!(end, config);
        }
        assert!(exp
            .trace_to(&Config::new(GlobalStore::new(vec![]), Multiset::new()))
            .is_none());
    }

    #[test]
    fn stop_on_first_failure_cancels_early() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .stop_on_first_failure(true)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
    }

    #[test]
    fn budget_is_enforced_and_reports_exhaustion_point() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = ParallelExplorer::new(&p)
            .with_workers(2)
            .with_budget(1)
            .explore([init.clone()])
            .unwrap_err();
        match err {
            ExploreError::BudgetExceeded {
                limit: 1,
                visited,
                trace,
            } => {
                assert!(visited > 1);
                let trace = trace.expect("budget exhaustion carries a witness trace");
                assert!(!trace.is_empty());
                assert_replays(&p, &trace);
                assert_eq!(trace.steps[0].before, init);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_for_all_interned_configs() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        let stats = exp.stats();
        assert_eq!(stats.shards.len(), 2);
        // Every distinct config is exactly one interner miss, credited to
        // the worker that interned it first (seeds go to shard 0).
        assert_eq!(stats.intern().misses as usize, exp.config_count());
        // Every config is expanded exactly once — no item is lost or
        // duplicated by stealing.
        assert_eq!(stats.expanded() as usize, exp.config_count());
        // Steal conservation: everything stolen in was stolen from some
        // deque, and the deque engine never re-interns migrated work.
        assert_eq!(stats.stolen(), stats.migrated());
        assert_eq!(stats.migration_dups(), 0);
        assert!(stats.migration_dups() <= stats.migrated());
        // No reduction policy: nothing pruned, nothing collapsed.
        assert_eq!(stats.pruned(), 0);
        assert_eq!(stats.orbit_collapses(), 0);
        for shard in &stats.shards {
            assert_eq!(shard.received, 0);
            assert_eq!(shard.received_dups, 0);
        }
    }

    #[test]
    fn explore_with_stats_aggregates_on_budget_error() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let (result, stats) = ParallelExplorer::new(&p)
            .with_workers(4)
            .with_budget(2)
            .explore_with_stats([init]);
        let err = result.unwrap_err();
        assert!(matches!(err, ExploreError::BudgetExceeded { limit: 2, .. }));
        // The error path still joins all workers and aggregates their
        // counters: expansions happened, and the steal/migration invariant
        // holds even for a run cut short mid-flight.
        assert_eq!(stats.shards.len(), 4);
        assert!(stats.expanded() >= 1);
        assert!(stats.migration_dups() <= stats.migrated());
        assert_eq!(stats.stolen(), stats.migrated());
    }

    #[test]
    fn empty_initial_set_is_trivially_good() {
        let p = counter_program();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([])
            .unwrap();
        assert_eq!(exp.config_count(), 0);
        assert!(exp.summary().good);
    }

    #[test]
    fn deadlocks_match_sequential() {
        use inseq_kernel::{
            ActionOutcome, GlobalSchema, Multiset, NativeAction, Program as KProgram, Transition,
            Value,
        };
        let mut b = KProgram::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(
                    g.clone(),
                    Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_deadlock());
        assert_eq!(exp.deadlocked_configs().count(), 1);
        // The deadlock carries a replayable witness ending at the stuck
        // configuration.
        let witnesses = exp.deadlock_witnesses();
        assert_eq!(witnesses.len(), 1);
        assert_replays(&p, &witnesses[0]);
        assert_eq!(
            witnesses[0].last().unwrap(),
            exp.deadlocked_configs().next().unwrap()
        );
    }
}
