//! Layer 1: parallel exploration over shared arenas with per-shard
//! work-stealing deques.
//!
//! [`ParallelExplorer`] is a drop-in alternative to
//! [`inseq_kernel::Explorer`]: it enumerates exactly the same reachable
//! configuration set and produces the same `Good`/`Trans` summary, but
//! expands configurations on `N` worker threads. Two structural decisions
//! distinguish it from the channel-migration baseline it replaced (kept as
//! [`crate::MpscExplorer`] for benchmarking):
//!
//! 1. **One shared hash-consing [`Interner`]** behind a mutex, instead of a
//!    private interner per shard. Ids are meaningful to every worker, so a
//!    successor is deduplicated *before* any cross-worker handoff — by
//!    hashing two `u32` ids under the lock — and handing work to another
//!    worker moves three ids, not a materialized [`Config`]. The mpsc
//!    engine's dominant waste disappears wholesale: it materialized,
//!    shipped, and structurally re-interned every cross-shard successor,
//!    ~80% of which the receiver then rejected as duplicates on
//!    duplicate-heavy frontiers (measured on 2PC and Paxos; see
//!    `received_dups`). The lock is short — evaluation, the expensive part,
//!    runs outside it — so contention stays far below the per-config
//!    savings.
//! 2. **Per-shard work-stealing deques** instead of channels. Each worker
//!    owns a deque of `(config, store, bag)` id triples: it pushes and pops
//!    work at the *back* (LIFO, cache-warm), and an idle worker steals
//!    `⌈len/2⌉` (capped at [`STEAL_BATCH`]) from the *front* of a victim's
//!    deque — one `drain` buffer operation, not a per-config send. There is
//!    no ownership routing: whichever worker interns a fresh configuration
//!    queues it locally, and load balance emerges from stealing.
//!
//! # Expansion pipeline
//!
//! A worker expands one configuration in three phases: (1) under one short
//! interner lock, snapshot the pending-async ids, the (cheap, sub-part
//! shared) global store, and any uncached [`PendingAsync`] values — each
//! worker memoizes resolved pending asyncs by id, which is sound because
//! arenas are append-only; (2) with **no locks held**, evaluate every
//! distinct pending async, consulting the shared footprint memo
//! ([`crate::memo`]) exactly like the sequential path; (3) under a second
//! interner lock, intern all successor stores/bags/configs as small diffs
//! against the parent's ids. Fresh successors are pushed onto the worker's
//! own deque in one batch.
//!
//! # Termination
//!
//! A shared in-flight counter tracks configurations that are queued or
//! being expanded: it is incremented for every fresh successor *before* the
//! parent's own decrement, so the counter can only reach zero when no work
//! exists anywhere — at which point every spinning worker observes the zero
//! and exits. Stolen batches move between locked deques and are never
//! uncounted in transit.
//!
//! # Cancellation and budget
//!
//! A shared cancellation flag stops all workers early on the first kernel
//! error, on budget exhaustion, or — when
//! [`ParallelExplorer::stop_on_first_failure`] is set — on the first gate
//! violation. The budget is checked against the shared interner's exact
//! config count at each fresh intern (seeds exempt), mirroring the
//! sequential explorer; exhaustion reports the post-join visited total via
//! [`ExploreError::BudgetExceeded`]. Per-shard counters survive every error
//! path: [`ParallelExplorer::explore_with_stats`] aggregates them after the
//! join even when the run is cut short mid-steal.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::memo::{build_plans, MemoPlan, Resolved, SharedMemo, View};
use crate::stats::{ExploreStats, ShardStats};

use inseq_obs::HitMissSnapshot;

use inseq_kernel::{
    ActionName, BagId, Config, ExploreError, GlobalStore, Interner, PaId, PendingAsync, Program,
    StoreId, Summary, DEFAULT_CONFIG_BUDGET,
};

/// Upper bound on the configurations moved by one steal. Half the victim's
/// deque is taken up to this cap: enough to amortize the steal far beyond
/// its two lock acquisitions, small enough that a thief cannot starve a
/// victim that is about to pop its own back end.
const STEAL_BATCH: usize = 64;

/// A unit of work: an interned configuration and its parts. Ids are global
/// (one shared interner), so handing this to another worker is a copy of
/// three `u32`s — no materialization, no re-interning.
type WorkItem = (StoreId, BagId);

/// A parallel exhaustive explorer for a [`Program`].
///
/// Mirrors the sequential [`inseq_kernel::Explorer`] API: construct with
/// [`ParallelExplorer::new`], optionally configure, then call
/// [`explore`](ParallelExplorer::explore) or
/// [`summarize`](ParallelExplorer::summarize).
#[derive(Debug)]
pub struct ParallelExplorer<'p> {
    program: &'p Program,
    workers: usize,
    budget: usize,
    stop_on_failure: bool,
}

impl<'p> ParallelExplorer<'p> {
    /// Creates a parallel explorer with one worker per available hardware
    /// thread and the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        ParallelExplorer {
            program,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            budget: DEFAULT_CONFIG_BUDGET,
            stop_on_failure: false,
        }
    }

    /// Sets the number of worker threads (and therefore deques). Clamped to
    /// at least one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the maximum number of distinct configurations to visit before
    /// giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// When enabled, the first gate violation cancels all workers instead of
    /// letting the exploration run to completion. The verdict (`good =
    /// false`) is unaffected, but the reachable set in the result is then a
    /// *subset* of the true one — leave this off (the default) when the full
    /// set matters, e.g. for equivalence with the sequential explorer.
    #[must_use]
    pub fn stop_on_first_failure(mut self, stop: bool) -> Self {
        self.stop_on_failure = stop;
        self
    }

    /// The configured number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Explores all configurations reachable from the given initial
    /// configurations, in parallel.
    ///
    /// The resulting reachable set, failure verdict, deadlock set, terminal
    /// stores, and edge count are identical to those of
    /// [`inseq_kernel::Explorer::explore`] on the same input.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the visited set
    /// exceeds the budget and [`ExploreError::Kernel`] when a pending async
    /// refers to an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<ParallelExploration, ExploreError> {
        self.explore_with_stats(initial).0
    }

    /// Like [`explore`](Self::explore), but also returns the aggregated
    /// per-shard counters even when the exploration fails: on
    /// `BudgetExceeded` (or any other error) the workers' outputs are still
    /// joined and merged, so steal/expansion accounting is never lost to
    /// the error path.
    pub fn explore_with_stats(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> (Result<ParallelExploration, ExploreError>, ExploreStats) {
        // Force one-time action setup (e.g. compiling to bytecode) before
        // spawning workers, so they never race on first-eval compilation.
        self.program.prepare_actions();
        let n = self.workers;

        // Seeds are interned up front by the calling thread — exempt from
        // the budget check, like the sequential explorer's — and dealt
        // round-robin across the deques.
        let mut interner = Interner::new();
        let mut seed_items: Vec<WorkItem> = Vec::new();
        let mut seed_hits = 0u64;
        for config in initial {
            let (id, fresh) = interner.intern_config(&config);
            if fresh {
                seed_items.push(interner.config_parts(id));
            } else {
                seed_hits += 1;
            }
        }
        if seed_items.is_empty() {
            let stats = ExploreStats {
                shards: vec![ShardStats::default(); n],
                memo: HitMissSnapshot::default(),
            };
            return (
                Ok(ParallelExploration::empty(interner, stats.clone())),
                stats,
            );
        }
        let seed_count = seed_items.len();

        let deques: Vec<Deque> = (0..n).map(|_| Deque::default()).collect();
        for (k, item) in seed_items.into_iter().enumerate() {
            deques[k % n]
                .queue
                .lock()
                .expect("deque poisoned")
                .push_back(item);
        }
        let shared = Shared {
            interner: Mutex::new(interner),
            deques,
            in_flight: AtomicUsize::new(seed_count),
            cancelled: AtomicBool::new(false),
            error: Mutex::new(None),
        };
        let plans = build_plans(self.program);
        let memo = SharedMemo::for_plans(plans.is_empty());

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|me| {
                    let worker = Worker {
                        me,
                        program: self.program,
                        budget: self.budget,
                        stop_on_failure: self.stop_on_failure,
                        shared: &shared,
                        plans: &plans,
                        memo: memo.as_ref(),
                        pa_cache: Vec::new(),
                        pa_buf: Vec::new(),
                        outcomes: Vec::new(),
                        fresh: Vec::new(),
                        out: WorkerOutput::default(),
                    };
                    scope.spawn(move || worker.run())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exploration worker panicked"))
                .collect()
        });

        // Post-join aggregation: per-shard counters survive every exit path
        // (normal, cancelled, budget-exceeded mid-steal). Work a shard lost
        // to thieves is counted at its deque, not in the thieves' outputs.
        let mut stats = ExploreStats {
            shards: Vec::with_capacity(n),
            memo: memo
                .as_ref()
                .map_or_else(HitMissSnapshot::default, SharedMemo::snapshot),
        };
        let mut failures = Vec::new();
        let mut deadlocks = Vec::new();
        let mut terminal = BTreeSet::new();
        let mut edges = 0usize;
        for (i, out) in outputs.into_iter().enumerate() {
            let mut shard = out.stats;
            shard.migrated_out = shared.deques[i].stolen_from.load(Ordering::Relaxed);
            if i == 0 {
                // Seed interning ran on the calling thread; credit it to
                // shard 0 so summed misses equal the visited-set size.
                shard.intern = shard
                    .intern
                    .merged(HitMissSnapshot::new(seed_hits, seed_count as u64));
            }
            stats.shards.push(shard);
            failures.extend(out.failures);
            deadlocks.extend(out.deadlocks);
            terminal.extend(out.terminal);
            edges += out.edges;
        }

        let interner = shared
            .interner
            .into_inner()
            .expect("interner lock poisoned");
        if let Some(mut err) = shared.error.into_inner().expect("error slot poisoned") {
            if let ExploreError::BudgetExceeded { visited, .. } = &mut err {
                // Racing workers may have interned past the recording
                // worker's observation; report the post-join exact total.
                *visited = interner.config_count();
            }
            return (Err(err), stats);
        }
        (
            Ok(ParallelExploration {
                interner,
                failures,
                deadlocks,
                terminal,
                edges,
                stats: stats.clone(),
            }),
            stats,
        )
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration, like [`inseq_kernel::Explorer::summarize`].
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        Ok(self.explore([initial])?.summary())
    }
}

/// One worker's work-stealing deque. The owner pushes and pops at the back
/// under the mutex; thieves drain a batch from the front under the same
/// mutex, so an item is delivered to exactly one worker.
#[derive(Debug, Default)]
struct Deque {
    queue: Mutex<VecDeque<WorkItem>>,
    /// Configurations stolen *from* this deque over the whole run — the
    /// deque engine's migration counter, read after the join.
    stolen_from: AtomicU64,
}

struct Shared {
    /// The shared hash-consing arenas: the visited set *is* the config
    /// arena, and ids are global, so cross-worker handoff never
    /// materializes a configuration.
    interner: Mutex<Interner>,
    deques: Vec<Deque>,
    /// Configurations queued or currently being expanded. Zero is
    /// conclusive: fresh successors are counted before their parent's
    /// decrement, and steals move items between locked deques.
    in_flight: AtomicUsize,
    cancelled: AtomicBool,
    /// First error observed by any worker.
    error: Mutex<Option<ExploreError>>,
}

/// Per-worker results, moved out of the worker when it exits.
#[derive(Debug, Default)]
struct WorkerOutput {
    failures: Vec<(Config, PendingAsync, String)>,
    deadlocks: Vec<Config>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ShardStats,
}

struct Worker<'p, 'sh> {
    me: usize,
    program: &'p Program,
    budget: usize,
    stop_on_failure: bool,
    shared: &'sh Shared,
    /// Per-action memoization plans (absent for opaque actions).
    plans: &'sh HashMap<ActionName, MemoPlan>,
    /// The shared evaluation memo; `None` when no action has a footprint.
    memo: Option<&'sh SharedMemo>,
    /// Pending asyncs resolved from the shared arenas, cached by id —
    /// sound because the arenas are append-only, and it keeps repeat
    /// expansions of the same async off the interner lock.
    pa_cache: Vec<Option<PendingAsync>>,
    /// Reusable buffer of the distinct pending-async ids of the
    /// configuration under expansion.
    pa_buf: Vec<PaId>,
    /// Reusable buffer of evaluated outcomes, applied under the intern
    /// lock in phase 3.
    outcomes: Vec<(PaId, Resolved)>,
    /// Fresh successors of the current expansion, queued in one batch.
    fresh: Vec<WorkItem>,
    out: WorkerOutput,
}

/// A non-failure reason to abandon the current configuration mid-step.
enum StepFault {
    Kernel(ExploreError),
    StopOnFailure,
}

impl Worker<'_, '_> {
    fn run(mut self) -> WorkerOutput {
        loop {
            if self.shared.cancelled.load(Ordering::Acquire) {
                break;
            }
            match self.pop_or_steal() {
                Some(item) => {
                    self.expand(item);
                    // The parent is done only now; its fresh successors were
                    // counted inside `expand`, so a zero stays conclusive.
                    self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if self.shared.in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Another worker holds counted work; let it run (this
                    // matters on fewer cores than workers).
                    std::thread::yield_now();
                }
            }
        }
        self.out
    }

    /// Pops from the back of the own deque, or steals a batch from the
    /// front of the first non-empty victim. Returns `None` only when every
    /// deque was observed empty.
    fn pop_or_steal(&mut self) -> Option<WorkItem> {
        if let Some(item) = self.shared.deques[self.me]
            .queue
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(item);
        }
        let n = self.shared.deques.len();
        for k in 1..n {
            let victim = &self.shared.deques[(self.me + k) % n];
            let mut stolen: Vec<WorkItem> = {
                let mut q = victim.queue.lock().expect("deque poisoned");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                let take = len.div_ceil(2).min(STEAL_BATCH);
                victim.stolen_from.fetch_add(take as u64, Ordering::Relaxed);
                q.drain(..take).collect()
            };
            self.out.stats.steals += 1;
            self.out.stats.stolen_in += stolen.len() as u64;
            let first = stolen.pop();
            if !stolen.is_empty() {
                self.shared.deques[self.me]
                    .queue
                    .lock()
                    .expect("deque poisoned")
                    .extend(stolen);
            }
            return first;
        }
        None
    }

    /// Expands one configuration: snapshot (locked) → evaluate (unlocked) →
    /// intern successors (locked) → queue fresh work.
    fn expand(&mut self, (sid, bagid): WorkItem) {
        self.out.stats.expanded += 1;

        // Phase 1: snapshot everything evaluation needs under one short
        // lock. The store clone is cheap (slots are shared sub-parts); the
        // pending asyncs come from the per-worker id cache.
        let store: GlobalStore = {
            let g = self.shared.interner.lock().expect("interner poisoned");
            self.pa_buf.clear();
            self.pa_buf
                .extend(g.bag_entries(bagid).iter().map(|&(p, _)| p));
            for &paid in &self.pa_buf {
                let at = paid.index();
                if self.pa_cache.len() <= at {
                    self.pa_cache.resize(at + 1, None);
                }
                if self.pa_cache[at].is_none() {
                    self.pa_cache[at] = Some(g.pa(paid).clone());
                }
            }
            if self.pa_buf.is_empty() {
                self.out.terminal.insert(g.store(sid).clone());
            }
            g.store(sid).clone()
        };

        // Phase 2: evaluate every distinct pending async with no locks held
        // (the footprint memo takes its own short lock per probe/insert).
        let mut fault = None;
        self.outcomes.clear();
        for k in 0..self.pa_buf.len() {
            let paid = self.pa_buf[k];
            let pa = self.pa_cache[paid.index()]
                .as_ref()
                .expect("pa cached in phase 1");
            let plan = self.plans.get(&pa.action);
            let active = match (self.memo, plan) {
                (Some(memo), Some(plan)) if memo.enabled.load(Ordering::Relaxed) => {
                    Some((memo, plan))
                }
                _ => None,
            };
            let outcome = if let Some((memo, plan)) = active {
                if let Some(cached) = memo.probe(pa, plan, &store) {
                    Resolved::Cached(cached)
                } else {
                    match self.program.eval_pa(&store, pa) {
                        Ok(out) => {
                            memo.publish(pa, plan, &store, &out);
                            Resolved::Owned(out)
                        }
                        Err(e) => {
                            fault = Some(StepFault::Kernel(e.into()));
                            break;
                        }
                    }
                }
            } else {
                match self.program.eval_pa(&store, pa) {
                    Ok(out) => Resolved::Owned(out),
                    Err(e) => {
                        fault = Some(StepFault::Kernel(e.into()));
                        break;
                    }
                }
            };
            self.outcomes.push((paid, outcome));
        }

        // Phase 3: intern all successors under a second lock, as small
        // diffs against the parent's interned parts.
        let mut progressed = self.pa_buf.is_empty();
        if fault.is_none() {
            let outcomes = std::mem::take(&mut self.outcomes);
            {
                let mut g = self.shared.interner.lock().expect("interner poisoned");
                'apply: for (paid, outcome) in &outcomes {
                    let paid = *paid;
                    let plan = self
                        .plans
                        .get(&self.pa_cache[paid.index()].as_ref().unwrap().action);
                    // The footprint's write set bounds which slots a
                    // successor store can differ in, letting the interner
                    // skip re-hashing the rest.
                    let fp_writes: Option<&[usize]> = plan.map(|p| p.writes.as_slice());
                    match outcome.view() {
                        View::Failure(reason) => {
                            progressed = true;
                            let witness = Config::new(g.store(sid).clone(), g.resolve_bag(bagid));
                            self.out.failures.push((
                                witness,
                                self.pa_cache[paid.index()].clone().expect("pa cached"),
                                reason.to_owned(),
                            ));
                            if self.stop_on_failure {
                                fault = Some(StepFault::StopOnFailure);
                                break 'apply;
                            }
                        }
                        View::Full(transitions) => {
                            if !transitions.is_empty() {
                                progressed = true;
                            }
                            for t in transitions {
                                self.out.edges += 1;
                                let next_sid = g.intern_store_diff(sid, &t.globals, fp_writes);
                                let next_bag = g.bag_after(bagid, paid, &t.created);
                                if let Err(f) = self.intern_next(&mut g, next_sid, next_bag) {
                                    fault = Some(f);
                                    break 'apply;
                                }
                            }
                        }
                        View::Delta(transitions) => {
                            if !transitions.is_empty() {
                                progressed = true;
                            }
                            for t in transitions {
                                self.out.edges += 1;
                                // Replay the memoized write-delta; by the
                                // footprint contract the result is exactly
                                // what `eval` would have produced here.
                                let next_sid = g.intern_store_writes(sid, &t.writes);
                                let next_bag = g.bag_after(bagid, paid, &t.created);
                                if let Err(f) = self.intern_next(&mut g, next_sid, next_bag) {
                                    fault = Some(f);
                                    break 'apply;
                                }
                            }
                        }
                    }
                }
                if fault.is_none() && !progressed {
                    let witness = Config::new(g.store(sid).clone(), g.resolve_bag(bagid));
                    self.out.deadlocks.push(witness);
                }
            }
            self.outcomes = outcomes;
            self.outcomes.clear();
        }

        match fault {
            None => {
                // Count the fresh successors in-flight *before* queueing
                // them (and before the caller decrements the parent), then
                // hand them to the own deque in one batch.
                if !self.fresh.is_empty() {
                    self.shared
                        .in_flight
                        .fetch_add(self.fresh.len(), Ordering::AcqRel);
                    self.shared.deques[self.me]
                        .queue
                        .lock()
                        .expect("deque poisoned")
                        .extend(self.fresh.drain(..));
                }
            }
            Some(StepFault::Kernel(err)) => {
                self.fresh.clear();
                self.fail(err);
            }
            Some(StepFault::StopOnFailure) => {
                self.fresh.clear();
                self.cancel();
            }
        }
    }

    /// Interns one successor config from already-interned parts; fresh ones
    /// are budget-checked against the exact shared count and staged for the
    /// own deque. Dedup happens *here*, before any handoff — a duplicate
    /// costs one id-pair hash, never a materialization.
    fn intern_next(
        &mut self,
        g: &mut Interner,
        sid: StoreId,
        bagid: BagId,
    ) -> Result<(), StepFault> {
        let (_, fresh) = g.intern_config_parts(sid, bagid);
        if fresh {
            self.out.stats.intern.misses += 1;
            if g.config_count() > self.budget {
                return Err(StepFault::Kernel(ExploreError::BudgetExceeded {
                    limit: self.budget,
                    visited: g.config_count(),
                    trace: None,
                }));
            }
            self.fresh.push((sid, bagid));
        } else {
            self.out.stats.intern.hits += 1;
        }
        Ok(())
    }

    fn fail(&mut self, err: ExploreError) {
        let mut slot = self.shared.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.cancel();
    }

    fn cancel(&mut self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }
}

/// The result of a parallel exploration: the shared arenas (from which the
/// reachable set is resolved on demand) plus all gate violations and
/// deadlocks encountered.
///
/// Unlike [`inseq_kernel::Exploration`] this does not record the transition
/// graph — witness reconstruction stays with the sequential explorer — and
/// it does not materialize the visited set at all:
/// [`configs`](ParallelExploration::configs) resolves configurations lazily
/// from the arenas, so a multi-million-config run pays for materialization
/// only if someone iterates it.
#[derive(Debug)]
pub struct ParallelExploration {
    interner: Interner,
    failures: Vec<(Config, PendingAsync, String)>,
    deadlocks: Vec<Config>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ExploreStats,
}

impl ParallelExploration {
    fn empty(interner: Interner, stats: ExploreStats) -> Self {
        ParallelExploration {
            interner,
            failures: Vec::new(),
            deadlocks: Vec::new(),
            terminal: BTreeSet::new(),
            edges: 0,
            stats,
        }
    }

    /// Observability counters of this exploration: per-shard interner
    /// hits/misses, expansion occupancy, steal traffic, and footprint-memo
    /// effectiveness.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.interner.config_count()
    }

    /// Number of transitions in the explored graph (counted, not stored).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterates over all reachable configurations, resolving each from the
    /// shared arenas on demand. The order is not meaningful; compare as a
    /// set.
    pub fn configs(&self) -> impl Iterator<Item = Config> + '_ {
        self.interner
            .config_ids()
            .map(|id| self.interner.resolve_config(id))
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found, in the same
    /// format as [`inseq_kernel::Exploration::failure_reports`].
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|(config, fired, reason)| {
                format!("executing {fired} from {config} fails: {reason}")
            })
            .collect()
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure.
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter()
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.terminal.iter()
    }

    /// The program summary over the explored set: `good` iff no gate
    /// violation was found, plus the set of terminating stores.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            good: !self.has_failure(),
            terminal: self.terminal.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::{counter_program, failing_program};
    use inseq_kernel::Explorer;

    fn reachable_set(program: &Program) -> BTreeSet<Config> {
        let init = program.initial_config(vec![]).unwrap();
        Explorer::new(program)
            .explore([init])
            .unwrap()
            .configs()
            .cloned()
            .collect()
    }

    #[test]
    fn matches_sequential_on_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4, 8] {
            let exp = ParallelExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let parallel: BTreeSet<Config> = exp.configs().collect();
            assert_eq!(parallel, reachable_set(&p), "workers = {workers}");
            assert!(!exp.has_failure());
            assert!(!exp.has_deadlock());
        }
    }

    #[test]
    fn summary_matches_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).summarize(init.clone()).unwrap();
        for workers in [1, 3] {
            let par = ParallelExplorer::new(&p)
                .with_workers(workers)
                .summarize(init.clone())
                .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn edge_counts_match_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).explore([init.clone()]).unwrap();
        let par = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert_eq!(par.edge_count(), seq.edge_count());
        assert_eq!(par.config_count(), seq.config_count());
    }

    #[test]
    fn failures_are_found() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
        assert!(exp
            .failure_reports()
            .iter()
            .any(|r| r.contains("assert false")));
        assert!(!exp.summary().good);
    }

    #[test]
    fn stop_on_first_failure_cancels_early() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .stop_on_first_failure(true)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
    }

    #[test]
    fn budget_is_enforced_and_reports_exhaustion_point() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = ParallelExplorer::new(&p)
            .with_workers(2)
            .with_budget(1)
            .explore([init])
            .unwrap_err();
        assert!(matches!(
            err,
            ExploreError::BudgetExceeded { limit: 1, visited, .. } if visited > 1
        ));
    }

    #[test]
    fn stats_account_for_all_interned_configs() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        let stats = exp.stats();
        assert_eq!(stats.shards.len(), 2);
        // Every distinct config is exactly one interner miss, credited to
        // the worker that interned it first (seeds go to shard 0).
        assert_eq!(stats.intern().misses as usize, exp.config_count());
        // Every config is expanded exactly once — no item is lost or
        // duplicated by stealing.
        assert_eq!(stats.expanded() as usize, exp.config_count());
        // Steal conservation: everything stolen in was stolen from some
        // deque, and the deque engine never re-interns migrated work.
        assert_eq!(stats.stolen(), stats.migrated());
        assert_eq!(stats.migration_dups(), 0);
        assert!(stats.migration_dups() <= stats.migrated());
        for shard in &stats.shards {
            assert_eq!(shard.received, 0);
            assert_eq!(shard.received_dups, 0);
        }
    }

    #[test]
    fn explore_with_stats_aggregates_on_budget_error() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let (result, stats) = ParallelExplorer::new(&p)
            .with_workers(4)
            .with_budget(2)
            .explore_with_stats([init]);
        let err = result.unwrap_err();
        assert!(matches!(err, ExploreError::BudgetExceeded { limit: 2, .. }));
        // The error path still joins all workers and aggregates their
        // counters: expansions happened, and the steal/migration invariant
        // holds even for a run cut short mid-flight.
        assert_eq!(stats.shards.len(), 4);
        assert!(stats.expanded() >= 1);
        assert!(stats.migration_dups() <= stats.migrated());
        assert_eq!(stats.stolen(), stats.migrated());
    }

    #[test]
    fn empty_initial_set_is_trivially_good() {
        let p = counter_program();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([])
            .unwrap();
        assert_eq!(exp.config_count(), 0);
        assert!(exp.summary().good);
    }

    #[test]
    fn deadlocks_match_sequential() {
        use inseq_kernel::{
            ActionOutcome, GlobalSchema, Multiset, NativeAction, Program as KProgram, Transition,
            Value,
        };
        let mut b = KProgram::builder(GlobalSchema::default());
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::new(
                    g.clone(),
                    Multiset::singleton(PendingAsync::new("Stuck", vec![])),
                )])
            }),
        );
        b.action(
            "Stuck",
            NativeAction::new("Stuck", 0, |_: &GlobalStore, _: &[Value]| {
                ActionOutcome::blocked()
            }),
        );
        let p = b.build().unwrap();
        let init = p.initial_config(vec![]).unwrap();
        let exp = ParallelExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_deadlock());
        assert_eq!(exp.deadlocked_configs().count(), 1);
    }
}
