//! Deliberate fault injection for differential-testing harnesses.
//!
//! Only compiled under the `fault-injection` feature, mirroring
//! `inseq_lang::fault`. The single fault on offer makes every [`Reducer`]
//! in the process **unsound**: [`Reducer::ample`] prunes on the first
//! enabled candidate without any commutation or failure check, exactly as
//! if the ample contract had been implemented wrong. The reduced-vs-
//! unreduced fuzz oracle must then catch the divergence on a program whose
//! verdict depends on a pruned interleaving — which is the end-to-end
//! proof that the oracle has teeth.
//!
//! The switch is process-global so the oracle's own `Reducer` (built deep
//! inside `run_oracle`, out of the test's reach) picks the fault up; tests
//! that set it must reset it before asserting on unrelated programs.
//!
//! [`Reducer`]: crate::Reducer
//! [`Reducer::ample`]: inseq_kernel::ReductionPolicy::ample

use std::sync::atomic::{AtomicBool, Ordering};

static UNSOUND_PRUNE: AtomicBool = AtomicBool::new(false);

/// Enables or disables the unsound-pruning fault for every [`Reducer`]
/// in the process (`false`, the initial value, restores soundness).
///
/// [`Reducer`]: crate::Reducer
pub fn set_unsound_prune(enabled: bool) {
    UNSOUND_PRUNE.store(enabled, Ordering::SeqCst);
}

/// Whether the unsound-pruning fault is currently enabled.
#[must_use]
pub fn unsound_prune_enabled() -> bool {
    UNSOUND_PRUNE.load(Ordering::SeqCst)
}
