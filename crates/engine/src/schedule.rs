//! Layer 2: a job-DAG scheduler for independent proof obligations.
//!
//! Checking one inductive-sequentialization application decomposes into
//! many independent obligations: the Fig. 3 conditions (I1)(I2)(I3), the
//! per-action mover queries behind (LM), the co-enabledness scans behind
//! (CO), and — across a whole benchmark table — entirely separate protocol
//! cases. The [`Engine`] runs such obligations as a dependency-ordered job
//! DAG on a fixed pool of threads and collects per-job wall-clock and
//! configuration-count statistics into an [`EngineReport`].
//!
//! Jobs are closures borrowing from the caller (`thread::scope` underneath),
//! so obligation code can capture the program, universe, and checker state
//! by reference without any `Arc` ceremony.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A fixed-size thread pool executing job DAGs.
///
/// Clones share the engine's shutdown state: once any clone calls
/// [`Engine::shutdown`], every clone rejects new DAGs. This is what a
/// persistent server wants — one logical engine handed to many request
/// handlers, drained exactly once on exit.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    lifecycle: Arc<Lifecycle>,
}

/// Shared drain/shutdown bookkeeping (see [`Engine::shutdown`]).
#[derive(Debug, Default)]
struct Lifecycle {
    state: Mutex<LifecycleState>,
    drained: Condvar,
}

#[derive(Debug, Default)]
struct LifecycleState {
    draining: bool,
    in_flight: usize,
}

/// Decrements `in_flight` even if the DAG panics mid-run, so a shutdown
/// waiting on the drain condvar can never hang on a lost count.
struct InFlightGuard<'a>(&'a Lifecycle);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.0.state.lock().expect("engine lifecycle poisoned");
        s.in_flight -= 1;
        if s.in_flight == 0 {
            self.0.drained.notify_all();
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an engine with one thread per available hardware thread.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            lifecycle: Arc::new(Lifecycle::default()),
        }
    }

    /// Sets the number of pool threads. Clamped to at least one.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured number of pool threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Marks the engine as shutting down and blocks until every in-flight
    /// DAG has finished.
    ///
    /// After this returns, [`Engine::run`] (on this engine or any clone)
    /// rejects new DAGs without executing any job: every job is reported as
    /// [`JobStatus::Skipped`] with an "engine shut down" detail. Jobs already
    /// running are *not* interrupted — they finish normally, including the
    /// panic-isolation path (a job that panics during the drain still counts
    /// as finished, so shutdown cannot hang on it). Idempotent: concurrent
    /// and repeated calls all block until the same drain completes.
    pub fn shutdown(&self) {
        let mut s = self
            .lifecycle
            .state
            .lock()
            .expect("engine lifecycle poisoned");
        s.draining = true;
        while s.in_flight > 0 {
            s = self
                .lifecycle
                .drained
                .wait(s)
                .expect("engine lifecycle poisoned");
        }
    }

    /// `true` once [`Engine::shutdown`] has been called (on this engine or
    /// any clone). New DAGs are rejected from that point on.
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.lifecycle
            .state
            .lock()
            .expect("engine lifecycle poisoned")
            .draining
    }

    /// Runs a job DAG to completion and reports per-job statistics.
    ///
    /// Dependencies must point at earlier indices in `jobs` (the natural
    /// order in which a DAG is assembled), which makes cycles impossible by
    /// construction. A job whose dependency fails — or is itself skipped —
    /// is not run and is reported as [`JobStatus::Skipped`].
    ///
    /// A job closure that panics does **not** take the pool down: the panic
    /// is caught, the job is reported as [`JobStatus::Failed`] with the
    /// panic payload in its detail, its dependents are skipped like those of
    /// any other failure, and sibling jobs keep running.
    ///
    /// After [`Engine::shutdown`], the DAG is rejected without executing
    /// anything: every job comes back [`JobStatus::Skipped`] with an
    /// "engine shut down" detail.
    ///
    /// # Panics
    ///
    /// Panics if a job lists a dependency index that is not smaller than its
    /// own index.
    pub fn run(&self, jobs: Vec<Job<'_>>) -> EngineReport {
        let total = jobs.len();
        let started = Instant::now();
        let _in_flight = {
            let mut s = self
                .lifecycle
                .state
                .lock()
                .expect("engine lifecycle poisoned");
            if s.draining {
                // Reject without executing anything: report every job as
                // skipped so `all_passed()` cannot claim success for work
                // that never ran.
                return EngineReport {
                    jobs: jobs
                        .into_iter()
                        .map(|job| JobStats {
                            name: job.name,
                            status: JobStatus::Skipped,
                            detail: "engine shut down; job rejected".to_owned(),
                            configs_visited: 0,
                            wall: Duration::ZERO,
                        })
                        .collect(),
                    wall: started.elapsed(),
                    threads: self.threads,
                };
            }
            s.in_flight += 1;
            InFlightGuard(&self.lifecycle)
        };
        if total == 0 {
            return EngineReport {
                jobs: Vec::new(),
                wall: started.elapsed(),
                threads: self.threads,
            };
        }

        let mut tasks: Vec<Option<Box<RunFn<'_>>>> = Vec::with_capacity(total);
        let mut names: Vec<String> = Vec::with_capacity(total);
        let mut remaining: Vec<usize> = Vec::with_capacity(total);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut ready: VecDeque<usize> = VecDeque::new();
        for (id, job) in jobs.into_iter().enumerate() {
            for &dep in &job.deps {
                assert!(
                    dep < id,
                    "job `{}` depends on #{dep}, which is not an earlier job",
                    job.name
                );
                dependents[dep].push(id);
            }
            if job.deps.is_empty() {
                ready.push_back(id);
            }
            remaining.push(job.deps.len());
            names.push(job.name);
            tasks.push(Some(job.run));
        }

        let state = Mutex::new(SchedState {
            tasks,
            remaining,
            ready,
            stats: (0..total).map(|_| None).collect(),
            poisoned: vec![false; total],
            unfinished: total,
        });
        let wake = Condvar::new();
        let workers = self.threads.min(total);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| run_worker(&state, &wake, &dependents, &names));
            }
        });

        let stats = state
            .into_inner()
            .expect("scheduler state poisoned")
            .stats
            .into_iter()
            .map(|s| s.expect("scheduler finished with an unexecuted job"))
            .collect();
        EngineReport {
            jobs: stats,
            wall: started.elapsed(),
            threads: self.threads,
        }
    }
}

type RunFn<'a> = dyn FnOnce() -> JobResult + Send + 'a;

struct SchedState<'a> {
    tasks: Vec<Option<Box<RunFn<'a>>>>,
    remaining: Vec<usize>,
    ready: VecDeque<usize>,
    stats: Vec<Option<JobStats>>,
    /// Whether a (transitive) dependency failed or was skipped.
    poisoned: Vec<bool>,
    unfinished: usize,
}

fn run_worker(
    state: &Mutex<SchedState<'_>>,
    wake: &Condvar,
    dependents: &[Vec<usize>],
    names: &[String],
) {
    loop {
        let mut guard = state.lock().expect("scheduler state poisoned");
        let id = loop {
            if guard.unfinished == 0 {
                return;
            }
            if let Some(id) = guard.ready.pop_front() {
                break id;
            }
            guard = wake.wait(guard).expect("scheduler state poisoned");
        };
        let task = guard.tasks[id].take().expect("job executed twice");
        let skipped = guard.poisoned[id];
        drop(guard);

        let job_start = Instant::now();
        let (status, detail, configs_visited) = if skipped {
            (JobStatus::Skipped, "dependency failed".to_owned(), 0)
        } else {
            // A panicking obligation must not kill the pool: the unwinding
            // worker would never decrement `unfinished`, leaving its
            // siblings blocked on the condvar and burying the real panic
            // under a scope-join cascade. Catch it and report the job as
            // failed; the ordinary poison path then skips its dependents.
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(result) => {
                    let status = if result.passed {
                        JobStatus::Passed
                    } else {
                        JobStatus::Failed
                    };
                    (status, result.detail, result.configs_visited)
                }
                Err(payload) => (
                    JobStatus::Failed,
                    format!("panicked: {}", panic_message(payload.as_ref())),
                    0,
                ),
            }
        };
        let wall = job_start.elapsed();

        let mut guard = state.lock().expect("scheduler state poisoned");
        let poison = status != JobStatus::Passed;
        guard.stats[id] = Some(JobStats {
            name: names[id].clone(),
            status,
            detail,
            configs_visited,
            wall,
        });
        for &next in &dependents[id] {
            if poison {
                guard.poisoned[next] = true;
            }
            guard.remaining[next] -= 1;
            if guard.remaining[next] == 0 {
                guard.ready.push_back(next);
            }
        }
        guard.unfinished -= 1;
        drop(guard);
        wake.notify_all();
    }
}

/// The human-readable part of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers effectively all of them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// One schedulable obligation: a name, the indices of jobs it must run
/// after, and the closure doing the work.
pub struct Job<'a> {
    name: String,
    deps: Vec<usize>,
    run: Box<RunFn<'a>>,
}

impl fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

impl<'a> Job<'a> {
    /// Creates an independent job.
    #[must_use]
    pub fn new(name: impl Into<String>, run: impl FnOnce() -> JobResult + Send + 'a) -> Self {
        Job {
            name: name.into(),
            deps: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Declares that this job runs only after the job at `dep` (an index
    /// into the same `jobs` vector, which must be smaller than this job's
    /// own index) has passed.
    #[must_use]
    pub fn after(mut self, dep: usize) -> Self {
        self.deps.push(dep);
        self
    }
}

/// What a job closure reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Whether the obligation holds.
    pub passed: bool,
    /// A short human-readable outcome ("ok", or why it failed).
    pub detail: String,
    /// Configurations visited while discharging the obligation (zero when
    /// not applicable).
    pub configs_visited: usize,
}

impl JobResult {
    /// A passing result with no detail.
    #[must_use]
    pub fn pass() -> Self {
        JobResult {
            passed: true,
            detail: String::new(),
            configs_visited: 0,
        }
    }

    /// A failing result carrying the reason.
    #[must_use]
    pub fn fail(detail: impl Into<String>) -> Self {
        JobResult {
            passed: false,
            detail: detail.into(),
            configs_visited: 0,
        }
    }

    /// Converts a `Result`-shaped obligation outcome.
    #[must_use]
    pub fn from_check(outcome: Result<(), String>) -> Self {
        match outcome {
            Ok(()) => JobResult::pass(),
            Err(e) => JobResult::fail(e),
        }
    }

    /// Attaches a visited-configuration count.
    #[must_use]
    pub fn with_visited(mut self, configs: usize) -> Self {
        self.configs_visited = configs;
        self
    }

    /// Attaches or replaces the detail string.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }
}

/// How one job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The obligation holds.
    Passed,
    /// The obligation was checked and does not hold (or errored).
    Failed,
    /// Not run because a dependency did not pass.
    Skipped,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStatus::Passed => write!(f, "pass"),
            JobStatus::Failed => write!(f, "FAIL"),
            JobStatus::Skipped => write!(f, "skip"),
        }
    }
}

/// Statistics for one executed (or skipped) job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStats {
    /// The job's name.
    pub name: String,
    /// How it ended.
    pub status: JobStatus,
    /// Outcome detail (empty for quiet passes).
    pub detail: String,
    /// Configurations visited by the job.
    pub configs_visited: usize,
    /// Wall-clock time the job took.
    pub wall: Duration,
}

/// The structured result of running a job DAG: per-job statistics plus
/// end-to-end wall clock and pool size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Per-job statistics, in submission order.
    pub jobs: Vec<JobStats>,
    /// End-to-end wall clock for the whole DAG.
    pub wall: Duration,
    /// Number of pool threads the engine was configured with.
    pub threads: usize,
}

impl EngineReport {
    /// `true` iff every job passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.jobs.iter().all(|j| j.status == JobStatus::Passed)
    }

    /// The jobs that failed.
    pub fn failures(&self) -> impl Iterator<Item = &JobStats> {
        self.jobs.iter().filter(|j| j.status == JobStatus::Failed)
    }

    /// Total configurations visited across all jobs.
    #[must_use]
    pub fn configs_visited(&self) -> usize {
        self.jobs.iter().map(|j| j.configs_visited).sum()
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine report: {} job(s) on {} thread(s), {:.1} ms total",
            self.jobs.len(),
            self.threads,
            self.wall.as_secs_f64() * 1e3
        )?;
        for job in &self.jobs {
            write!(
                f,
                "  [{}] {:<28} {:>9.2} ms",
                job.status,
                job.name,
                job.wall.as_secs_f64() * 1e3
            )?;
            if job.configs_visited > 0 {
                write!(f, "  {:>8} configs", job.configs_visited)?;
            }
            if !job.detail.is_empty() {
                write!(f, "  — {}", job.detail)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_independent_jobs() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..8)
            .map(|i| {
                Job::new(format!("job-{i}"), || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    JobResult::pass().with_visited(10)
                })
            })
            .collect();
        let report = Engine::new().with_threads(4).run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert!(report.all_passed());
        assert_eq!(report.configs_visited(), 80);
        assert_eq!(report.jobs.len(), 8);
    }

    #[test]
    fn dependencies_order_execution() {
        let order = Mutex::new(Vec::new());
        let jobs = vec![
            Job::new("first", || {
                order.lock().unwrap().push("first");
                JobResult::pass()
            }),
            Job::new("second", || {
                order.lock().unwrap().push("second");
                JobResult::pass()
            })
            .after(0),
        ];
        Engine::new().with_threads(4).run(jobs);
        assert_eq!(*order.lock().unwrap(), vec!["first", "second"]);
    }

    #[test]
    fn failed_dependency_skips_dependents() {
        let ran = AtomicUsize::new(0);
        let jobs = vec![
            Job::new("explodes", || JobResult::fail("boom")),
            Job::new("downstream", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            })
            .after(0),
            Job::new("independent", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            }),
        ];
        let report = Engine::new().with_threads(2).run(jobs);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            1,
            "only the independent job runs"
        );
        assert!(!report.all_passed());
        assert_eq!(report.jobs[0].status, JobStatus::Failed);
        assert_eq!(report.jobs[1].status, JobStatus::Skipped);
        assert_eq!(report.jobs[2].status, JobStatus::Passed);
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn skip_cascades_through_chains() {
        let jobs = vec![
            Job::new("a", || JobResult::fail("no")),
            Job::new("b", JobResult::pass).after(0),
            Job::new("c", JobResult::pass).after(1),
        ];
        let report = Engine::new().with_threads(1).run(jobs);
        assert_eq!(report.jobs[1].status, JobStatus::Skipped);
        assert_eq!(report.jobs[2].status, JobStatus::Skipped);
    }

    #[test]
    fn panicking_job_fails_without_killing_the_pool() {
        let ran = AtomicUsize::new(0);
        let jobs = vec![
            Job::new("panics", || panic!("witness the payload")),
            Job::new("downstream", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            })
            .after(0),
            Job::new("sibling-1", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            }),
            Job::new("sibling-2", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            }),
        ];
        let report = Engine::new().with_threads(2).run(jobs);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "both siblings run, the dependent does not"
        );
        assert_eq!(report.jobs[0].status, JobStatus::Failed);
        assert!(
            report.jobs[0].detail.contains("panicked")
                && report.jobs[0].detail.contains("witness the payload"),
            "panic payload surfaces in the detail: {}",
            report.jobs[0].detail
        );
        assert_eq!(report.jobs[1].status, JobStatus::Skipped);
        assert_eq!(report.jobs[2].status, JobStatus::Passed);
        assert_eq!(report.jobs[3].status, JobStatus::Passed);
    }

    #[test]
    fn formatted_panic_payloads_are_reported() {
        let jobs = vec![Job::new("fmt-panic", || panic!("bad index {}", 7))];
        let report = Engine::new().with_threads(1).run(jobs);
        assert_eq!(report.jobs[0].status, JobStatus::Failed);
        assert!(report.jobs[0].detail.contains("bad index 7"));
    }

    #[test]
    fn empty_dag_is_fine() {
        let report = Engine::new().run(Vec::new());
        assert!(report.all_passed());
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn report_displays_every_job() {
        let jobs = vec![
            Job::new("alpha", || JobResult::pass().with_visited(42)),
            Job::new("beta", || JobResult::fail("broken invariant")),
        ];
        let report = Engine::new().with_threads(2).run(jobs);
        let text = report.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("42 configs"));
        assert!(text.contains("broken invariant"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    #[should_panic(expected = "not an earlier job")]
    fn forward_dependency_panics() {
        let jobs = vec![Job::new("a", JobResult::pass).after(3)];
        Engine::new().run(jobs);
    }

    #[test]
    fn shutdown_rejects_new_dags_without_running_them() {
        let engine = Engine::new().with_threads(2);
        assert!(!engine.is_shut_down());
        engine.shutdown();
        assert!(engine.is_shut_down());
        let ran = AtomicUsize::new(0);
        let report = engine.run(vec![
            Job::new("late-a", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            }),
            Job::new("late-b", || {
                ran.fetch_add(1, Ordering::Relaxed);
                JobResult::pass()
            })
            .after(0),
        ]);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no rejected job runs");
        assert!(
            !report.all_passed(),
            "a rejected DAG must not claim success"
        );
        for job in &report.jobs {
            assert_eq!(job.status, JobStatus::Skipped);
            assert!(job.detail.contains("shut down"), "{}", job.detail);
        }
        // Clones share the shutdown state.
        assert!(engine.clone().is_shut_down());
        // Idempotent.
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_dag_through_panic_isolation() {
        use std::sync::atomic::AtomicBool;
        let engine = Engine::new().with_threads(2);
        let started = AtomicBool::new(false);
        let sibling_done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let jobs = vec![
                    Job::new("panics-mid-drain", || {
                        started.store(true, Ordering::SeqCst);
                        panic!("boom during drain")
                    }),
                    Job::new("slow-sibling", || {
                        std::thread::sleep(Duration::from_millis(40));
                        sibling_done.store(true, Ordering::SeqCst);
                        JobResult::pass()
                    }),
                ];
                engine.clone().run(jobs)
            });
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // The DAG is in flight (and one job is unwinding): shutdown must
            // wait for the whole DAG, not hang on the panicked worker.
            engine.shutdown();
            assert!(
                sibling_done.load(Ordering::SeqCst),
                "shutdown returned before the in-flight DAG drained"
            );
            let report = handle.join().expect("runner thread");
            assert_eq!(report.jobs[0].status, JobStatus::Failed);
            assert!(report.jobs[0].detail.contains("boom during drain"));
            assert_eq!(report.jobs[1].status, JobStatus::Passed);
        });
        // Post-drain, new work is rejected.
        let report = engine.run(vec![Job::new("late", JobResult::pass)]);
        assert_eq!(report.jobs[0].status, JobStatus::Skipped);
    }
}
