//! Observability counters shared by the parallel exploration engines.
//!
//! Both [`crate::ParallelExplorer`] (work-stealing deques over shared
//! arenas) and [`crate::MpscExplorer`] (route-sharded private arenas with
//! channel migration) report the same [`ExploreStats`] shape, so callers —
//! `IsReport.stats`, `table1 --stats`, the bench harness — can compare the
//! engines field by field. Counters that do not apply to an engine stay
//! zero: the deque engine never re-interns a migrated configuration
//! (`received`/`received_dups`), the channel engine never steals
//! (`steals`/`stolen_in`).

use inseq_obs::{
    batch_hist_bucket, ContentionSnapshot, EngineSnapshot, HitMissSnapshot, BATCH_HIST_BUCKETS,
};

/// Observability counters for one shard (one worker) of a parallel
/// exploration. Plain per-worker integers bumped off the hot path's
/// lock-free sections; they never influence exploration results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Config-dedup hits/misses attributed to this worker (misses = the
    /// distinct configurations this worker interned first; hits = duplicate
    /// successors it rejected in O(1)). Summed over shards, misses equal
    /// the visited-set size for either engine.
    pub intern: HitMissSnapshot,
    /// Configurations this worker expanded (evaluated all pending asyncs
    /// of) — the occupancy measure: a balanced run has near-equal
    /// `expanded` across shards.
    pub expanded: u64,
    /// Successful steal operations this worker performed when its own
    /// deque ran dry (deque engine only).
    pub steals: u64,
    /// Configurations this worker acquired by stealing (deque engine only).
    pub stolen_in: u64,
    /// Work this shard handed to other workers: configurations stolen
    /// *from* this shard's deque (deque engine), or cross-shard successors
    /// staged over channels (mpsc engine).
    pub migrated_out: u64,
    /// Migrated configurations received from other shards and re-interned
    /// here — the id translation at migration (mpsc engine only; the deque
    /// engine's shared arenas make re-interning structurally impossible).
    pub received: u64,
    /// Received migrations that were already known to this shard — the
    /// dedup work that sharding could not avoid (mpsc engine only).
    pub received_dups: u64,
    /// Pending asyncs this worker left unexpanded because an ample
    /// singleton stood in for them (partial-order reduction only; zero on
    /// unreduced runs).
    pub pruned: u64,
    /// Successors whose orbit representative differed from the raw
    /// successor under the symmetry quotient (symmetry reduction only;
    /// zero on unreduced runs).
    pub orbit_collapses: u64,
    /// Phase-3 intern batches this worker staged: expansion rounds that
    /// interned at least one successor through the concurrent interner
    /// (deque engine only).
    pub intern_batches: u64,
    /// Histogram of those batches by successor count, with bucket bounds
    /// [`inseq_obs::BATCH_HIST_BOUNDS`] (deque engine only).
    pub intern_batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// High-water mark of this worker's bounded pending-async cache (the
    /// reduction path's value cache; zero on unreduced runs).
    pub pa_cache_peak: u64,
}

impl ShardStats {
    /// Records one phase-3 intern batch of `successors` staged configs into
    /// the batch counters. Batches of zero (a blocked or fully-failing
    /// expansion) are not counted.
    pub fn note_intern_batch(&mut self, successors: usize) {
        if successors == 0 {
            return;
        }
        self.intern_batches += 1;
        self.intern_batch_hist[batch_hist_bucket(successors as u64)] += 1;
    }
}

/// Aggregated observability counters of one parallel exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Per-shard counters, indexed by worker.
    pub shards: Vec<ShardStats>,
    /// Hit/miss totals of the shared footprint memo (all zero when no
    /// action has a footprint or the memo disabled itself in probation).
    pub memo: HitMissSnapshot,
    /// The concurrent interner's contention shape: lock waits, total wait
    /// nanoseconds, per-shard insert spread. All zero on engines without a
    /// concurrent interner (mpsc, sequential).
    pub contention: ContentionSnapshot,
}

impl ExploreStats {
    /// Interner hits/misses summed over all shards.
    #[must_use]
    pub fn intern(&self) -> HitMissSnapshot {
        self.shards
            .iter()
            .fold(HitMissSnapshot::default(), |acc, s| acc.merged(s.intern))
    }

    /// Total configurations expanded across all shards. On a run that
    /// completes without cancellation this equals the visited-set size:
    /// every configuration is expanded exactly once.
    #[must_use]
    pub fn expanded(&self) -> u64 {
        self.shards.iter().map(|s| s.expanded).sum()
    }

    /// Total successful steal operations.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.shards.iter().map(|s| s.steals).sum()
    }

    /// Total configurations that moved between workers by stealing.
    #[must_use]
    pub fn stolen(&self) -> u64 {
        self.shards.iter().map(|s| s.stolen_in).sum()
    }

    /// Total work that left its discovering shard (stolen configurations
    /// on the deque engine, staged channel migrations on the mpsc engine).
    #[must_use]
    pub fn migrated(&self) -> u64 {
        self.shards.iter().map(|s| s.migrated_out).sum()
    }

    /// Total received migrations that were already known to their owner.
    #[must_use]
    pub fn migration_dups(&self) -> u64 {
        self.shards.iter().map(|s| s.received_dups).sum()
    }

    /// Total pending asyncs left unexpanded by partial-order reduction.
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.shards.iter().map(|s| s.pruned).sum()
    }

    /// Total successors collapsed onto a different orbit representative by
    /// the symmetry quotient.
    #[must_use]
    pub fn orbit_collapses(&self) -> u64 {
        self.shards.iter().map(|s| s.orbit_collapses).sum()
    }

    /// Total phase-3 intern batches staged across all workers.
    #[must_use]
    pub fn intern_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.intern_batches).sum()
    }

    /// Batch-size histogram summed over all workers.
    #[must_use]
    pub fn intern_batch_hist(&self) -> [u64; BATCH_HIST_BUCKETS] {
        let mut hist = [0u64; BATCH_HIST_BUCKETS];
        for s in &self.shards {
            for (slot, n) in hist.iter_mut().zip(s.intern_batch_hist) {
                *slot += n;
            }
        }
        hist
    }

    /// Largest pending-async cache any worker held (reduction path only).
    #[must_use]
    pub fn pa_cache_peak(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pa_cache_peak)
            .max()
            .unwrap_or(0)
    }

    /// The engine-level shape of this run as a plain-value
    /// [`EngineSnapshot`], for embedding in reports (`IsReport.stats`) and
    /// bench rows. Worker count is the shard count; per-shard `expanded`
    /// entries carry the occupancy profile.
    #[must_use]
    pub fn engine_snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            workers: u32::try_from(self.shards.len()).unwrap_or(u32::MAX),
            expanded: self.shards.iter().map(|s| s.expanded).collect(),
            steals: self.steals(),
            stolen: self.stolen(),
            migrated: self.migrated(),
            migration_dups: self.migration_dups(),
            pruned: self.pruned(),
            orbit_collapses: self.orbit_collapses(),
            lock_waits: self.contention.lock_waits,
            lock_wait_nanos: self.contention.lock_wait_nanos,
            intern_batches: self.intern_batches(),
            intern_batch_hist: if self.intern_batches() == 0 {
                Vec::new()
            } else {
                self.intern_batch_hist().to_vec()
            },
            shard_inserts: self.contention.shard_inserts.clone(),
        }
    }
}
