//! The channel-migration parallel explorer (the pre-work-stealing engine,
//! kept as a benchmarking baseline).
//!
//! [`MpscExplorer`] partitions the visited set across `N` worker threads by
//! a **route hash** of the global store. Each worker *owns* one shard — the
//! configurations whose route maps to it — so deduplication never needs a
//! lock: a configuration is only ever interned by its owner, into a
//! *private* hash-consing [`Interner`]. The price is **id translation at
//! migration**: a successor owned by another shard must be materialized
//! into a plain [`Config`], shipped over a [`std::sync::mpsc`] channel, and
//! structurally re-interned by the receiver — per-config work that the
//! work-stealing [`crate::ParallelExplorer`] replaces with an O(1) buffer
//! handoff of already-interned ids. On duplicate-heavy frontiers most of
//! that shipped work is then rejected by the receiver's dedup (see
//! `received_dups` in [`ShardStats`]), which is why this engine is kept
//! only as the before-baseline for `table1 --large --engine compare`.
//!
//! # Routing
//!
//! The route hash ([`route_of`], Zobrist style: commutative XOR over
//! `(slot, value)` hashes of the global store) is decomposable, so a
//! successor's owner is computed from its parent's route in `O(|delta|)` —
//! un-XOR the old value of each written slot, XOR the new one — before the
//! successor is built. Routing on globals alone is a locality choice: pure
//! spawns stay on the discovering shard and are interned locally.
//!
//! # Termination
//!
//! Distributed termination uses a shared in-flight counter: a batch of `k`
//! configurations increments the counter by `k` *before* the send, and the
//! receiving worker decrements by `k` only after it has fully processed the
//! batch — including the local cascade of same-shard successors and the
//! flush of any cross-shard successors (whose own increments therefore
//! happen before the decrement). The counter reaching zero consequently
//! proves that no counted work remains anywhere, and the worker observing
//! the zero broadcasts `Done` to every shard.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::hash::FxHasher;
use crate::memo::{build_plans, MemoPlan, Resolved, SharedMemo, View};
use crate::stats::{ExploreStats, ShardStats};

use inseq_obs::{ContentionSnapshot, HitMissSnapshot};

use inseq_kernel::{
    ActionName, BagId, Config, ExploreError, GlobalStore, Interner, Multiset, PaId, PendingAsync,
    Program, StoreId, Summary, Value, DEFAULT_CONFIG_BUDGET,
};

/// Cross-shard successor batches are flushed once they reach this size (and
/// unconditionally at the end of each counted batch), trading message count
/// against frontier latency.
const FLUSH_THRESHOLD: usize = 512;

/// The channel-migration parallel explorer (benchmarking baseline).
///
/// Mirrors the sequential [`inseq_kernel::Explorer`] API and produces
/// results bit-identical to it and to [`crate::ParallelExplorer`].
#[derive(Debug)]
pub struct MpscExplorer<'p> {
    program: &'p Program,
    workers: usize,
    budget: usize,
    stop_on_failure: bool,
}

impl<'p> MpscExplorer<'p> {
    /// Creates an explorer with one worker per available hardware thread
    /// and the default configuration budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        MpscExplorer {
            program,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            budget: DEFAULT_CONFIG_BUDGET,
            stop_on_failure: false,
        }
    }

    /// Sets the number of worker threads (and therefore visited-set shards).
    /// Clamped to at least one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the maximum number of distinct configurations to visit across
    /// all shards before giving up with [`ExploreError::BudgetExceeded`].
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// When enabled, the first gate violation cancels all workers instead of
    /// letting the exploration run to completion.
    #[must_use]
    pub fn stop_on_first_failure(mut self, stop: bool) -> Self {
        self.stop_on_failure = stop;
        self
    }

    /// The configured number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Explores all configurations reachable from the given initial
    /// configurations, in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] when the combined shards
    /// exceed the budget and [`ExploreError::Kernel`] when a pending async
    /// refers to an unknown action or has the wrong arity.
    pub fn explore(
        &self,
        initial: impl IntoIterator<Item = Config>,
    ) -> Result<MpscExploration, ExploreError> {
        // Force one-time action setup (e.g. compiling to bytecode) before
        // spawning workers, so shards never race on first-eval compilation.
        self.program.prepare_actions();
        let n = self.workers;
        let mut seed_batches: Vec<Vec<(u64, Config)>> = vec![Vec::new(); n];
        for config in initial {
            let route = route_of(&config.globals);
            seed_batches[owner_of(route, n)].push((route, config));
        }
        let seed_count: usize = seed_batches.iter().map(Vec::len).sum();
        if seed_count == 0 {
            return Ok(MpscExploration::empty(n));
        }

        let shared = Shared {
            pending: AtomicUsize::new(seed_count),
            cancelled: AtomicBool::new(false),
            interned: AtomicUsize::new(0),
            error: Mutex::new(None),
        };
        let plans = build_plans(self.program);
        let memo = SharedMemo::for_plans(plans.is_empty());
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }

        let outputs: Vec<ShardOutput> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (me, rx) in receivers.into_iter().enumerate() {
                let worker = Worker {
                    me,
                    program: self.program,
                    budget: self.budget,
                    stop_on_failure: self.stop_on_failure,
                    shared: &shared,
                    plans: &plans,
                    senders: senders.clone(),
                    interner: Interner::new(),
                    parts: Vec::new(),
                    routes: Vec::new(),
                    stack: Vec::new(),
                    pa_buf: Vec::new(),
                    buffers: vec![Vec::new(); n],
                    memo: memo.as_ref(),
                    out: ShardOutput::default(),
                };
                handles.push(scope.spawn(move || worker.run(rx)));
            }
            for (owner, batch) in seed_batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    let _ = senders[owner].send(Msg::Seed(batch));
                }
            }
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("exploration worker panicked"))
                .collect()
        });

        if let Some(mut err) = shared.error.lock().expect("error slot poisoned").take() {
            if let ExploreError::BudgetExceeded { visited, .. } = &mut err {
                // The recording shard saw the shared counter at its own
                // observation instant; racing shards may have interned more
                // before the cancellation landed. Report the post-join
                // total, which no longer depends on that race.
                *visited = shared.interned.load(Ordering::Relaxed);
            }
            return Err(err);
        }
        let memo_stats = memo
            .as_ref()
            .map_or_else(HitMissSnapshot::default, SharedMemo::snapshot);
        Ok(MpscExploration::merge(outputs, memo_stats))
    }

    /// Computes the program summary (the data of Def. 3.2) for a single
    /// initialized configuration, like [`inseq_kernel::Explorer::summarize`].
    ///
    /// # Errors
    ///
    /// Propagates exploration errors.
    pub fn summarize(&self, initial: Config) -> Result<Summary, ExploreError> {
        Ok(self.explore([initial])?.summary())
    }
}

/// The globals-only route hash of a configuration, built from per-slot
/// hashes combined *commutatively* (Zobrist style: XOR of `(slot, value)`
/// hashes). Commutativity is the point — a successor's route is computable
/// from its parent's in `O(|delta|)` (un-XOR the old value of each written
/// slot, XOR the new one) without materializing the successor at all.
fn route_of(globals: &GlobalStore) -> u64 {
    let mut route = 0u64;
    for (i, v) in globals.iter().enumerate() {
        route ^= slot_hash(i, v);
    }
    route
}

/// The hash contribution of one `(slot index, value)` pair.
fn slot_hash(i: usize, v: &Value) -> u64 {
    use std::hash::Hash;
    let mut hasher = FxHasher::default();
    hasher.write_usize(i);
    v.hash(&mut hasher);
    hasher.finish()
}

/// The shard owning a configuration whose route hash is `route`. Fx pushes
/// its entropy toward the high bits, so fold them down before the modulo.
fn owner_of(route: u64, shards: usize) -> usize {
    (((route >> 32) ^ route) as usize) % shards
}

enum Msg {
    /// Initial configurations: interned and counted, but exempt from the
    /// budget check at their own intern (matching the sequential explorer,
    /// which only checks the budget when interning fresh successors).
    Seed(Vec<(u64, Config)>),
    /// Discovered configurations routed to their owner shard, carrying their
    /// precomputed route hash.
    Work(Vec<(u64, Config)>),
    /// Shut down: exploration finished or was cancelled.
    Done,
}

struct Shared {
    /// Counted configurations sent but not yet fully processed.
    pending: AtomicUsize,
    cancelled: AtomicBool,
    /// Distinct configurations interned across all shards (budget counter).
    interned: AtomicUsize,
    /// First error observed by any worker.
    error: Mutex<Option<ExploreError>>,
}

/// Per-shard results, moved out of the worker when it exits.
#[derive(Debug, Default)]
struct ShardOutput {
    visited: Vec<Config>,
    failures: Vec<(Config, PendingAsync, String)>,
    deadlocks: Vec<Config>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ShardStats,
}

struct Worker<'p, 'sh> {
    me: usize,
    program: &'p Program,
    budget: usize,
    stop_on_failure: bool,
    shared: &'sh Shared,
    /// Per-action memoization plans (absent for opaque actions).
    plans: &'sh HashMap<ActionName, MemoPlan>,
    senders: Vec<Sender<Msg>>,
    /// This shard's hash-consed visited set: the config arena *is* the
    /// dedup structure, and successor stores/bags share sub-parts with
    /// their parents.
    interner: Interner,
    /// `(store, bag)` parts per interned config, parallel to the interner's
    /// config ids.
    parts: Vec<(StoreId, BagId)>,
    /// Route hash per interned config, parallel to `parts`; workers read
    /// the parent's entry to derive successor routes in `O(|delta|)`.
    routes: Vec<u64>,
    /// Config ids awaiting processing — the local cascade.
    stack: Vec<usize>,
    /// Reusable buffer of the distinct pending-async ids of the
    /// configuration under expansion.
    pa_buf: Vec<PaId>,
    /// Outgoing cross-shard successors, buffered per destination.
    buffers: Vec<Vec<(u64, Config)>>,
    /// The shared evaluation memo; `None` when no action has a footprint.
    memo: Option<&'sh SharedMemo>,
    out: ShardOutput,
}

/// A non-failure reason to abandon the current configuration mid-step.
enum StepFault {
    Kernel(ExploreError),
    StopOnFailure,
}

impl Worker<'_, '_> {
    fn run(mut self, rx: Receiver<Msg>) -> ShardOutput {
        'recv: while let Ok(mut msg) = rx.recv() {
            // Drain everything already queued before processing: on few cores
            // each blocking `recv` wake-up is a context switch, so absorbing
            // all available batches per wake-up matters more than latency.
            let mut count = 0usize;
            let mut done = false;
            loop {
                match msg {
                    Msg::Done => {
                        // Termination `Done` cannot overtake counted work we
                        // hold (the in-flight counter is still positive), so
                        // this is a cancellation or arrives with `count == 0`.
                        done = true;
                        break;
                    }
                    Msg::Seed(batch) => {
                        count += batch.len();
                        if !self.shared.cancelled.load(Ordering::Acquire) {
                            for (route, config) in batch {
                                self.enqueue(route, &config, true);
                            }
                        }
                    }
                    Msg::Work(batch) => {
                        count += batch.len();
                        if !self.shared.cancelled.load(Ordering::Acquire) {
                            for (route, config) in batch {
                                self.enqueue(route, &config, false);
                            }
                        }
                    }
                }
                match rx.try_recv() {
                    Ok(next) => msg = next,
                    Err(_) => break,
                }
            }
            self.cascade();
            self.flush_all();
            // Decrement only now: every successor the drained batches
            // produced has already been counted, so a zero is conclusive.
            if count > 0 && self.shared.pending.fetch_sub(count, Ordering::AcqRel) == count {
                self.broadcast_done();
            }
            if done {
                break 'recv;
            }
        }
        self.out.visited = self
            .parts
            .iter()
            .map(|&(sid, bagid)| self.resolve(sid, bagid))
            .collect();
        self.out.stats.intern = self.interner.intern_stats();
        self.out
    }

    fn resolve(&self, sid: StoreId, bagid: BagId) -> Config {
        Config::new(
            self.interner.store(sid).clone(),
            self.interner.resolve_bag(bagid),
        )
    }

    /// Interns an incoming configuration this shard owns — the id
    /// translation at migration: the sender's ids mean nothing here, so the
    /// materialized configuration is re-interned against the local arenas.
    /// Fresh ones are counted against the budget (unless seeds) and queued
    /// for processing.
    fn enqueue(&mut self, route: u64, config: &Config, seed: bool) {
        let (id, fresh) = self.interner.intern_config(config);
        if !seed {
            self.out.stats.received += 1;
            if !fresh {
                self.out.stats.received_dups += 1;
            }
        }
        if fresh {
            self.parts.push(self.interner.config_parts(id));
            self.routes.push(route);
            let interned = self.shared.interned.fetch_add(1, Ordering::Relaxed) + 1;
            if !seed && interned > self.budget {
                self.fail(ExploreError::BudgetExceeded {
                    limit: self.budget,
                    visited: interned,
                    trace: None,
                });
                return;
            }
            self.stack.push(id.index());
        }
    }

    /// Interns a same-shard successor from already-interned parts; fresh
    /// ones are counted against the budget and queued.
    fn intern_local(&mut self, route: u64, sid: StoreId, bagid: BagId) -> Result<(), StepFault> {
        let (id, fresh) = self.interner.intern_config_parts(sid, bagid);
        if fresh {
            self.parts.push((sid, bagid));
            self.routes.push(route);
            let interned = self.shared.interned.fetch_add(1, Ordering::Relaxed) + 1;
            if interned > self.budget {
                return Err(StepFault::Kernel(ExploreError::BudgetExceeded {
                    limit: self.budget,
                    visited: interned,
                    trace: None,
                }));
            }
            self.stack.push(id.index());
        }
        Ok(())
    }

    /// Materializes a cross-shard successor: resolve the parent's bag once,
    /// apply the pending delta, and pair it with the given post-store.
    fn materialize(
        &self,
        bagid: BagId,
        consumed: PaId,
        globals: GlobalStore,
        created: &Multiset<PendingAsync>,
    ) -> Config {
        let mut pending = self.interner.resolve_bag(bagid);
        pending.remove_one(self.interner.pa(consumed));
        for item in created.iter() {
            pending.insert(item.clone());
        }
        Config::new(globals, pending)
    }

    fn stage_remote(&mut self, owner: usize, route: u64, next: Config) {
        self.out.stats.migrated_out += 1;
        self.buffers[owner].push((route, next));
        if self.buffers[owner].len() >= FLUSH_THRESHOLD {
            self.flush(owner);
        }
    }

    /// Processes queued configurations until the local cascade is drained.
    fn cascade(&mut self) {
        while let Some(id) = self.stack.pop() {
            if self.shared.cancelled.load(Ordering::Relaxed) {
                self.stack.clear();
                return;
            }
            self.step(id);
        }
    }

    /// Evaluates every distinct pending async of the configuration `id`,
    /// interning same-shard successors immediately and buffering cross-shard
    /// ones. All state is referenced by interned id, so nothing borrows
    /// across the interner mutations.
    fn step(&mut self, id: usize) {
        let memo = self.memo;
        let plans = self.plans;
        let program = self.program;
        let shards = self.buffers.len();
        let (sid, bagid) = self.parts[id];
        let route0 = self.routes[id];
        self.out.stats.expanded += 1;

        {
            let (pa_buf, interner) = (&mut self.pa_buf, &self.interner);
            pa_buf.clear();
            pa_buf.extend(interner.bag_entries(bagid).iter().map(|&(p, _)| p));
        }
        let mut fault = None;
        let mut progressed = self.pa_buf.is_empty();
        'eval: for k in 0..self.pa_buf.len() {
            let paid = self.pa_buf[k];
            let plan = plans.get(&self.interner.pa(paid).action);
            let active = match (memo, plan) {
                (Some(memo), Some(plan)) if memo.enabled.load(Ordering::Relaxed) => {
                    Some((memo, plan))
                }
                _ => None,
            };
            let outcome = if let Some((memo, plan)) = active {
                let probe = {
                    let globals = self.interner.store(sid);
                    let pa = self.interner.pa(paid);
                    memo.probe(pa, plan, globals)
                };
                if let Some(cached) = probe {
                    Resolved::Cached(cached)
                } else {
                    // Evaluate *outside* the memo lock, then publish.
                    let evaluated = {
                        let globals = self.interner.store(sid);
                        let pa = self.interner.pa(paid);
                        program.eval_pa(globals, pa)
                    };
                    match evaluated {
                        Ok(out) => {
                            let globals = self.interner.store(sid);
                            let pa = self.interner.pa(paid);
                            memo.publish(pa, plan, globals, &out);
                            Resolved::Owned(out)
                        }
                        Err(e) => {
                            fault = Some(StepFault::Kernel(e.into()));
                            break 'eval;
                        }
                    }
                }
            } else {
                let evaluated = {
                    let globals = self.interner.store(sid);
                    let pa = self.interner.pa(paid);
                    program.eval_pa(globals, pa)
                };
                match evaluated {
                    Ok(out) => Resolved::Owned(out),
                    Err(e) => {
                        fault = Some(StepFault::Kernel(e.into()));
                        break 'eval;
                    }
                }
            };
            // The footprint's write set bounds which slots a successor store
            // can differ in, letting the interner skip re-hashing the rest.
            let fp_writes: Option<&[usize]> = plan.map(|p| p.writes.as_slice());
            match outcome.view() {
                View::Failure(reason) => {
                    progressed = true;
                    let witness = self.resolve(sid, bagid);
                    self.out.failures.push((
                        witness,
                        self.interner.pa(paid).clone(),
                        reason.to_owned(),
                    ));
                    if self.stop_on_failure {
                        fault = Some(StepFault::StopOnFailure);
                        break 'eval;
                    }
                }
                View::Full(transitions) => {
                    if !transitions.is_empty() {
                        progressed = true;
                    }
                    for t in transitions {
                        self.out.edges += 1;
                        // Derive the successor's route from the parent's:
                        // un-XOR changed slots.
                        let mut route = route0;
                        {
                            let parent = self.interner.store(sid);
                            for (i, (old, new)) in parent.iter().zip(t.globals.iter()).enumerate() {
                                if old != new {
                                    route ^= slot_hash(i, old) ^ slot_hash(i, new);
                                }
                            }
                        }
                        let owner = owner_of(route, shards);
                        if owner == self.me {
                            let next_sid =
                                self.interner.intern_store_diff(sid, &t.globals, fp_writes);
                            let next_bag = self.interner.bag_after(bagid, paid, &t.created);
                            if let Err(f) = self.intern_local(route, next_sid, next_bag) {
                                fault = Some(f);
                                break 'eval;
                            }
                        } else {
                            let next = self.materialize(bagid, paid, t.globals.clone(), &t.created);
                            self.stage_remote(owner, route, next);
                        }
                    }
                }
                View::Delta(transitions) => {
                    if !transitions.is_empty() {
                        progressed = true;
                    }
                    for t in transitions {
                        self.out.edges += 1;
                        let mut route = route0;
                        {
                            let parent = self.interner.store(sid);
                            for (i, v) in &t.writes {
                                let old = parent.get(*i);
                                if old != v {
                                    route ^= slot_hash(*i, old) ^ slot_hash(*i, v);
                                }
                            }
                        }
                        let owner = owner_of(route, shards);
                        if owner == self.me {
                            // Replay the memoized write-delta; by the
                            // footprint contract the result is exactly what
                            // `eval` would have produced here.
                            let next_sid = self.interner.intern_store_writes(sid, &t.writes);
                            let next_bag = self.interner.bag_after(bagid, paid, &t.created);
                            if let Err(f) = self.intern_local(route, next_sid, next_bag) {
                                fault = Some(f);
                                break 'eval;
                            }
                        } else {
                            let globals = {
                                let mut g = self.interner.store(sid).clone();
                                for (i, v) in &t.writes {
                                    g.set(*i, v.clone());
                                }
                                g
                            };
                            let next = self.materialize(bagid, paid, globals, &t.created);
                            self.stage_remote(owner, route, next);
                        }
                    }
                }
            }
        }
        if fault.is_none() {
            if !progressed {
                let witness = self.resolve(sid, bagid);
                self.out.deadlocks.push(witness);
            }
            if self.interner.bag_entries(bagid).is_empty() {
                self.out.terminal.insert(self.interner.store(sid).clone());
            }
        }

        match fault {
            Some(StepFault::Kernel(err)) => self.fail(err),
            Some(StepFault::StopOnFailure) => self.cancel(),
            None => {}
        }
    }

    fn flush(&mut self, owner: usize) {
        flush_buffer(self.shared, &self.senders[owner], &mut self.buffers[owner]);
    }

    fn flush_all(&mut self) {
        for owner in 0..self.buffers.len() {
            self.flush(owner);
        }
    }

    fn fail(&mut self, err: ExploreError) {
        let mut slot = self.shared.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.cancel();
    }

    fn cancel(&mut self) {
        self.shared.cancelled.store(true, Ordering::Release);
        self.stack.clear();
        self.broadcast_done();
    }

    fn broadcast_done(&self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Done);
        }
    }
}

/// Sends a buffered batch to its owner shard, counting it in-flight first so
/// `pending` can never transiently read zero while the work exists.
fn flush_buffer(shared: &Shared, sender: &Sender<Msg>, buffer: &mut Vec<(u64, Config)>) {
    if buffer.is_empty() {
        return;
    }
    let batch = std::mem::take(buffer);
    shared.pending.fetch_add(batch.len(), Ordering::AcqRel);
    let _ = sender.send(Msg::Work(batch));
}

/// The result of an mpsc-engine exploration: the reachable configuration
/// set (still sharded, to avoid a merge copy) plus all gate violations and
/// deadlocks encountered.
#[derive(Debug)]
pub struct MpscExploration {
    shards: Vec<Vec<Config>>,
    failures: Vec<(Config, PendingAsync, String)>,
    deadlocks: Vec<Config>,
    terminal: BTreeSet<GlobalStore>,
    edges: usize,
    stats: ExploreStats,
}

impl MpscExploration {
    fn empty(shards: usize) -> Self {
        MpscExploration {
            shards: vec![Vec::new(); shards],
            failures: Vec::new(),
            deadlocks: Vec::new(),
            terminal: BTreeSet::new(),
            edges: 0,
            stats: ExploreStats {
                shards: vec![ShardStats::default(); shards],
                memo: HitMissSnapshot::default(),
                contention: ContentionSnapshot::default(),
            },
        }
    }

    fn merge(outputs: Vec<ShardOutput>, memo: HitMissSnapshot) -> Self {
        let mut merged = MpscExploration::empty(0);
        merged.stats.memo = memo;
        for out in outputs {
            merged.shards.push(out.visited);
            merged.failures.extend(out.failures);
            merged.deadlocks.extend(out.deadlocks);
            merged.terminal.extend(out.terminal);
            merged.edges += out.edges;
            merged.stats.shards.push(out.stats);
        }
        merged
    }

    /// Observability counters of this exploration.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Number of distinct reachable configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Number of transitions in the explored graph (counted, not stored).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterates over all reachable configurations, shard by shard. The
    /// order is not meaningful; compare as a set.
    pub fn configs(&self) -> impl Iterator<Item = &Config> {
        self.shards.iter().flatten()
    }

    /// Whether any reachable configuration can fail.
    #[must_use]
    pub fn has_failure(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Human-readable descriptions of all gate violations found, in the same
    /// format as [`inseq_kernel::Exploration::failure_reports`].
    #[must_use]
    pub fn failure_reports(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|(config, fired, reason)| {
                format!("executing {fired} from {config} fails: {reason}")
            })
            .collect()
    }

    /// Whether any reachable configuration is a deadlock.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Configurations with pending asyncs but no enabled transition and no
    /// failure.
    pub fn deadlocked_configs(&self) -> impl Iterator<Item = &Config> {
        self.deadlocks.iter()
    }

    /// Global stores of terminating configurations (empty `Ω`).
    pub fn terminal_stores(&self) -> impl Iterator<Item = &GlobalStore> {
        self.terminal.iter()
    }

    /// The program summary over the explored set: `good` iff no gate
    /// violation was found, plus the set of terminating stores.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            good: !self.has_failure(),
            terminal: self.terminal.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::{counter_program, failing_program};
    use inseq_kernel::Explorer;

    fn reachable_set(program: &Program) -> BTreeSet<Config> {
        let init = program.initial_config(vec![]).unwrap();
        Explorer::new(program)
            .explore([init])
            .unwrap()
            .configs()
            .cloned()
            .collect()
    }

    #[test]
    fn matches_sequential_on_counter() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        for workers in [1, 2, 4] {
            let exp = MpscExplorer::new(&p)
                .with_workers(workers)
                .explore([init.clone()])
                .unwrap();
            let parallel: BTreeSet<Config> = exp.configs().cloned().collect();
            assert_eq!(parallel, reachable_set(&p), "workers = {workers}");
            assert!(!exp.has_failure());
            assert!(!exp.has_deadlock());
        }
    }

    #[test]
    fn summary_matches_sequential() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let seq = Explorer::new(&p).summarize(init.clone()).unwrap();
        for workers in [1, 3] {
            let par = MpscExplorer::new(&p)
                .with_workers(workers)
                .summarize(init.clone())
                .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn failures_are_found() {
        let p = failing_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = MpscExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        assert!(exp.has_failure());
        assert!(exp
            .failure_reports()
            .iter()
            .any(|r| r.contains("assert false")));
        assert!(!exp.summary().good);
    }

    #[test]
    fn budget_is_enforced_and_reports_exhaustion_point() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let err = MpscExplorer::new(&p)
            .with_workers(2)
            .with_budget(1)
            .explore([init])
            .unwrap_err();
        assert!(matches!(
            err,
            ExploreError::BudgetExceeded { limit: 1, visited, .. } if visited > 1
        ));
    }

    #[test]
    fn stats_account_for_all_interned_configs() {
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = MpscExplorer::new(&p)
            .with_workers(2)
            .explore([init])
            .unwrap();
        let stats = exp.stats();
        assert_eq!(stats.shards.len(), 2);
        // Every distinct config is exactly one interner miss on its owner
        // shard; received duplicates are a subset of received migrations.
        assert_eq!(stats.intern().misses as usize, exp.config_count());
        for shard in &stats.shards {
            assert!(shard.received_dups <= shard.received);
        }
        assert!(stats.migration_dups() <= stats.migrated());
        assert_eq!(stats.expanded() as usize, exp.config_count());
    }

    #[test]
    fn empty_initial_set_is_trivially_good() {
        let p = counter_program();
        let exp = MpscExplorer::new(&p).with_workers(2).explore([]).unwrap();
        assert_eq!(exp.config_count(), 0);
        assert!(exp.summary().good);
    }

    #[test]
    fn incremental_routes_match_full_rehash() {
        // The worker derives a successor's route from its parent's by
        // un-XOR-ing changed slots; check the derivation against a full
        // rehash on every edge of a real exploration.
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let exp = Explorer::new(&p).explore([init]).unwrap();
        for step in exp.steps() {
            let mut route = route_of(&step.before.globals);
            for (i, (old, new)) in step
                .before
                .globals
                .iter()
                .zip(step.after.globals.iter())
                .enumerate()
            {
                if old != new {
                    route ^= slot_hash(i, old) ^ slot_hash(i, new);
                }
            }
            assert_eq!(route, route_of(&step.after.globals));
        }
    }
}
