//! The memoizing [`ReductionPolicy`] behind `--reduce`: ample-candidate
//! selection over the kernel's creation-closure commutation check, plus an
//! optional symmetry quotient.
//!
//! The kernel owns the *semantic* primitives ([`pair_commutes_within`],
//! [`SymmetrySpec`]); this module owns the *policy*: which pending async to
//! try as the ample singleton, and how to amortize pair verdicts across the
//! millions of configurations that repeat the same `(p, q, store)` query.
//! Verdicts are memoized in a shared bucketed table following
//! [`crate::memo`]'s pattern — a short-lock probe keyed by an Fx hash, with
//! full-equality comparison on the bucket to rule collisions out. Store
//! slots are `Arc`-shared sub-parts, so a cached entry costs refcounts, not
//! deep clones.
//!
//! # Candidate contract
//!
//! [`Reducer::ample`] returns `Some(i)` only when every obligation of the
//! explorer-side ample contract holds:
//!
//! * pending `i` has at least one enabled transition at the store (so
//!   progress, and with it deadlock detection, is preserved), and does not
//!   fail;
//! * pending `i` commutes — including gate preservation both ways, and
//!   closed under what the partner *creates* down to
//!   [`inseq_kernel::PAIR_CLOSURE_DEPTH`] — with every *other* distinct
//!   pending and, when its own multiplicity exceeds one, with a further
//!   instance of itself. Since a gate failure of either party counts as a
//!   conflict, an accepted candidate also certifies that no co-pending
//!   async fails at this store.
//!
//! When no candidate qualifies the policy declines (`None`) and the
//! explorer expands exhaustively — reduction degrades to the baseline,
//! never to unsoundness. The explorers add the cycle proviso on top: an
//! ample round that interns nothing fresh falls back to full expansion.
//!
//! A `Reducer` memoizes verdicts for **one program**; build a fresh one per
//! checked program (they are cheap — an empty table).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use inseq_kernel::hash::{fx_hash, mix};
use inseq_kernel::{
    pair_commutes_within, ActionOutcome, GlobalStore, PendingAsync, Program, ReduceMode,
    ReductionPolicy, SymmetrySpec, PAIR_CLOSURE_DEPTH,
};
use inseq_obs::HitMissSnapshot;

/// One memoized pair verdict. The full key is kept for equality comparison
/// on probe — a hash collision costs a comparison, never a wrong verdict.
#[derive(Debug)]
struct PairEntry {
    p: PendingAsync,
    q: PendingAsync,
    store: GlobalStore,
    commutes: bool,
}

/// A memoizing ample/symmetry [`ReductionPolicy`] for the explorers.
///
/// Construct with [`Reducer::new`] from a [`ReduceMode`], optionally attach
/// a [`SymmetrySpec`] with [`Reducer::with_symmetry`], and hand it to
/// [`inseq_kernel::Explorer::with_reduction`] or
/// [`crate::ParallelExplorer::with_reduction`]. With `ReduceMode::Off` the
/// policy is inert (never prunes, no quotient), so callers can wire one
/// code path for all modes.
#[derive(Debug)]
pub struct Reducer {
    mode: ReduceMode,
    symmetry: Option<SymmetrySpec>,
    /// Pair-verdict memo: Fx hash of `(p, q, store)` → entries compared in
    /// full. One mutex suffices — the held section is a probe or a push,
    /// while the verdict itself is computed outside the lock.
    memo: Mutex<HashMap<u64, Vec<PairEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Test-only: skip every soundness obligation and prune on the first
    /// enabled candidate. Exists to prove the reduce oracle catches an
    /// unsound rule; never set outside `#[cfg(feature = "fault-injection")]`
    /// harnesses.
    #[cfg(feature = "fault-injection")]
    unsound: bool,
}

impl Reducer {
    /// Creates a reducer for the given mode with an empty memo and no
    /// symmetry spec.
    #[must_use]
    pub fn new(mode: ReduceMode) -> Self {
        Reducer {
            mode,
            symmetry: None,
            memo: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            #[cfg(feature = "fault-injection")]
            unsound: false,
        }
    }

    /// Attaches a symmetry spec, consulted only when the mode has symmetry
    /// on ([`ReduceMode::sym`]).
    #[must_use]
    pub fn with_symmetry(mut self, spec: SymmetrySpec) -> Self {
        self.symmetry = Some(spec);
        self
    }

    /// The mode this reducer was built for.
    #[must_use]
    pub fn mode(&self) -> ReduceMode {
        self.mode
    }

    /// Hit/miss totals of the pair-verdict memo.
    #[must_use]
    pub fn memo_stats(&self) -> HitMissSnapshot {
        HitMissSnapshot::new(
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Test-only: turns this reducer into a deliberately **unsound** one
    /// that skips every commutation and failure check and prunes on the
    /// first enabled candidate. Used by the fuzz harness to prove the
    /// reduced-vs-unreduced oracle catches a broken pruning rule.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn unsound_prune(mut self) -> Self {
        self.unsound = true;
        self
    }

    /// The memoized creation-closure commutation verdict for `(p, q)` at
    /// `store`.
    fn pair_commutes(
        &self,
        program: &Program,
        p: &PendingAsync,
        q: &PendingAsync,
        store: &GlobalStore,
    ) -> bool {
        let key = mix(mix(fx_hash(p), fx_hash(q)), fx_hash(store));
        {
            let memo = self.memo.lock().expect("pair memo poisoned");
            if let Some(bucket) = memo.get(&key) {
                if let Some(entry) = bucket
                    .iter()
                    .find(|e| e.p == *p && e.q == *q && e.store == *store)
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return entry.commutes;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let commutes = pair_commutes_within(program, p, q, store, PAIR_CLOSURE_DEPTH);
        let mut memo = self.memo.lock().expect("pair memo poisoned");
        memo.entry(key).or_default().push(PairEntry {
            p: p.clone(),
            q: q.clone(),
            store: store.clone(),
            commutes,
        });
        commutes
    }
}

impl ReductionPolicy for Reducer {
    fn ample(
        &self,
        program: &Program,
        store: &GlobalStore,
        pending: &[(PendingAsync, usize)],
    ) -> Option<usize> {
        if !self.mode.por() || pending.len() < 2 {
            return None;
        }
        'candidate: for (i, (cand, count)) in pending.iter().enumerate() {
            // Progress obligation: the candidate must actually move.
            match program.eval_pa(store, cand) {
                Ok(ActionOutcome::Transitions(ts)) if !ts.is_empty() => {}
                // Blocked, failing, or erroring candidates cannot stand in
                // for the rest; an eval error will surface during normal
                // expansion if no candidate is found.
                _ => continue,
            }
            #[cfg(feature = "fault-injection")]
            if self.unsound || crate::fault::unsound_prune_enabled() {
                return Some(i);
            }
            // Commutation obligations: against a further self-instance when
            // the multiplicity exceeds one, and against every other pending.
            if *count > 1 && !self.pair_commutes(program, cand, cand, store) {
                continue;
            }
            for (j, (other, _)) in pending.iter().enumerate() {
                if j != i && !self.pair_commutes(program, cand, other, store) {
                    continue 'candidate;
                }
            }
            return Some(i);
        }
        None
    }

    fn symmetry(&self) -> Option<&SymmetrySpec> {
        if self.mode.sym() {
            self.symmetry.as_ref()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inseq_kernel::demo::counter_program;
    use inseq_kernel::{GlobalSchema, NativeAction, Program as KProgram, Transition, Value};

    /// Two writers to different slots plus one to a shared slot: the
    /// disjoint pair admits an ample candidate, the conflicting one vetoes.
    fn writers(shared: bool) -> KProgram {
        let mut b = KProgram::builder(GlobalSchema::new(["x", "y"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
            }),
        );
        b.action(
            "WriteX",
            NativeAction::new("WriteX", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(1)))])
            }),
        );
        let slot = usize::from(!shared);
        b.action(
            "Other",
            NativeAction::new("Other", 0, move |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.with(slot, Value::Int(2)))])
            }),
        );
        b.build().unwrap()
    }

    fn bag() -> Vec<(PendingAsync, usize)> {
        vec![
            (PendingAsync::new("WriteX", vec![]), 1),
            (PendingAsync::new("Other", vec![]), 1),
        ]
    }

    #[test]
    fn off_mode_never_prunes() {
        let p = writers(false);
        let store = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let r = Reducer::new(ReduceMode::Off);
        assert_eq!(r.ample(&p, &store, &bag()), None);
        assert!(r.symmetry().is_none());
    }

    #[test]
    fn disjoint_writers_admit_an_ample_candidate() {
        let p = writers(false);
        let store = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let r = Reducer::new(ReduceMode::Por);
        assert_eq!(r.ample(&p, &store, &bag()), Some(0));
    }

    #[test]
    fn conflicting_writers_veto_reduction() {
        let p = writers(true);
        let store = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let r = Reducer::new(ReduceMode::Por);
        assert_eq!(r.ample(&p, &store, &bag()), None);
    }

    #[test]
    fn pair_verdicts_are_memoized() {
        let p = writers(false);
        let store = GlobalStore::new(vec![Value::Int(0), Value::Int(0)]);
        let r = Reducer::new(ReduceMode::Por);
        assert!(r.ample(&p, &store, &bag()).is_some());
        let after_first = r.memo_stats();
        assert!(after_first.misses > 0);
        assert!(r.ample(&p, &store, &bag()).is_some());
        let after_second = r.memo_stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn reduced_counter_matches_unreduced_verdict() {
        use inseq_kernel::Explorer;
        let p = counter_program();
        let init = p.initial_config(vec![]).unwrap();
        let plain = Explorer::new(&p).explore([init.clone()]).unwrap();
        let reducer = Reducer::new(ReduceMode::Por);
        let reduced = Explorer::new(&p)
            .with_reduction(&reducer)
            .explore([init])
            .unwrap();
        assert_eq!(reduced.has_failure(), plain.has_failure());
        assert_eq!(reduced.has_deadlock(), plain.has_deadlock());
        let plain_terminals: std::collections::BTreeSet<_> =
            plain.terminal_stores().cloned().collect();
        let reduced_terminals: std::collections::BTreeSet<_> =
            reduced.terminal_stores().cloned().collect();
        assert_eq!(plain_terminals, reduced_terminals);
        assert!(reduced.config_count() <= plain.config_count());
    }

    /// A pending async whose gate fails must veto every candidate — pruning
    /// it away would hide the violation.
    #[test]
    fn failing_copending_vetoes_reduction() {
        let mut b = KProgram::builder(GlobalSchema::new(["x"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
            }),
        );
        b.action(
            "Step",
            NativeAction::new("Step", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(1)))])
            }),
        );
        b.action(
            "Boom",
            NativeAction::new("Boom", 0, |_: &GlobalStore, _: &[Value]| {
                ActionOutcome::Failure {
                    reason: "boom".into(),
                }
            }),
        );
        let p = b.build().unwrap();
        let store = GlobalStore::new(vec![Value::Int(0)]);
        let pending = vec![
            (PendingAsync::new("Step", vec![]), 1),
            (PendingAsync::new("Boom", vec![]), 1),
        ];
        let r = Reducer::new(ReduceMode::Por);
        assert_eq!(r.ample(&p, &store, &pending), None);
    }

    /// Self-commutation is checked when a candidate's multiplicity exceeds
    /// one: an action that does not commute with itself cannot prune its
    /// own siblings. `Swap` maps 0→1 but 1→panic-free 0 asymmetrically via
    /// gate: use an action that fails on its second firing.
    #[test]
    fn non_self_commuting_multiplicity_vetoes() {
        let mut b = KProgram::builder(GlobalSchema::new(["x"]));
        b.action(
            "Main",
            NativeAction::new("Main", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
            }),
        );
        // Fails when x is already 1 — two instances conflict: the first
        // sets x to 1, the second then fails.
        b.action(
            "Once",
            NativeAction::new("Once", 0, |g: &GlobalStore, _: &[Value]| {
                if g.get(0) == &Value::Int(1) {
                    ActionOutcome::Failure {
                        reason: "already done".into(),
                    }
                } else {
                    ActionOutcome::Transitions(vec![Transition::pure(g.with(0, Value::Int(1)))])
                }
            }),
        );
        // A bystander that commutes with everything (pure no-op).
        b.action(
            "Noop",
            NativeAction::new("Noop", 0, |g: &GlobalStore, _: &[Value]| {
                ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
            }),
        );
        let p = b.build().unwrap();
        let store = GlobalStore::new(vec![Value::Int(0)]);
        let pending = vec![
            (PendingAsync::new("Once", vec![]), 2),
            (PendingAsync::new("Noop", vec![]), 1),
        ];
        let r = Reducer::new(ReduceMode::Por);
        // `Once` is vetoed by its own second instance; `Noop` is vetoed
        // because it must commute with `Once` × `Once`'s failures — but a
        // Noop firing first leaves the Once/Once conflict intact, so Noop
        // itself commutes with each single Once. The explorer would then
        // still reach the conflict through the pruned state. Either verdict
        // on Noop is sound; the pinned behaviour is that Once is never the
        // ample choice.
        assert_ne!(r.ample(&p, &store, &pending), Some(0));
    }
}
