//! The shared footprint-keyed evaluation memo, used by both parallel
//! engines ([`crate::ParallelExplorer`] and [`crate::MpscExplorer`]).
//!
//! All workers share one memo so no shard repeats another's interpreter
//! work. Actions that expose a [`Footprint`] (every DSL action does) are
//! keyed on the *projection* of the global store onto the indices they read
//! or write, with outcomes stored as write-deltas; two configurations that
//! differ only in globals an action never touches then share one
//! evaluation. Protocols whose footprints span the hot globals (e.g.
//! Paxos, where every action handles the message bag) see few hits, and
//! the memo disables itself after a short probation.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::hash::FxHasher;

use inseq_obs::HitMissSnapshot;

use inseq_kernel::{
    ActionName, ActionOutcome, Footprint, GlobalStore, Multiset, PendingAsync, Program, Transition,
    Value,
};

/// Evaluation-memo probation: after this many lookups a worker keeps the
/// memo only if at least 1 in [`MEMO_MIN_HIT_SHIFT`] was a hit.
pub(crate) const MEMO_PROBATION: usize = 256;
/// Minimum hit rate to keep the memo, expressed as a right shift: hits must
/// exceed `lookups >> MEMO_MIN_HIT_SHIFT` (i.e. 1/8) after probation.
pub(crate) const MEMO_MIN_HIT_SHIFT: u32 = 3;

/// How to memoize one action, derived from its [`Footprint`].
#[derive(Debug)]
pub(crate) struct MemoPlan {
    /// Sorted `reads ∪ writes`: the store projection that determines the
    /// outcome *and* every recorded write value.
    pub(crate) key: Vec<usize>,
    /// Sorted write indices whose post-values are recorded per transition.
    pub(crate) writes: Vec<usize>,
}

impl MemoPlan {
    fn of(fp: &Footprint) -> Self {
        MemoPlan {
            key: fp.key_indices(),
            writes: fp.writes.clone(),
        }
    }
}

/// The per-action memoization plans of a program (absent for opaque
/// actions).
pub(crate) fn build_plans(program: &Program) -> HashMap<ActionName, MemoPlan> {
    program
        .actions()
        .filter_map(|(name, action)| {
            action
                .footprint()
                .map(|fp| (name.clone(), MemoPlan::of(&fp)))
        })
        .collect()
}

/// One memoized transition: the post-values of the action's written globals
/// plus the created pending asyncs. Applying the writes to *any* store that
/// agrees with the memo key on the footprint reproduces `eval` exactly.
#[derive(Debug)]
pub(crate) struct CachedTransition {
    pub(crate) writes: Vec<(usize, Value)>,
    pub(crate) created: Multiset<PendingAsync>,
}

/// A memoized evaluation outcome.
#[derive(Debug)]
pub(crate) enum CachedOutcome {
    Failure(String),
    Transitions(Vec<CachedTransition>),
}

impl CachedOutcome {
    fn of(out: &ActionOutcome, plan: &MemoPlan) -> Self {
        match out {
            ActionOutcome::Failure { reason } => CachedOutcome::Failure(reason.clone()),
            ActionOutcome::Transitions(ts) => CachedOutcome::Transitions(
                ts.iter()
                    .map(|t| CachedTransition {
                        writes: plan
                            .writes
                            .iter()
                            .map(|&i| (i, t.globals.get(i).clone()))
                            .collect(),
                        created: t.created.clone(),
                    })
                    .collect(),
            ),
        }
    }
}

/// One memo entry: the owned key — a pending async plus the projection of
/// the global store onto the action's footprint — and the cached outcome. By
/// the footprint contract the outcome, restricted to the written indices, is
/// a function of exactly this key.
#[derive(Debug)]
struct MemoEntry {
    action: ActionName,
    args: Vec<Value>,
    store_key: Vec<Value>,
    outcome: Arc<CachedOutcome>,
}

impl MemoEntry {
    /// Whether this entry's key equals `(pa, globals|plan.key)` — compared
    /// entirely by reference, so probing never clones a value.
    fn matches(&self, pa: &PendingAsync, plan: &MemoPlan, globals: &GlobalStore) -> bool {
        self.action == pa.action
            && self.args == pa.args
            && self
                .store_key
                .iter()
                .zip(plan.key.iter())
                .all(|(v, &i)| v == globals.get(i))
    }
}

/// The deterministic hash of a memo key, computed from borrowed data.
fn memo_key_hash(pa: &PendingAsync, plan: &MemoPlan, globals: &GlobalStore) -> u64 {
    let mut hasher = FxHasher::default();
    pa.action.hash(&mut hasher);
    pa.args.hash(&mut hasher);
    for &i in &plan.key {
        globals.get(i).hash(&mut hasher);
    }
    hasher.finish()
}

/// The footprint memo, shared by all workers so no evaluation is ever
/// repeated across shards. Entries are bucketed by the 64-bit key hash and
/// disambiguated by exact (reference-based) comparison; the mutex is held
/// only for probes and inserts, never across an evaluation. When the hit
/// rate stays below 1 in 2^[`MEMO_MIN_HIT_SHIFT`] after
/// [`MEMO_PROBATION`] lookups, `enabled` flips off and workers stop taking
/// the lock altogether.
#[derive(Debug)]
pub(crate) struct SharedMemo {
    pub(crate) enabled: AtomicBool,
    inner: Mutex<EvalMemo>,
}

impl SharedMemo {
    /// A fresh memo for programs where at least one action has a footprint;
    /// returns `None` otherwise (no key to memoize on).
    pub(crate) fn for_plans(plans_empty: bool) -> Option<SharedMemo> {
        if plans_empty {
            None
        } else {
            Some(SharedMemo {
                enabled: AtomicBool::new(true),
                inner: Mutex::new(EvalMemo::default()),
            })
        }
    }

    /// Probes the memo for `(pa, globals|plan.key)`, updating the lookup
    /// and probation accounting. The lock is held only for the probe.
    pub(crate) fn probe(
        &self,
        pa: &PendingAsync,
        plan: &MemoPlan,
        globals: &GlobalStore,
    ) -> Option<Arc<CachedOutcome>> {
        let kh = memo_key_hash(pa, plan, globals);
        let mut inner = self.inner.lock().expect("memo lock poisoned");
        inner.lookups += 1;
        if inner.lookups >= MEMO_PROBATION && inner.hits <= inner.lookups >> MEMO_MIN_HIT_SHIFT {
            self.enabled.store(false, Ordering::Relaxed);
        }
        let found = inner.map.get(&kh).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.matches(pa, plan, globals))
                .map(|e| Arc::clone(&e.outcome))
        });
        if found.is_some() {
            inner.hits += 1;
        }
        found
    }

    /// Publishes a freshly computed outcome. A racing worker may have
    /// inserted the same key meanwhile; evaluation is deterministic, so the
    /// first entry is kept.
    pub(crate) fn publish(
        &self,
        pa: &PendingAsync,
        plan: &MemoPlan,
        globals: &GlobalStore,
        out: &ActionOutcome,
    ) {
        let kh = memo_key_hash(pa, plan, globals);
        let entry = MemoEntry {
            action: pa.action.clone(),
            args: pa.args.clone(),
            store_key: plan.key.iter().map(|&i| globals.get(i).clone()).collect(),
            outcome: Arc::new(CachedOutcome::of(out, plan)),
        };
        let mut inner = self.inner.lock().expect("memo lock poisoned");
        let bucket = inner.map.entry(kh).or_default();
        if !bucket.iter().any(|e| e.matches(pa, plan, globals)) {
            bucket.push(entry);
        }
    }

    /// Hit/miss totals accumulated so far.
    pub(crate) fn snapshot(&self) -> HitMissSnapshot {
        let inner = self.inner.lock().expect("memo lock poisoned");
        HitMissSnapshot::new(inner.hits as u64, (inner.lookups - inner.hits) as u64)
    }
}

#[derive(Debug, Default)]
struct EvalMemo {
    map: HashMap<u64, Vec<MemoEntry>, BuildHasherDefault<FxHasher>>,
    lookups: usize,
    hits: usize,
}

/// An evaluation outcome in hand: freshly computed, or reconstructible from
/// the memo.
pub(crate) enum Resolved {
    Owned(ActionOutcome),
    Cached(Arc<CachedOutcome>),
}

/// A borrowed view over either resolution, so failure and transition
/// handling are written once.
pub(crate) enum View<'a> {
    Failure(&'a str),
    Full(&'a [Transition]),
    Delta(&'a [CachedTransition]),
}

impl Resolved {
    /// The uniform borrowed view of this outcome.
    pub(crate) fn view(&self) -> View<'_> {
        match self {
            Resolved::Owned(ActionOutcome::Failure { reason }) => View::Failure(reason),
            Resolved::Owned(ActionOutcome::Transitions(ts)) => View::Full(ts),
            Resolved::Cached(cached) => match cached.as_ref() {
                CachedOutcome::Failure(reason) => View::Failure(reason),
                CachedOutcome::Transitions(ts) => View::Delta(ts),
            },
        }
    }
}
