//! A fast, deterministic hasher for the engine's hot paths.
//!
//! The implementation moved to `inseq_kernel::hash` when the kernel gained
//! its hash-consing interner (both crates now share one Fx implementation,
//! so a value hashes identically on either side of the crate boundary —
//! required for the engine's routing to agree with kernel-side id tables).
//! This module re-exports it under the engine's historical path.

pub use inseq_kernel::hash::{fx_hash, mix, FxHasher};

/// A `HashMap` keyed through [`FxHasher`] — the right table for hot paths
/// keyed by interner ids, which SipHash would dominate.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;
