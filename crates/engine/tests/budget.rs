//! Negative-path coverage: budget exhaustion while work is moving between
//! shards — over mpsc channels on the baseline engine, and between
//! work-stealing deques on the current one.
//!
//! The mpsc explorer routes successors by store hash, so on a program whose
//! every step changes the store, most successors cross shards. With a
//! budget far below the reachable-set size, exhaustion lands while that
//! migration traffic is in flight — the case where the shared atomic
//! counter, cancellation flag, and post-join `visited` aggregation must
//! still produce a coherent error. The work-stealing engine has the
//! mirror-image hazard: exhaustion mid-steal, where per-shard counters must
//! still be aggregated after the join ([`ParallelExplorer::explore_with_stats`]).

use inseq_engine::{MpscExplorer, ParallelExplorer};
use inseq_kernel::{
    ActionOutcome, ExploreError, Explorer, GlobalSchema, GlobalStore, Multiset, NativeAction,
    PendingAsync, Program, Transition, Value,
};

/// `Main` spawns `k` `IncA` and `k` `IncB` tasks; each bumps its own
/// counter. Every firing changes the store, so successors are spread
/// across shards, and the reachable set has `Θ(k²)` configurations.
fn two_counter_program(k: usize) -> Program {
    let mut b = Program::builder(GlobalSchema::new(["a", "b"]));
    b.action(
        "Main",
        NativeAction::new("Main", 0, move |g: &GlobalStore, _: &[Value]| {
            let next = g.with(0, Value::Int(0)).with(1, Value::Int(0));
            let mut created = Multiset::new();
            created.insert_n(PendingAsync::new("IncA", vec![]), k);
            created.insert_n(PendingAsync::new("IncB", vec![]), k);
            ActionOutcome::Transitions(vec![Transition::new(next, created)])
        }),
    );
    for (name, slot) in [("IncA", 0), ("IncB", 1)] {
        b.action(
            name,
            NativeAction::new(name, 0, move |g: &GlobalStore, _: &[Value]| {
                let next = g.with(slot, Value::Int(g.get(slot).as_int() + 1));
                ActionOutcome::Transitions(vec![Transition::pure(next)])
            }),
        );
    }
    b.build().expect("two-counter program is well-formed")
}

fn init(p: &Program) -> inseq_kernel::Config {
    p.initial_config(vec![]).expect("Main has arity 0")
}

/// This program shape really does migrate on the mpsc engine: a successful
/// 4-worker run re-interns configurations received from other shards.
#[test]
fn two_counter_program_exercises_cross_shard_migration() {
    let p = two_counter_program(6);
    let exploration = MpscExplorer::new(&p)
        .with_workers(4)
        .explore([init(&p)])
        .expect("well under any default budget");
    let stats = exploration.stats();
    assert!(
        stats.migrated() > 0,
        "no cross-shard traffic — the budget test below would not cover migration"
    );
    assert!(
        stats.shards.iter().map(|s| s.received).sum::<u64>() > 0,
        "migrations staged but never received"
    );
}

#[test]
fn budget_exceeded_mid_migration_reports_limit_and_witness() {
    let p = two_counter_program(6);
    let sequential_size = Explorer::new(&p)
        .explore([init(&p)])
        .expect("sequential exploration fits in the default budget")
        .config_count();
    let budget = 10;
    assert!(
        sequential_size > 4 * budget,
        "state space too small to exhaust the budget during migration"
    );

    for workers in [2, 4] {
        for engine in ["steal", "mpsc"] {
            let err = match engine {
                "steal" => ParallelExplorer::new(&p)
                    .with_workers(workers)
                    .with_budget(budget)
                    .explore([init(&p)])
                    .expect_err("budget far below the reachable set must be exceeded"),
                _ => MpscExplorer::new(&p)
                    .with_workers(workers)
                    .with_budget(budget)
                    .explore([init(&p)])
                    .expect_err("budget far below the reachable set must be exceeded"),
            };
            match err {
                ExploreError::BudgetExceeded {
                    limit,
                    visited,
                    trace,
                } => {
                    assert_eq!(
                        limit, budget,
                        "{engine}, {workers} workers: limit not preserved"
                    );
                    assert!(
                        visited > budget,
                        "{engine}, {workers} workers: exhaustion implies visited \
                         ({visited}) > budget"
                    );
                    assert!(
                        visited <= sequential_size + budget * workers,
                        "{engine}, {workers} workers: post-join visited aggregate \
                         ({visited}) is absurd"
                    );
                    match engine {
                        "steal" => {
                            // The deque engine keeps a parent forest in the
                            // shared arena and reports a concrete witness to
                            // the exhaustion point.
                            let trace = trace.unwrap_or_else(|| {
                                panic!(
                                    "{engine}, {workers} workers: budget exhaustion \
                                     must carry a witness trace"
                                )
                            });
                            assert!(!trace.is_empty());
                            assert_eq!(trace.steps[0].before, init(&p));
                            for pair in trace.steps.windows(2) {
                                assert_eq!(pair[0].after, pair[1].before, "steps must chain");
                            }
                        }
                        _ => assert!(
                            trace.is_none(),
                            "{engine}, {workers} workers: the mpsc baseline keeps no \
                             parent forest and must honestly report no trace"
                        ),
                    }
                }
                other => {
                    panic!("{engine}, {workers} workers: expected BudgetExceeded, got {other}")
                }
            }
        }
    }
}

/// Exhaustion mid-steal must not lose per-shard counters: the error path of
/// the work-stealing engine still joins every worker and aggregates its
/// stats, and the steal bookkeeping stays conserved — everything stolen in
/// was stolen from some deque, and duplicates never exceed migrations
/// (trivially, since the deque engine cannot re-intern migrated work).
#[test]
fn budget_exceeded_mid_steal_still_aggregates_shard_stats() {
    let p = two_counter_program(6);
    let budget = 10;
    for workers in [2, 4, 8] {
        let (result, stats) = ParallelExplorer::new(&p)
            .with_workers(workers)
            .with_budget(budget)
            .explore_with_stats([init(&p)]);
        let err = result.expect_err("budget far below the reachable set must be exceeded");
        assert!(
            matches!(err, ExploreError::BudgetExceeded { limit, .. } if limit == budget),
            "{workers} workers: expected BudgetExceeded, got {err}"
        );
        assert_eq!(
            stats.shards.len(),
            workers,
            "{workers} workers: every shard reports, even mid-steal"
        );
        // The exploration made progress before exhausting, and counters are
        // internally consistent on the error path.
        assert!(stats.expanded() >= 1, "{workers} workers: nothing expanded");
        assert!(
            stats.intern().misses as usize > budget,
            "{workers} workers: exhaustion implies more misses than budget"
        );
        assert_eq!(
            stats.stolen(),
            stats.migrated(),
            "{workers} workers: steal conservation broken"
        );
        assert!(
            stats.migration_dups() <= stats.migrated(),
            "{workers} workers: dups exceed migrations"
        );
        assert_eq!(
            stats.migration_dups(),
            0,
            "{workers} workers: the deque engine cannot re-intern migrated work"
        );
    }
}

/// The sequential explorer agrees the same budget is insufficient — the
/// parallel error is not an artifact of sharding.
#[test]
fn sequential_explorer_agrees_budget_is_insufficient() {
    let p = two_counter_program(6);
    let err = Explorer::new(&p)
        .with_budget(10)
        .explore([init(&p)])
        .expect_err("budget 10 is far below the reachable set");
    assert!(
        matches!(err, ExploreError::BudgetExceeded { limit: 10, .. }),
        "expected BudgetExceeded, got {err}"
    );
}
