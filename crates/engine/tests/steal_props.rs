//! Property-based conservation of the work-stealing frontier: batched
//! deque handoff must never drop or duplicate a frontier configuration.
//!
//! The observable consequences, checked on randomized spawner programs and
//! worker counts against the sequential kernel:
//!
//! * every reachable configuration is visited (reachable sets are equal),
//! * every visited configuration is expanded **exactly once**
//!   (`Σ expanded = |visited|` — a dropped item would expand fewer, a
//!   duplicated one more, and either would also skew edge counts),
//! * steal accounting is conserved (`Σ stolen_in = Σ stolen_from`).

use std::collections::BTreeSet;

use proptest::prelude::*;

use inseq_engine::ParallelExplorer;
use inseq_kernel::{
    ActionOutcome, Config, Explorer, GlobalSchema, GlobalStore, Multiset, NativeAction,
    PendingAsync, Program, Transition, Value,
};

/// Builds a terminating "spawner" program over one integer global from a
/// compact genome: action `i` increments the global by `incs[i]` (at least
/// one) while it is below `cap`, spawning the listed successor actions; at
/// or above `cap` it just consumes itself.
fn spawner_program(cap: i64, genome: &[(i64, Vec<usize>)]) -> Program {
    let n = genome.len();
    let mut builder = Program::builder(GlobalSchema::new(["g"]));
    let spawn_names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
    for (i, (inc, spawns)) in genome.iter().enumerate() {
        let inc = 1 + (inc.rem_euclid(2));
        let created: Vec<String> = spawns
            .iter()
            .map(|&target| spawn_names[target % n].clone())
            .collect();
        builder.action(
            spawn_names[i].clone(),
            NativeAction::new(
                spawn_names[i].clone(),
                0,
                move |g: &GlobalStore, _: &[Value]| {
                    let current = g.get(0).as_int();
                    if current < cap {
                        let mut spawned = Multiset::new();
                        for name in &created {
                            spawned.insert(PendingAsync::new(name.as_str(), vec![]));
                        }
                        ActionOutcome::Transitions(vec![Transition::new(
                            g.with(0, Value::Int(current + inc)),
                            spawned,
                        )])
                    } else {
                        ActionOutcome::Transitions(vec![Transition::pure(g.clone())])
                    }
                },
            ),
        );
    }
    let entry: Vec<String> = spawn_names.clone();
    builder.action(
        "Main",
        NativeAction::new("Main", 0, move |g: &GlobalStore, _: &[Value]| {
            let mut spawned = Multiset::new();
            for name in &entry {
                spawned.insert(PendingAsync::new(name.as_str(), vec![]));
            }
            ActionOutcome::Transitions(vec![Transition::new(g.with(0, Value::Int(0)), spawned)])
        }),
    );
    builder.build().expect("spawner program is well formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_handoff_conserves_the_frontier(
        cap in 1i64..5,
        genome in proptest::collection::vec(
            (0i64..2, proptest::collection::vec(0usize..4, 0..3)),
            1..4,
        ),
        workers in 1usize..9,
    ) {
        let program = spawner_program(cap, &genome);
        let init = program.initial_config(vec![]).unwrap();
        let sequential = Explorer::new(&program).explore([init.clone()]).unwrap();
        let seq_set: BTreeSet<Config> = sequential.configs().cloned().collect();

        let parallel = ParallelExplorer::new(&program)
            .with_workers(workers)
            .explore([init])
            .unwrap();
        let par_set: BTreeSet<Config> = parallel.configs().collect();
        prop_assert_eq!(&par_set, &seq_set, "workers = {}", workers);
        prop_assert_eq!(parallel.edge_count(), sequential.edge_count());

        let stats = parallel.stats();
        // No drop, no duplicate: every visited config expanded exactly once.
        prop_assert_eq!(stats.expanded() as usize, parallel.config_count());
        // Every distinct config is exactly one dedup miss somewhere.
        prop_assert_eq!(stats.intern().misses as usize, parallel.config_count());
        // Steal conservation, and no id-translation dedup can exist.
        prop_assert_eq!(stats.stolen(), stats.migrated());
        prop_assert_eq!(stats.migration_dups(), 0);
    }
}
